//! Shared helpers for the cross-crate integration tests.

use dtm_core::{DtmConfig, Experiment, PolicySpec, RunResult, SimConfig};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary, Workload};
use std::sync::OnceLock;

/// A process-wide experiment context with short traces and short runs,
/// shared so the trace cache is built once per test binary.
pub fn fast_experiment() -> &'static Experiment {
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| {
        Experiment::new(
            TraceLibrary::new(TraceGenConfig::fast_test()),
            SimConfig {
                duration: 0.04,
                ..SimConfig::default()
            },
            DtmConfig::default(),
        )
    })
}

/// The paper's running-example workload (gzip-twolf-ammp-lucas, IIFF).
pub fn mixed_workload() -> Workload {
    standard_workloads().into_iter().nth(6).expect("workload7")
}

/// An all-integer workload (workload2).
pub fn int_workload() -> Workload {
    standard_workloads().into_iter().nth(1).expect("workload2")
}

/// Runs a policy on a workload with the fast context.
pub fn run(workload: &Workload, policy: PolicySpec) -> RunResult {
    fast_experiment().run(workload, policy).expect("simulation")
}

/// Sanity checks every run result must satisfy.
pub fn assert_sane(r: &RunResult) {
    assert!(r.duration > 0.0);
    assert!(r.instructions >= 0.0);
    assert!(
        (0.0..=1.0 + 1e-9).contains(&r.duty_cycle),
        "duty cycle {} out of range",
        r.duty_cycle
    );
    assert!(
        r.max_temp > 40.0 && r.max_temp < 200.0,
        "temp {}",
        r.max_temp
    );
    assert!(r.emergency_time >= 0.0);
    assert!(r.bips() >= 0.0);
}
