//! Differential control-correctness suite for the adaptive gain
//! scheduler.
//!
//! The adaptive layer (DESIGN.md §10) is sold on four promises, each
//! pinned here as a cross-crate differential test:
//!
//! 1. with adaptation disabled, the scheduled controller is
//!    *bit-identical* to the fixed-gain paper controller — at the
//!    single-step level and at the whole-`RunResult` level;
//! 2. adaptation never leaves its declared envelope: effective gains
//!    stay within `[MULT_MIN, MULT_MAX]` of the design and clipping
//!    still prevents integral windup;
//! 3. closed-loop safety is preserved: an adaptive run never exceeds
//!    the trip threshold by more than the fixed-gain run's overshoot
//!    plus a small band;
//! 4. runs replay byte-identically under seed reuse, including when
//!    the cell arrives through the serve wire path — and fault-free
//!    fixed-gain cells keep their pre-adaptive cache addresses.

use dtm_control::{AdaptivePi, ClippedPi, GainScheduleConfig, PiGains, MULT_MAX, MULT_MIN};
use dtm_core::{DtmConfig, Experiment, PolicySpec, RunResult, SimConfig};
use dtm_harness::codec::result_to_json;
use dtm_harness::json::Json;
use dtm_harness::{cell_key, CellKey};
use dtm_serve::SimRequest;
use dtm_tests::{fast_experiment, mixed_workload, run};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

/// Runs the fast-test context with a non-default DTM configuration.
fn run_with_dtm(dtm: DtmConfig, policy: PolicySpec) -> RunResult {
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::fast_test()),
        SimConfig {
            duration: 0.04,
            ..SimConfig::default()
        },
        dtm,
    );
    exp.run(&mixed_workload(), policy).expect("simulation")
}

/// The result's canonical encoding with `gain_stats` stripped — the
/// physics-only view used for cross-schedule byte comparisons
/// (fixed-gain runs carry no `gain_stats` object at all).
fn physics_bytes(r: &RunResult) -> String {
    let mut json = result_to_json(r);
    if let Json::Obj(fields) = &mut json {
        fields.retain(|(k, _)| k != "gain_stats");
    }
    json.emit()
}

/// A tiny deterministic LCG for reproducible pseudo-random sequences.
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------
// 1. Adaptation disabled ⇒ bit-identical to the fixed PI.
// ---------------------------------------------------------------------

#[test]
fn disabled_adaptation_is_bit_identical_to_fixed_pi() {
    // Step level: every disabled schedule reproduces ClippedPi's output
    // bit for bit over a randomized error sequence.
    for config in [
        GainScheduleConfig::Fixed,
        GainScheduleConfig::Rao {
            alpha: 0.0,
            tau_s: 2e-3,
        },
        GainScheduleConfig::SelfTuning {
            rate: 0.0,
            window_s: 2e-3,
        },
    ] {
        let mut fixed = ClippedPi::paper_thermal_dvfs();
        let mut adaptive = AdaptivePi::new(PiGains::paper_defaults(), config, 0.2, 1.0);
        let mut state = 0x9e3779b97f4a7c15;
        for i in 0..20_000 {
            let e = (lcg(&mut state) - 0.5) * 40.0;
            let a = fixed.update(e);
            let b = adaptive.update(e);
            assert_eq!(a.to_bits(), b.to_bits(), "{config:?} diverged at step {i}");
        }
        assert_eq!(adaptive.multiplier_range(), (1.0, 1.0));
        assert_eq!(adaptive.adaptations(), 0);
    }

    // Run level: a whole simulation under a disabled adaptive schedule
    // matches the fixed-gain run byte for byte on every physics field.
    let policy = PolicySpec::best();
    let fixed = run_with_dtm(DtmConfig::default(), policy);
    assert!(
        fixed.gain_stats.is_none(),
        "fixed-gain runs must not grow a gain_stats object"
    );
    for config in [
        GainScheduleConfig::Rao {
            alpha: 0.0,
            tau_s: 2e-3,
        },
        GainScheduleConfig::SelfTuning {
            rate: 0.0,
            window_s: 2e-3,
        },
    ] {
        let r = run_with_dtm(
            DtmConfig {
                gain_schedule: config,
                ..DtmConfig::default()
            },
            policy,
        );
        assert_eq!(
            physics_bytes(&fixed),
            physics_bytes(&r),
            "{config:?} perturbed the simulation"
        );
        // The adaptive bookkeeping confirms the multiplier never moved.
        let g = r.gain_stats.expect("adaptive schedules report gain stats");
        assert_eq!(g.kp_min.to_bits(), g.kp_max.to_bits());
        assert_eq!(g.ki_min.to_bits(), g.ki_max.to_bits());
        assert_eq!(g.kp_min.to_bits(), DtmConfig::default().pi_kp.to_bits());
        assert_eq!(g.adaptations, 0);
    }
}

// ---------------------------------------------------------------------
// 2. Gains stay inside the declared envelope; clipping still prevents
//    windup.
// ---------------------------------------------------------------------

#[test]
fn adaptive_gains_never_leave_their_declared_bounds() {
    let base = PiGains::paper_defaults();
    for config in [
        GainScheduleConfig::rao_default(),
        GainScheduleConfig::Rao {
            alpha: 4.0,
            tau_s: 0.01,
        },
        GainScheduleConfig::selftune_default(),
        GainScheduleConfig::SelfTuning {
            rate: 0.9,
            window_s: 1e-4,
        },
    ] {
        let mut pi = AdaptivePi::new(base, config, 0.2, 1.0);
        let mut state = 0xdeadbeefcafef00d;
        // Piecewise-constant error schedule: a new level every 64 steps,
        // spanning deep-cool to far-over-threshold.
        let mut level = 0.0;
        for i in 0..60_000 {
            if i % 64 == 0 {
                level = (lcg(&mut state) - 0.5) * 30.0;
            }
            let u = pi.update(level);
            assert!((0.2..=1.0).contains(&u), "{config:?}: output {u} escaped");
            let g = pi.effective_gains();
            assert!(
                g.kp >= base.kp * MULT_MIN - 1e-15 && g.kp <= base.kp * MULT_MAX + 1e-15,
                "{config:?}: kp {} outside [{}, {}]",
                g.kp,
                base.kp * MULT_MIN,
                base.kp * MULT_MAX
            );
            assert!(
                g.ki >= base.ki * MULT_MIN - 1e-12 && g.ki <= base.ki * MULT_MAX + 1e-12,
                "{config:?}: ki {} escaped",
                g.ki
            );
        }
        let (lo, hi) = pi.multiplier_range();
        assert!((MULT_MIN..=MULT_MAX).contains(&lo));
        assert!((MULT_MIN..=MULT_MAX).contains(&hi));

        // Anti-windup: saturate hard, then flip the error — recovery
        // must be fast because the clipped store holds no hidden
        // integral, whatever the multiplier did.
        for _ in 0..50_000 {
            pi.update(15.0);
        }
        assert_eq!(pi.output(), 0.2);
        let mut steps = 0;
        while pi.update(-5.0) < 1.0 {
            steps += 1;
            assert!(steps < 500, "{config:?}: windup — {steps} recovery steps");
        }
    }
}

// ---------------------------------------------------------------------
// 3. Closed-loop safety: adaptive overshoot within the fixed-gain band.
// ---------------------------------------------------------------------

#[test]
fn adaptive_overshoot_stays_within_the_fixed_gain_band() {
    // The golden band: an adaptive run may not exceed the trip
    // threshold by more than the fixed-gain controller's overshoot on
    // the same workload, plus a small margin for transient shaping.
    const BAND_C: f64 = 0.25;
    let policy = PolicySpec::best();
    let fixed = run(&mixed_workload(), policy);
    let threshold = DtmConfig::default().threshold;
    let fixed_overshoot = (fixed.max_temp - threshold).max(0.0);

    for config in [
        GainScheduleConfig::rao_default(),
        GainScheduleConfig::selftune_default(),
    ] {
        let r = run_with_dtm(
            DtmConfig {
                gain_schedule: config,
                ..DtmConfig::default()
            },
            policy,
        );
        let overshoot = (r.max_temp - threshold).max(0.0);
        assert!(
            overshoot <= fixed_overshoot + BAND_C,
            "{config:?}: overshoot {overshoot:.3} °C exceeds fixed {fixed_overshoot:.3} + {BAND_C}"
        );
        // And the run is still a real simulation, not a degenerate one.
        assert!(r.bips() > 0.0 && r.duty_cycle > 0.0);
    }
}

// ---------------------------------------------------------------------
// 4. Byte-identical replay under seed reuse, through the wire path;
//    fixed-gain cache keys unchanged from the pre-adaptive era.
// ---------------------------------------------------------------------

#[test]
fn wire_path_replays_byte_identically_and_keys_are_stable() {
    // A request selecting the Rao schedule with explicit parameters
    // rides the serve codec (emit → parse → decode → resolve) and runs
    // twice from the same seed: the encoded results must be equal byte
    // for byte, and equal to a run constructed directly from the
    // config — the wire adds nothing and loses nothing.
    let req = SimRequest {
        schedule: Some("rao".into()),
        adapt_rate: Some(1.5),
        adapt_window_s: Some(0.003),
        seed: Some(7),
        ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
    };
    let mut fields = vec![("verb".into(), Json::str("simulate"))];
    fields.extend(req.to_fields());
    let wire = Json::Obj(fields).emit();
    let decoded =
        SimRequest::from_json(&Json::parse(&wire).expect("frame parses")).expect("request decodes");
    assert_eq!(decoded, req, "wire round-trip must be lossless");

    let base_sim = SimConfig {
        duration: 0.04,
        ..SimConfig::fast_test()
    };
    let resolved = decoded.resolve(&base_sim).expect("request resolves");
    assert_eq!(
        resolved.variant.dtm.gain_schedule,
        GainScheduleConfig::Rao {
            alpha: 1.5,
            tau_s: 0.003,
        }
    );

    let run_resolved = || {
        let exp = Experiment::new(
            TraceLibrary::new(TraceGenConfig::fast_test()),
            resolved.variant.sim.clone(),
            resolved.variant.dtm,
        );
        exp.run(&resolved.workload, resolved.policy)
            .expect("simulation")
    };
    let first = result_to_json(&run_resolved()).emit();
    let second = result_to_json(&run_resolved()).emit();
    assert_eq!(first, second, "seed reuse must replay byte-identically");

    let direct = Experiment::new(
        TraceLibrary::new(TraceGenConfig::fast_test()),
        SimConfig {
            seed: 7,
            ..base_sim.clone()
        },
        DtmConfig {
            gain_schedule: GainScheduleConfig::Rao {
                alpha: 1.5,
                tau_s: 0.003,
            },
            ..DtmConfig::default()
        },
    )
    .run(&mixed_workload(), PolicySpec::best())
    .expect("simulation");
    assert_eq!(
        first,
        result_to_json(&direct).emit(),
        "wire-resolved cell must equal the directly-configured cell"
    );

    // Cache-key discipline: the fault-free fixed-gain cell keeps its
    // PR 8-era address bit for bit, while selecting an adaptive
    // schedule — and only that — rekeys it.
    let w0 = &standard_workloads()[0];
    let tg = TraceGenConfig::default();
    let key = |dtm: &DtmConfig| {
        cell_key(
            w0,
            PolicySpec::baseline(),
            &SimConfig::default(),
            dtm,
            &dtm_core::FaultConfig::ideal(),
            &tg,
            "0.2.0",
        )
    };
    assert_eq!(
        key(&DtmConfig::default()),
        CellKey(286485080971197456135770222951572129358),
        "fixed-gain cell rekeyed — warm caches are orphaned"
    );
    let adaptive_key = key(&DtmConfig {
        gain_schedule: GainScheduleConfig::rao_default(),
        ..DtmConfig::default()
    });
    assert_ne!(
        adaptive_key,
        key(&DtmConfig::default()),
        "adaptive schedules must address distinct cache cells"
    );
}

// ---------------------------------------------------------------------
// Sanity: the shared fast context still behaves (guards the helpers the
// suite above leans on).
// ---------------------------------------------------------------------

#[test]
fn fast_context_runs_are_internally_deterministic() {
    let exp = fast_experiment();
    let w = mixed_workload();
    let a = exp.run(&w, PolicySpec::best()).expect("simulation");
    let b = exp.run(&w, PolicySpec::best()).expect("simulation");
    assert_eq!(result_to_json(&a).emit(), result_to_json(&b).emit());
}
