//! End-to-end reproduction checks of the paper's headline claims on the
//! fast test configuration (short traces and runs; the shapes, not the
//! exact factors, are asserted).

use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_tests::{assert_sane, int_workload, mixed_workload, run};

fn policy(t: ThrottleKind, s: Scope, m: MigrationKind) -> PolicySpec {
    PolicySpec::new(t, s, m)
}

#[test]
fn distributed_dvfs_strongly_beats_the_stop_go_baseline() {
    let w = mixed_workload();
    let base = run(&w, PolicySpec::baseline());
    let dvfs = run(
        &w,
        policy(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    );
    assert_sane(&base);
    assert_sane(&dvfs);
    // The 40 ms fast-test run under-throttles the baseline relative to
    // the 0.5 s study runs (where the ratio is ~2.5-3x), so assert a
    // conservative bound here.
    assert!(
        dvfs.bips() > 1.5 * base.bips(),
        "dist DVFS {} vs baseline {}",
        dvfs.bips(),
        base.bips()
    );
    assert!(dvfs.duty_cycle > base.duty_cycle);
}

#[test]
fn global_stop_go_is_the_worst_policy() {
    let w = mixed_workload();
    let global = run(
        &w,
        policy(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
    );
    let base = run(&w, PolicySpec::baseline());
    assert!(
        global.bips() < base.bips(),
        "global {} vs dist {}",
        global.bips(),
        base.bips()
    );
}

#[test]
fn distributed_beats_global_for_both_throttles() {
    let w = mixed_workload();
    for throttle in [ThrottleKind::StopGo, ThrottleKind::Dvfs] {
        let g = run(&w, policy(throttle, Scope::Global, MigrationKind::None));
        let d = run(
            &w,
            policy(throttle, Scope::Distributed, MigrationKind::None),
        );
        assert!(
            d.bips() >= g.bips(),
            "{throttle:?}: dist {} < global {}",
            d.bips(),
            g.bips()
        );
    }
}

#[test]
fn dvfs_policies_avoid_thermal_emergencies() {
    let w = mixed_workload();
    for scope in [Scope::Global, Scope::Distributed] {
        let r = run(&w, policy(ThrottleKind::Dvfs, scope, MigrationKind::None));
        // The paper's claim: the PI controller avoids all thermal
        // emergencies. Allow a tiny transient margin (< 1% of the run).
        assert!(
            r.emergency_time < 0.01 * r.duration,
            "{scope:?}: emergency time {}",
            r.emergency_time
        );
    }
}

#[test]
fn migration_helps_stop_go_on_mixed_workloads() {
    let w = mixed_workload();
    let plain = run(&w, PolicySpec::baseline());
    let counter = run(
        &w,
        policy(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::CounterBased,
        ),
    );
    assert!(counter.migrations > 0, "no migrations occurred");
    assert!(
        counter.bips() > plain.bips(),
        "counter migration {} vs plain {}",
        counter.bips(),
        plain.bips()
    );
}

#[test]
fn sensor_migration_also_works_and_profiles_first() {
    let w = mixed_workload();
    let sensor = run(
        &w,
        policy(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::SensorBased,
        ),
    );
    assert!(sensor.migrations > 0);
    assert_sane(&sensor);
}

#[test]
fn the_two_loop_policy_is_at_least_as_good_as_plain_dvfs() {
    let w = mixed_workload();
    let plain = run(
        &w,
        policy(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    );
    let best = run(&w, PolicySpec::best());
    // Migration on top of distributed DVFS gives small gains (paper:
    // +1-3%); at minimum it must not cost more than a few percent.
    assert!(
        best.bips() > 0.97 * plain.bips(),
        "two-loop {} vs plain dvfs {}",
        best.bips(),
        plain.bips()
    );
}

#[test]
fn homogeneous_integer_workloads_gain_little_from_migration() {
    let w = int_workload();
    let plain = run(&w, PolicySpec::baseline());
    let migr = run(
        &w,
        policy(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::CounterBased,
        ),
    );
    // All four threads stress the integer RF: migration cannot balance
    // unit types, so the effect is small either way (paper Figure 7).
    let ratio = migr.bips() / plain.bips();
    assert!(
        (0.7..1.6).contains(&ratio),
        "unexpected IIII migration ratio {ratio}"
    );
}

#[test]
fn all_twelve_policies_run_and_are_sane() {
    let w = mixed_workload();
    for p in PolicySpec::all() {
        let r = run(&w, p);
        assert_sane(&r);
        assert!(r.instructions > 0.0, "{p}: no instructions retired");
    }
}
