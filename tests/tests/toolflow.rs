//! Toolflow integration: the Figure-2 pipeline (streams → activity →
//! power → traces → thermal/timing simulation) is deterministic and
//! internally consistent across crate boundaries.

use dtm_core::{DtmConfig, PolicySpec, SimConfig, Telemetry, ThermalTimingSim};
use dtm_floorplan::UnitKind;
use dtm_tests::{fast_experiment, mixed_workload};
use dtm_workloads::{benchmark, generate_trace, standard_workloads, TraceGenConfig};

#[test]
fn trace_generation_is_reproducible_across_library_instances() {
    let cfg = TraceGenConfig::fast_test();
    let b = benchmark("twolf");
    let t1 = generate_trace(&b, &cfg);
    let t2 = generate_trace(&b, &cfg);
    assert_eq!(t1, t2);
}

#[test]
fn full_simulation_is_deterministic() {
    let w = mixed_workload();
    let p = PolicySpec::best();
    let r1 = fast_experiment().run(&w, p).unwrap();
    let r2 = fast_experiment().run(&w, p).unwrap();
    assert_eq!(r1.instructions, r2.instructions);
    assert_eq!(r1.migrations, r2.migrations);
    assert_eq!(r1.duty_cycle, r2.duty_cycle);
}

#[test]
fn int_and_fp_workloads_heat_their_own_register_files() {
    let exp = fast_experiment();
    let lib = exp.library();
    let gzip = lib.trace(&benchmark("gzip"));
    let lucas = lib.trace(&benchmark("lucas"));
    assert!(
        gzip.mean_unit_power(UnitKind::IntRegFile)
            > 2.0 * gzip.mean_unit_power(UnitKind::FpRegFile)
    );
    assert!(
        lucas.mean_unit_power(UnitKind::FpRegFile)
            > 2.0 * lucas.mean_unit_power(UnitKind::IntRegFile)
    );
}

#[test]
fn mcf_remains_by_far_the_coolest_benchmark() {
    let exp = fast_experiment();
    let lib = exp.library();
    let mcf = lib.trace(&benchmark("mcf")).mean_core_power();
    for name in ["gzip", "crafty", "sixtrack", "mesa", "swim"] {
        let p = lib.trace(&benchmark(name)).mean_core_power();
        assert!(mcf < 0.8 * p, "mcf {mcf} vs {name} {p}");
    }
}

#[test]
fn telemetry_matches_run_metrics() {
    let w = mixed_workload();
    let exp = fast_experiment();
    let (result, telemetry) = exp
        .run_with_telemetry(&w, PolicySpec::baseline(), 10)
        .unwrap();
    let records = telemetry.records();
    assert!(!records.is_empty());
    // Times are monotone and bounded by the run duration.
    for pair in records.windows(2) {
        assert!(pair[1].time > pair[0].time);
    }
    assert!(records.last().unwrap().time <= result.duration + 1e-9);
    // Recorded temperatures never exceed the observed maximum.
    for r in records {
        for t in &r.sensor_temps {
            assert!(t[0] <= result.max_temp + 1e-9);
            assert!(t[1] <= result.max_temp + 1e-9);
        }
    }
}

#[test]
fn engine_rejects_mismatched_inputs() {
    let exp = fast_experiment();
    let lib = exp.library();
    let one_trace = vec![lib.trace(&benchmark("gzip"))];
    let err = ThermalTimingSim::new(
        SimConfig::default(),
        DtmConfig::default(),
        PolicySpec::baseline(),
        one_trace,
    );
    assert!(err.is_err(), "4-core chip must reject 1 trace");
}

#[test]
fn stepping_manually_equals_run() {
    let exp = fast_experiment();
    let w = mixed_workload();
    let mut a = exp.build(&w, PolicySpec::baseline()).unwrap();
    let mut b = exp.build(&w, PolicySpec::baseline()).unwrap();
    let ra = a.run().unwrap();
    while b.time() < exp.sim_config().duration {
        b.step().unwrap();
    }
    let rb = b.result();
    assert_eq!(ra.instructions, rb.instructions);
    assert_eq!(ra.stalls, rb.stalls);
}

#[test]
fn workload_table_is_stable() {
    // Table 4 must not drift: 12 workloads with the published mixes.
    let ws = standard_workloads();
    assert_eq!(ws.len(), 12);
    assert_eq!(ws[6].display_name(), "gzip-twolf-ammp-lucas");
    assert_eq!(ws[11].mix_label(), "FFFF");
}

#[test]
fn telemetry_can_be_detached_and_reattached() {
    let exp = fast_experiment();
    let w = mixed_workload();
    let mut sim = exp.build(&w, PolicySpec::baseline()).unwrap();
    assert!(sim.take_telemetry().is_none());
    sim.attach_telemetry(Telemetry::every(5));
    for _ in 0..50 {
        sim.step().unwrap();
    }
    let tel = sim.take_telemetry().unwrap();
    assert_eq!(tel.records().len(), 10);
    assert!(sim.take_telemetry().is_none());
}
