//! Property-based tests over cross-crate invariants.

use dtm_control::{C2dMethod, ClippedPi, PiGains, TransferFunction};
use dtm_floorplan::Floorplan;
use dtm_thermal::{LeakageModel, PackageConfig, ThermalModel, TransientSolver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Steady-state block temperatures never drop below ambient and rise
    /// monotonically when every block's power is scaled up.
    #[test]
    fn steady_state_monotone_in_power(
        base in 0.05f64..1.5,
        scale in 1.05f64..3.0,
        seed in 0u64..1000,
    ) {
        let fp = Floorplan::ppc_cmp(2);
        let model = ThermalModel::new(&fp, &PackageConfig::default()).unwrap();
        // Deterministic pseudo-random per-block power pattern.
        let power: Vec<f64> = (0..model.n_blocks())
            .map(|i| {
                let x = ((i as u64 + 1) * (seed + 7)) % 97;
                base * (0.2 + x as f64 / 97.0)
            })
            .collect();
        let hot: Vec<f64> = power.iter().map(|p| p * scale).collect();
        let t1 = model.steady_state(&power).unwrap();
        let t2 = model.steady_state(&hot).unwrap();
        for (a, b) in t1.iter().zip(&t2) {
            prop_assert!(*a >= model.ambient() - 1e-9);
            prop_assert!(b >= a);
        }
    }

    /// Transient integration never produces non-finite temperatures and
    /// respects the ambient floor, for any step size.
    #[test]
    fn transient_is_robust_to_step_size(
        dt_us in 1.0f64..200.0,
        power in 0.0f64..2.0,
        steps in 1usize..50,
    ) {
        let fp = Floorplan::ppc_cmp(1);
        let model = ThermalModel::new(&fp, &PackageConfig::default()).unwrap();
        let mut sim = TransientSolver::new(model, 7e-6);
        let p = vec![power; fp.len()];
        for _ in 0..steps {
            sim.step(&p, dt_us * 1e-6).unwrap();
        }
        for &t in sim.node_temps() {
            prop_assert!(t.is_finite());
            prop_assert!(t >= 45.0 - 1e-9);
        }
    }

    /// The clipped PI controller's output is always within limits and
    /// reacts in the correct direction.
    #[test]
    fn clipped_pi_respects_limits(errors in proptest::collection::vec(-30.0f64..30.0, 1..300)) {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        for e in errors {
            let u = pi.update(e);
            prop_assert!((0.2..=1.0).contains(&u));
        }
    }

    /// Clipping doubles as anti-windup: after an arbitrary prefix and a
    /// long saturating overload, removing the error recovers full
    /// output in a bounded number of steps — no hidden integral ever
    /// builds past the clamp.
    #[test]
    fn clipped_pi_never_winds_past_the_clamp(
        prefix in proptest::collection::vec(-30.0f64..30.0, 0..200),
        overload in 2.0f64..25.0,
    ) {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        for e in prefix {
            pi.update(e);
        }
        for _ in 0..50_000 {
            pi.update(overload);
        }
        prop_assert_eq!(pi.output(), 0.2);
        // Recovery gain per step is ≈ Kp·5; windup would take tens of
        // thousands of steps, the clamped store takes tens.
        let mut steps = 0;
        while pi.update(-5.0) < 1.0 {
            steps += 1;
            prop_assert!(steps < 500, "windup: {} recovery steps", steps);
        }
    }

    /// With the stored state frozen (same `u[n−1]`, `e[n−1]`), the next
    /// output is monotone non-increasing in the error: hotter never
    /// speeds the clock up.
    #[test]
    fn clipped_pi_output_is_monotone_in_error(
        history in proptest::collection::vec(-20.0f64..20.0, 1..100),
        e1 in -30.0f64..30.0,
        delta in 0.0f64..30.0,
    ) {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        for e in history {
            pi.update(e);
        }
        let mut hotter = pi.clone();
        let u1 = pi.update(e1);
        let u2 = hotter.update(e1 + delta);
        prop_assert!(u2 <= u1, "error {} gave {}, {} gave {}", e1, u1, e1 + delta, u2);
    }

    /// Two controllers fed the same error sequence agree bit for bit at
    /// every step — the step-response determinism the replay and cache
    /// layers assume.
    #[test]
    fn clipped_pi_step_response_is_deterministic(
        errors in proptest::collection::vec(-30.0f64..30.0, 1..300),
    ) {
        let mut a = ClippedPi::paper_thermal_dvfs();
        let mut b = ClippedPi::paper_thermal_dvfs();
        for e in &errors {
            prop_assert_eq!(a.update(*e).to_bits(), b.update(*e).to_bits());
        }
        // And replaying after reset reproduces the same trajectory.
        b.reset();
        let mut c = ClippedPi::paper_thermal_dvfs();
        for e in &errors {
            prop_assert_eq!(b.update(*e).to_bits(), c.update(*e).to_bits());
        }
    }

    /// Forward-Euler discretization of any stable PI keeps the
    /// integrator pole exactly at z = 1 (trapezoidal/backward too).
    #[test]
    fn pi_discretizations_keep_integrator_pole(
        kp in 0.001f64..1.0,
        ki in 1.0f64..1000.0,
        dt_us in 5.0f64..100.0,
    ) {
        for method in [C2dMethod::ForwardEuler, C2dMethod::Tustin, C2dMethod::BackwardEuler] {
            let d = TransferFunction::pi(kp, ki).c2d(dt_us * 1e-6, method);
            let has_unit_pole = d
                .poles()
                .iter()
                .any(|p| (p.re - 1.0).abs() < 1e-6 && p.im.abs() < 1e-6);
            prop_assert!(has_unit_pole, "{method:?} lost the integrator pole");
        }
    }

    /// Leakage power is non-negative and monotone in temperature for any
    /// non-negative calibration.
    #[test]
    fn leakage_monotone(
        p_ref in 0.0f64..5.0,
        beta in 0.0f64..0.1,
        t1 in 30.0f64..80.0,
        dt in 0.1f64..60.0,
    ) {
        let m = LeakageModel::new(vec![p_ref], 45.0, beta);
        let a = m.power(&[t1])[0];
        let b = m.power(&[t1 + dt])[0];
        prop_assert!(a >= 0.0);
        prop_assert!(b >= a);
    }

    /// Any floorplan the generator produces validates, and its blocks
    /// stay within the chip outline.
    #[test]
    fn generated_floorplans_validate(cores in 1usize..9) {
        let fp = Floorplan::ppc_cmp(cores);
        prop_assert!(fp.validate().is_ok());
        let area: f64 = fp.blocks().iter().map(|b| b.area()).sum();
        prop_assert!(area <= fp.chip_area() * (1.0 + 1e-9));
    }

    /// The PI gains' trailing coefficient formula matches the difference
    /// equation produced by the generic c2d machinery.
    #[test]
    fn pi_gains_match_c2d(
        kp in 0.001f64..0.5,
        ki in 10.0f64..500.0,
    ) {
        let gains = PiGains { kp, ki, dt: 27.78e-6 };
        let d = TransferFunction::pi(kp, ki).c2d(gains.dt, C2dMethod::ForwardEuler);
        let (b, _a) = d.difference_coeffs();
        // b[1] is the e[n−1] coefficient of +G; the clipped controller
        // uses −G, so compare against the negated trailing coefficient.
        prop_assert!((b[1] + gains.trailing_coeff()).abs() < 1e-12);
    }
}
