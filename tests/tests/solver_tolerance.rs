//! Golden-band tolerance checks: the exact-propagator thermal backend
//! must reproduce the backward-Euler reference's headline metrics —
//! peak temperature, duty cycle (throttling), throughput — within a
//! stated band, for both throttle kinds of the study's taxonomy.
//!
//! The band (see EXPERIMENTS.md, "Solver equivalence") is deliberately
//! wider than the raw integrator divergence (< 0.05 °C): threshold
//! comparisons in the DTM controllers can turn a sub-0.01 °C
//! temperature difference into a slightly shifted throttling decision,
//! which then perturbs duty cycle and BIPS. The band caps how far that
//! amplification may carry the headline numbers apart.

use dtm_core::{
    MigrationKind, PolicySpec, RunResult, Scope, SimConfig, SolverBackend, ThrottleKind,
};
use dtm_tests::{assert_sane, fast_experiment, mixed_workload};

/// Peak-temperature agreement band (°C).
const TEMP_TOL: f64 = 0.10;
/// Duty-cycle (throttling) agreement band (absolute fraction).
const DUTY_TOL: f64 = 0.02;
/// Relative throughput agreement band.
const BIPS_TOL: f64 = 0.02;

fn run_with_backend(backend: SolverBackend, policy: PolicySpec) -> RunResult {
    let exp = fast_experiment().clone();
    let sim = SimConfig {
        thermal_solver: backend,
        ..exp.sim_config().clone()
    };
    exp.with_sim(sim)
        .run(&mixed_workload(), policy)
        .expect("simulation")
}

fn assert_within_band(policy: PolicySpec) {
    let exact = run_with_backend(SolverBackend::Propagator, policy);
    let euler = run_with_backend(SolverBackend::BackwardEuler, policy);
    assert_sane(&exact);
    assert_sane(&euler);

    let dtemp = (exact.max_temp - euler.max_temp).abs();
    assert!(
        dtemp < TEMP_TOL,
        "{policy:?}: peak temp {:.4} vs {:.4} C (|d| = {dtemp:.4})",
        exact.max_temp,
        euler.max_temp
    );
    let dduty = (exact.duty_cycle - euler.duty_cycle).abs();
    assert!(
        dduty < DUTY_TOL,
        "{policy:?}: duty {:.5} vs {:.5} (|d| = {dduty:.5})",
        exact.duty_cycle,
        euler.duty_cycle
    );
    let dbips = (exact.bips() / euler.bips() - 1.0).abs();
    assert!(
        dbips < BIPS_TOL,
        "{policy:?}: bips {:.4} vs {:.4} (rel d = {dbips:.5})",
        exact.bips(),
        euler.bips()
    );
    // Shown under --nocapture; the observed deltas are recorded in
    // EXPERIMENTS.md next to the band.
    eprintln!(
        "{policy:?}: |d peak| = {dtemp:.4} C, |d duty| = {dduty:.5}, rel |d bips| = {dbips:.5}"
    );
}

#[test]
fn propagator_matches_euler_headlines_under_stop_go() {
    assert_within_band(PolicySpec::baseline());
}

#[test]
fn propagator_matches_euler_headlines_under_dvfs() {
    assert_within_band(PolicySpec::new(
        ThrottleKind::Dvfs,
        Scope::Distributed,
        MigrationKind::None,
    ));
}
