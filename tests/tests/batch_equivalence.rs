//! Differential suite for the multi-lane lockstep backend (DESIGN.md
//! §11).
//!
//! The batched sweep path is sold on exactly one promise: **bit
//! identity**. Grouping cache-miss cells into lane batches and stepping
//! their thermal phases through one `matmul_strided` call may change
//! wall-clock, scheduling, and nothing else — every `RunResult` byte,
//! every cache key, and every cached artifact must match the scalar
//! path. This suite pins that promise:
//!
//! 1. whole-`RunResult` byte identity between `--lanes 1` and every
//!    batched width (2, 3, 8 — including ragged final batches), over a
//!    sweep mixing policies, fault scenarios, solver backends, and
//!    durations (lanes retire mid-batch) in the same lane group;
//! 2. solver-level lockstep equality for the lumped *and* grid models
//!    at every lane count around the [`LANE_BLOCK`] boundary;
//! 3. byte-identical `results/cache/` contents between lane widths.

use dtm_core::{
    DtmConfig, FaultConfig, FaultScenario, MigrationKind, PolicySpec, Scope, SimConfig,
    SolverBackend, ThrottleKind,
};
use dtm_floorplan::Floorplan;
use dtm_harness::codec::result_to_json;
use dtm_harness::{ConfigVariant, ResultCache, SweepRunner, SweepSpec};
use dtm_thermal::linalg::LANE_BLOCK;
use dtm_thermal::{
    step_grid_batch, step_lumped_batch, BatchWorkspace, GridConfig, GridThermalModel,
    GridTransient, PackageConfig, ThermalModel, TransientSolver,
};
use dtm_workloads::{TraceGenConfig, TraceLibrary, Workload};
use std::path::PathBuf;

fn fast_lib() -> TraceLibrary {
    TraceLibrary::new(TraceGenConfig::fast_test())
}

/// A sweep that exercises everything one lane group can mix: two
/// workloads, two policy families, a fault scenario, a shorter-duration
/// variant (lanes retire mid-batch), and a backward-Euler variant that
/// must fall out of the lane group entirely.
fn mixed_spec() -> SweepSpec {
    let base = SimConfig {
        duration: 0.03,
        ..SimConfig::fast_test()
    };
    let short = SimConfig {
        duration: 0.015,
        ..base.clone()
    };
    let euler = SimConfig {
        thermal_solver: SolverBackend::BackwardEuler,
        ..base.clone()
    };
    let dtm = DtmConfig::default();
    SweepSpec::new(vec![
        Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
        Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
    ])
    .variant(ConfigVariant::new("base", base.clone(), dtm))
    .add_variant(ConfigVariant::new("faulty", base.clone(), dtm).with_faults(
        FaultConfig::unprotected(FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, 0.005)),
    ))
    .add_variant(ConfigVariant::new("short", short, dtm))
    .add_variant(ConfigVariant::new("euler", euler, dtm))
    .policies([
        PolicySpec::best(),
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
    ])
}

// ---------------------------------------------------------------------
// 1. Whole-RunResult byte identity across lane widths.
// ---------------------------------------------------------------------

#[test]
fn every_lane_width_replays_the_scalar_sweep_byte_for_byte() {
    let spec = mixed_spec();
    let scalar = SweepRunner::bare(fast_lib())
        .with_workers(2)
        .with_lanes(1)
        .run(spec.clone())
        .expect("scalar sweep");
    assert_eq!(scalar.executed(), 16);

    // Width 8 packs the 12 groupable cells as one full batch plus a
    // ragged 4-lane batch; width 3 as four exact batches; width 2 as
    // six. The 4 backward-Euler cells run as scalar singletons in every
    // case. All of them must reproduce the scalar bytes.
    for lanes in [2usize, 3, 8] {
        let batched = SweepRunner::bare(fast_lib())
            .with_workers(2)
            .with_lanes(lanes)
            .run(spec.clone())
            .expect("batched sweep");
        assert_eq!(batched.executed(), 16, "lanes={lanes}");
        for (a, b) in scalar.outcomes().iter().zip(batched.outcomes()) {
            assert_eq!(a.key, b.key, "lanes={lanes}: cache key changed");
            assert_eq!(
                result_to_json(&a.result).emit(),
                result_to_json(&b.result).emit(),
                "lanes={lanes}: result bytes diverged on key {:?}",
                a.key
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. Solver-level lockstep equality, lumped and grid, around the
//    LANE_BLOCK boundary.
// ---------------------------------------------------------------------

const DT: f64 = 100_000.0 / 3.6e9;

/// Deterministic per-lane, per-step power wiggle on top of a base load.
fn lane_power(n: usize, lane: usize, step: usize) -> Vec<f64> {
    (0..n)
        .map(|b| 0.4 + 0.05 * ((lane + 1) as f64) + 0.01 * (((step + b) % 7) as f64))
        .collect()
}

#[test]
fn lumped_lockstep_matches_scalar_at_every_lane_count() {
    let fp = Floorplan::ppc_cmp(4);
    let model = ThermalModel::new(&fp, &PackageConfig::default()).unwrap();
    let n = model.n_blocks();

    for lanes in [1usize, 2, 3, 5, LANE_BLOCK, LANE_BLOCK + 3] {
        let mk = |lane: usize| {
            let mut s = TransientSolver::new(model.clone(), 7e-6);
            s.init_steady(&lane_power(n, lane, 0)).unwrap();
            s.prewarm(DT).unwrap();
            assert!(!s.in_fallback());
            s
        };
        let mut scalar: Vec<TransientSolver> = (0..lanes).map(mk).collect();
        let mut batched: Vec<TransientSolver> = (0..lanes).map(mk).collect();
        let mut ws = BatchWorkspace::new();

        for step in 0..40 {
            let powers: Vec<Vec<f64>> = (0..lanes).map(|l| lane_power(n, l, step)).collect();
            for (s, p) in scalar.iter_mut().zip(&powers) {
                s.step(p, DT).unwrap();
            }
            let took_batch = {
                let mut lane_refs: Vec<(&mut TransientSolver, &[f64])> = batched
                    .iter_mut()
                    .zip(&powers)
                    .map(|(s, p)| (s, p.as_slice()))
                    .collect();
                step_lumped_batch(&mut lane_refs, DT, &mut ws).unwrap()
            };
            assert_eq!(
                took_batch,
                lanes >= 2,
                "lanes={lanes}: shared propagators must batch (and a single lane must not)"
            );
            if !took_batch {
                // The scalar fallback is the caller's job, exactly as
                // the lockstep driver does it.
                for (s, p) in batched.iter_mut().zip(&powers) {
                    s.step(p, DT).unwrap();
                }
            }
            for (l, (a, b)) in scalar.iter().zip(&batched).enumerate() {
                for (i, (x, y)) in a.block_temps().iter().zip(b.block_temps()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "lanes={lanes} lane={l} step={step} block={i}: {x} != {y}"
                    );
                }
            }
        }
    }
}

#[test]
fn grid_lockstep_matches_scalar_including_ragged_blocks() {
    let fp = Floorplan::ppc_cmp(4);
    let pkg = PackageConfig::default();
    let model = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 6, rows: 8 }).unwrap();
    let n = model.n_blocks();

    for lanes in [2usize, 5, LANE_BLOCK] {
        let mk = |lane: usize| {
            let mut s = GridTransient::new(model.clone(), 7e-6);
            s.init_steady(&lane_power(n, lane, 0)).unwrap();
            s.prewarm(DT).unwrap();
            assert!(!s.in_fallback());
            s
        };
        let mut scalar: Vec<GridTransient> = (0..lanes).map(mk).collect();
        let mut batched: Vec<GridTransient> = (0..lanes).map(mk).collect();
        let mut ws = BatchWorkspace::new();

        for step in 0..25 {
            let powers: Vec<Vec<f64>> = (0..lanes).map(|l| lane_power(n, l, step)).collect();
            for (s, p) in scalar.iter_mut().zip(&powers) {
                s.step(p, DT).unwrap();
            }
            let mut lane_refs: Vec<(&mut GridTransient, &[f64])> = batched
                .iter_mut()
                .zip(&powers)
                .map(|(s, p)| (s, p.as_slice()))
                .collect();
            let took_batch = step_grid_batch(&mut lane_refs, DT, &mut ws).unwrap();
            assert!(
                took_batch,
                "lanes={lanes}: shared grid propagators must batch"
            );
            for (l, (a, b)) in scalar.iter().zip(&batched).enumerate() {
                let (ta, tb) = (a.temps(), b.temps());
                for (i, (x, y)) in ta.cells().iter().zip(tb.cells()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "lanes={lanes} lane={l} step={step} cell={i}: {x} != {y}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Cache artifacts are byte-identical between lane widths.
// ---------------------------------------------------------------------

#[test]
fn lane_widths_write_byte_identical_cache_artifacts() {
    let spec = mixed_spec();
    let base = std::env::temp_dir().join(format!("dtm-batch-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs = [base.join("lanes1"), base.join("lanes8")];
    for (dir, lanes) in dirs.iter().zip([1usize, 8]) {
        SweepRunner::bare(fast_lib())
            .with_workers(2)
            .with_lanes(lanes)
            .with_cache(Some(ResultCache::new(dir)))
            .run(spec.clone())
            .expect("cached sweep");
    }
    let read_dir = |d: &PathBuf| -> Vec<(String, Vec<u8>)> {
        let mut entries: Vec<_> = std::fs::read_dir(d)
            .expect("cache dir")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        entries.sort();
        entries
    };
    let (a, b) = (read_dir(&dirs[0]), read_dir(&dirs[1]));
    assert_eq!(a.len(), 16, "every cell must be cached");
    assert_eq!(a, b, "cache bytes differ between lane widths");
    let _ = std::fs::remove_dir_all(&base);
}
