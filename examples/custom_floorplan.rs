//! Custom floorplan study: move the two register files to opposite
//! corners of the core and compare steady-state hotspots against the
//! stock layout — a miniature temperature-aware-floorplanning experiment
//! built from the library's public API.
//!
//! ```sh
//! cargo run --release -p dtm-examples --bin custom_floorplan
//! ```

use dtm_floorplan::{CoreTemplate, Floorplan, UnitKind};
use dtm_power::{leakage_reference, DEFAULT_LOGIC_LEAKAGE, DEFAULT_SRAM_LEAKAGE};
use dtm_thermal::{LeakageModel, PackageConfig, ThermalModel};

/// A variant core layout with the register files separated: the integer
/// RF stays in the integer cluster but the FP RF moves to the far corner
/// next to the I-cache, away from the integer cluster's heat.
fn separated_rf_core() -> CoreTemplate {
    use UnitKind::*;
    CoreTemplate::new(
        vec![
            (Icache, 0.00, 0.00, 0.35, 0.30),
            (FpRegFile, 0.35, 0.00, 0.20, 0.30), // moved into the cool strip
            (Dcache, 0.55, 0.00, 0.45, 0.30),
            (Fetch, 0.00, 0.30, 0.30, 0.20),
            (BranchPred, 0.30, 0.30, 0.25, 0.20),
            (Rename, 0.55, 0.30, 0.25, 0.20),
            (Bxu, 0.80, 0.30, 0.20, 0.20),
            (IssueInt, 0.00, 0.50, 0.22, 0.25),
            (IntRegFile, 0.22, 0.50, 0.18, 0.25),
            (Fxu, 0.40, 0.50, 0.30, 0.25),
            (Lsu, 0.70, 0.50, 0.30, 0.25),
            (IssueFp, 0.00, 0.75, 0.30, 0.25),
            (Fpu, 0.30, 0.75, 0.70, 0.25),
        ],
        4.5e-3,
        4.5e-3,
    )
}

fn hotspots(fp: &Floorplan, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let pkg = PackageConfig::default();
    let model = ThermalModel::new(fp, &pkg)?;
    let leak = LeakageModel::new(
        leakage_reference(fp, DEFAULT_LOGIC_LEAKAGE, DEFAULT_SRAM_LEAKAGE),
        45.0,
        (2.0f64).ln() / 40.0,
    );

    // A mixed int+fp power pattern: both register files active.
    let mut power = vec![0.0; fp.len()];
    for core in 0..fp.cores() {
        for (kind, watts) in [
            (UnitKind::IntRegFile, 2.8),
            (UnitKind::FpRegFile, 2.4),
            (UnitKind::Fxu, 1.1),
            (UnitKind::Fpu, 1.2),
            (UnitKind::Lsu, 0.9),
            (UnitKind::Dcache, 0.9),
            (UnitKind::Icache, 0.7),
            (UnitKind::IssueInt, 0.6),
            (UnitKind::IssueFp, 0.4),
            (UnitKind::Rename, 0.4),
            (UnitKind::Fetch, 0.3),
            (UnitKind::BranchPred, 0.4),
            (UnitKind::Bxu, 0.2),
        ] {
            let idx = fp.block_of(core, kind).expect("unit exists");
            power[idx] += watts;
        }
    }
    leak.add_power(&vec![70.0; fp.len()], &mut power);
    let temps = model.steady_state(&power)?;

    let mut hottest: Vec<(usize, f64)> = (0..fp.len()).map(|i| (i, temps[i])).collect();
    hottest.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\n{label}: five hottest blocks");
    for (i, t) in hottest.iter().take(5) {
        println!("  {:<16} {:6.1} C", fp.blocks()[*i].name(), t);
    }
    let int_rf = fp.block_of(0, UnitKind::IntRegFile).expect("int RF");
    let fp_rf = fp.block_of(0, UnitKind::FpRegFile).expect("fp RF");
    println!(
        "  core0 register files: int {:.1} C, fp {:.1} C",
        temps[int_rf], temps[fp_rf]
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stock = Floorplan::ppc_cmp(4);
    stock.validate()?;
    hotspots(&stock, "stock layout (register files adjacent to clusters)")?;

    let template = separated_rf_core();
    // Assemble a 4-core chip from the custom template by instantiating
    // cores manually around a shared L2 (mirrors Floorplan::ppc_cmp).
    let mut blocks = Vec::new();
    let l2_h = 0.5 * 2.0 * template.core_height;
    let chip_w = 2.0 * template.core_width;
    blocks.push(dtm_floorplan::Block::new(
        "l2",
        UnitKind::L2,
        None,
        0.0,
        0.0,
        chip_w,
        l2_h,
    ));
    for core in 0..4 {
        let ox = (core % 2) as f64 * template.core_width;
        let oy = l2_h + (core / 2) as f64 * template.core_height;
        blocks.extend(template.instantiate(core, ox, oy));
    }
    let custom = Floorplan::from_blocks(blocks, chip_w, l2_h + 2.0 * template.core_height);
    custom.validate()?;
    hotspots(
        &custom,
        "separated layout (FP register file moved to the cache strip)",
    )?;

    println!("\nseparating the register files lowers the FP hotspot by conduction into");
    println!("the cooler cache strip — the floorplanning lever the DTM paper cites as");
    println!("related work (Han et al., temperature-aware floorplanning).");
    Ok(())
}
