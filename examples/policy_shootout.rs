//! Policy shootout: run all 12 taxonomy cells on one workload and rank
//! them by throughput.
//!
//! ```sh
//! cargo run --release -p dtm-examples --bin policy_shootout -- workload8
//! ```

use dtm_core::{DtmConfig, Experiment, PolicySpec, SimConfig};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "workload7".into());
    let workload = standard_workloads()
        .into_iter()
        .find(|w| w.id == wanted)
        .ok_or_else(|| format!("unknown workload `{wanted}` (try workload1..workload12)"))?;

    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        SimConfig {
            duration: 0.1,
            ..SimConfig::default()
        },
        DtmConfig::default(),
    );

    println!(
        "ranking all 12 policies on {} ({})\n",
        workload.display_name(),
        workload.mix_label()
    );
    let mut rows = Vec::new();
    for policy in PolicySpec::all() {
        let r = exp.run(&workload, policy)?;
        rows.push((policy, r));
    }
    rows.sort_by(|a, b| b.1.bips().total_cmp(&a.1.bips()));
    let base = rows
        .iter()
        .find(|(p, _)| *p == PolicySpec::baseline())
        .map(|(_, r)| r.bips())
        .expect("baseline is one of the 12");

    println!(
        "{:<4} {:<46} {:>7} {:>8} {:>9}",
        "#", "policy", "BIPS", "duty", "vs base"
    );
    for (i, (policy, r)) in rows.iter().enumerate() {
        println!(
            "{:<4} {:<46} {:>7.2} {:>7.1}% {:>8.2}x",
            i + 1,
            policy.name(),
            r.bips(),
            100.0 * r.duty_cycle,
            r.bips() / base
        );
    }
    Ok(())
}
