//! Migration trace: watch the two-loop policy (distributed PI-DVFS inner
//! loop + sensor-based migration outer loop) steer gzip-twolf-ammp-lucas
//! in real time, printing every migration with the thermal state that
//! motivated it.
//!
//! ```sh
//! cargo run --release -p dtm-examples --bin migration_trace
//! ```

use dtm_core::{DtmConfig, PolicySpec, SimConfig, Telemetry, ThermalTimingSim};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = TraceLibrary::new(TraceGenConfig::default());
    let workload = &standard_workloads()[6]; // gzip-twolf-ammp-lucas
    let traces = workload.resolve().iter().map(|b| lib.trace(b)).collect();

    let mut sim = ThermalTimingSim::new(
        SimConfig {
            duration: 0.1,
            ..SimConfig::default()
        },
        DtmConfig::default(),
        PolicySpec::best(),
        traces,
    )?;
    sim.attach_telemetry(Telemetry::every(4));

    println!(
        "two-loop policy ({}) on {}\n",
        sim.policy().name(),
        workload.display_name()
    );

    // Drive the simulation step by step, reporting each migration.
    let names = &workload.benchmarks;
    let mut last = sim.assignment().to_vec();
    while sim.time() < 0.1 {
        sim.step()?;
        if sim.assignment() != last.as_slice() {
            let temps: Vec<String> = sim
                .sensor_temps()
                .iter()
                .map(|t| format!("{:.0}/{:.0}", t[0], t[1]))
                .collect();
            let placement: Vec<String> = sim
                .assignment()
                .iter()
                .enumerate()
                .map(|(c, &t)| format!("core{}={}", c, names[t]))
                .collect();
            println!(
                "t={:6.2} ms  MIGRATION  {}  [int/fp °C: {}]",
                sim.time() * 1e3,
                placement.join(" "),
                temps.join(" ")
            );
            last = sim.assignment().to_vec();
        }
    }

    let result = sim.result();
    println!(
        "\nfinished: {:.2} BIPS, duty {:.1}%, {} migrations, max temp {:.1} C, \
         emergencies {:.2} ms",
        result.bips(),
        100.0 * result.duty_cycle,
        result.migrations,
        result.max_temp,
        1e3 * result.emergency_time
    );
    for (i, t) in result.threads.iter().enumerate() {
        println!(
            "  {:<8} work {:.1} ms, migrated {} times",
            names[i],
            1e3 * t.scaled_work,
            t.migrations
        );
    }
    Ok(())
}
