//! Quickstart: simulate one multiprogrammed workload under the paper's
//! baseline policy and its best two-loop policy, and compare.
//!
//! ```sh
//! cargo run --release -p dtm-examples --bin quickstart
//! ```

use dtm_core::{DtmConfig, Experiment, PolicySpec, SimConfig};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A shortened run so the example finishes in seconds; drop the
    // `duration` override (default 0.5 s) for study-scale results.
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        SimConfig {
            duration: 0.1,
            ..SimConfig::default()
        },
        DtmConfig::default(),
    );

    // gzip-twolf-ammp-lucas: the paper's running example of a workload
    // whose integer-bound and FP-bound threads heat different hotspots.
    let workload = &standard_workloads()[6];
    println!(
        "workload: {} ({})",
        workload.display_name(),
        workload.mix_label()
    );

    let baseline = exp.run(workload, PolicySpec::baseline())?;
    let best = exp.run(workload, PolicySpec::best())?;

    for (policy, r) in [
        (PolicySpec::baseline(), &baseline),
        (PolicySpec::best(), &best),
    ] {
        println!(
            "\n{}:\n  {:.2} BIPS | duty {:.1}% | hottest sensor {:.1} C | \
             {} stalls | {} migrations | emergencies {:.2} ms",
            policy.name(),
            r.bips(),
            100.0 * r.duty_cycle,
            r.max_temp,
            r.stalls,
            r.migrations,
            1e3 * r.emergency_time,
        );
    }
    println!(
        "\nspeedup of the two-loop policy over the baseline: {:.2}x",
        best.relative_throughput(&baseline)
    );
    Ok(())
}
