#!/usr/bin/env bash
# Regenerates every table/figure reproduction and extension experiment
# into results/. Takes ~25 minutes at the default 0.5 s run duration;
# pass a shorter duration (e.g. 0.1) as $1 for a quick pass.
set -euo pipefail
cd "$(dirname "$0")/.."
duration="${1:-0.5}"
mkdir -p results
experiments=(
  exp_config exp_table1 exp_fig3_table5 exp_table6 exp_table7 exp_fig7
  exp_table8 exp_threshold exp_control exp_duty_validation
  exp_sensor_noise exp_core_scaling exp_fig5 exp_energy
  exp_ablation_rotation exp_ablation_interval exp_ablation_fastmode
  exp_grid_validation exp_asymmetric
)
for exp in "${experiments[@]}"; do
  echo ">>> $exp"
  cargo run --release -p dtm-bench --bin "$exp" -- "$duration" > "results/$exp.txt"
done
echo "all experiments written to results/"
