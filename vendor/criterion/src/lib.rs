//! Offline stub of the `criterion` API surface used by this workspace's
//! benches: `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, and
//! `Criterion::sample_size`. Each benchmark is timed with
//! `std::time::Instant` over `sample_size` batches and reported as a
//! mean per-iteration wall time on stdout — enough to compare runs by
//! eye, with none of criterion's statistics, warm-up control, or
//! reports.

use std::time::{Duration, Instant};

/// Re-export matching criterion's long-standing alias.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stub times every routine
/// invocation individually regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Times closures handed to `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!("bench {id:<40} {:>12.3} µs/iter", per_iter * 1e6);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, in either criterion spelling.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub/iter", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("stub");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }
}
