//! Offline stub of the `serde` facade.
//!
//! The build container has no network access and an empty crates-io
//! mirror, so the workspace vendors the minimal API surface it actually
//! uses (see `vendor/README.md`). The repo derives `Serialize` /
//! `Deserialize` on its data types but never exercises a serde
//! serializer — every on-disk format is a hand-written codec (the trace
//! cache in `dtm-power::serialize`, the harness result cache and ledger
//! in `dtm-harness`). The traits are therefore markers: deriving them
//! keeps the public API source-compatible with the real `serde` so the
//! stub can be swapped back out by deleting the `[patch.crates-io]`
//! entry, without committing to a wire format here.

/// Marker for types that real `serde` could serialize.
pub trait Serialize {}

/// Marker for types that real `serde` could deserialize.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<T: Deserialize + ?Sized> Deserialize for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl Serialize for str {}
