//! Offline stub of `serde_derive`.
//!
//! The vendored `serde` facade defines `Serialize` / `Deserialize` as
//! marker traits (nothing in this workspace drives a serde serializer),
//! so the derives only need to name the type: they hand-parse the item
//! header out of the token stream — no `syn`/`quote`, which are equally
//! unavailable offline — and emit an empty trait impl. Generic types are
//! rejected explicitly; the workspace has none and supporting them
//! without `syn` is not worth the parser.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum`/`union` item, skipping
/// attributes, doc comments, and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // `#[...]` attribute: consume the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = tokens.peek() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "stub serde_derive does not support generic type `{name}`"
                                    );
                                }
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name after `{kw}`, found {other:?}"),
                    }
                }
                // `pub`, `pub(crate)`, etc.: keep scanning.
            }
            _ => {}
        }
    }
    panic!("stub serde_derive: no struct/enum found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
