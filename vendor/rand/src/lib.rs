//! Offline stub of the `rand 0.9` API surface used in this workspace:
//! `SeedableRng::seed_from_u64`, `Rng::random` (for `f64`/`bool` and the
//! unsigned integers), and `Rng::random_range` over half-open integer
//! ranges. Backed by xoshiro256++ seeded through SplitMix64 — a
//! different stream than the real `StdRng` (ChaCha12), so any test
//! calibrated to exact random sequences needs recalibration (DESIGN.md
//! §6 records the affected tolerances).

use std::ops::Range;

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from raw random bits via `Rng::random`.
pub trait FromRandomBits: Sized {
    /// Draws one value from `rng`.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandomBits for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandomBits for f32 {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandomBits for bool {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandomBits for u64 {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandomBits for u32 {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRandomBits for usize {
    fn from_random_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable via `Rng::random_range`.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased bounded u64 via Lemire-style rejection sampling.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw unbiased without 128-bit widening
    // tricks; the loop terminates with overwhelming probability.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = bounded_u64(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        })*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let u = f64::from_random_bits(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling trait (`rand 0.9` spelling).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: FromRandomBits>(&mut self) -> T {
        T::from_random_bits(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64. Deterministic, `Clone`, and fast; not the real
    /// `StdRng`'s ChaCha12 stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for code written against `SmallRng`.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }
}
