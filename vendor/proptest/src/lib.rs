//! Offline stub of the `proptest` API surface used in this workspace:
//! `proptest!`, `prop_compose!`, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, range strategies, and
//! `collection::vec`. Cases are sampled from a deterministic generator
//! (same inputs every run) and failures are reported through plain
//! `assert!` panics — there is no shrinking. That keeps the property
//! tests meaningful as randomized coverage while remaining buildable
//! with no registry access; swap the `[patch.crates-io]` entry to
//! return to the real engine.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            })*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A strategy defined by a sampling closure (the `prop_compose!`
    /// building block).
    pub struct SampleFn<T, F: Fn(&mut TestRng) -> T>(F);

    impl<T, F: Fn(&mut TestRng) -> T> SampleFn<T, F> {
        /// Wraps a sampling closure.
        pub fn new(f: F) -> Self {
            SampleFn(f)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for SampleFn<T, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {
            $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            })*
        };
    }

    impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s with element strategy `S` and a length
    /// drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose lengths fall in `size` (half-open, as in
    /// real proptest's range-based sizes).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner configuration.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The generator handed to strategies. Fixed seed: every run
    /// explores the same cases (no shrinking, so reproducibility is the
    /// debugging story).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// The deterministic per-test generator.
        pub fn deterministic() -> Self {
            TestRng(StdRng::seed_from_u64(0x70_72_6f_70))
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases sampled per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; these properties exercise
            // full model conversions, so a smaller deterministic sweep
            // keeps `cargo test` fast.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

/// Asserts a property-case condition (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Declares a named strategy built by sampling sub-strategies and
/// mapping them through a body expression.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::SampleFn::new(
                move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                },
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u64..10, b in 10u64..20) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 3usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn composed_strategies_apply_bodies(p in arb_pair()) {
            prop_assert!(p.0 < p.1);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0i32..5, 1usize..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
