//! Approximate out-of-order core timing model.
//!
//! The model processes the synthetic instruction stream in program order
//! and computes per-instruction issue/completion timestamps under the
//! structural constraints of Table 3: fetch width (with I-cache misses
//! and branch-mispredict redirects), the in-flight window implied by the
//! rename registers, per-cluster issue-queue depth, functional-unit
//! contention, and the three-level memory hierarchy. This
//! "timestamp-propagation" style model captures the first-order IPC
//! behaviour of an OOO core (dependence chains, MLP, structural hazards)
//! at a small fraction of the cost of a cycle-accurate simulator — the
//! right trade-off here, where thousands of 27.78 µs power samples must
//! be produced per benchmark.

use crate::activity::ActivityCounters;
use crate::bpred::BranchPredictor;
use crate::cache::SetAssocCache;
use crate::config::CoreConfig;
use crate::instr::{InstrKind, StreamGenerator, StreamProfile};

const RING: usize = 512;

/// A single simulated core running one synthetic instruction stream.
///
/// # Examples
///
/// ```
/// use dtm_microarch::{CoreConfig, CoreSim, StreamProfile};
///
/// let mut core = CoreSim::new(CoreConfig::default(), StreamProfile::generic_int(), 1);
/// let counters = core.run_cycles(50_000);
/// assert!(counters.ipc() > 0.1 && counters.ipc() < 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: CoreConfig,
    generator: StreamGenerator,
    bpred: BranchPredictor,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    /// Completion timestamps of the last `RING` instructions.
    completion: [u64; RING],
    /// Completion timestamps of recent int-cluster / fp-cluster
    /// instructions, for issue-queue backpressure.
    int_ring: [u64; RING],
    fp_ring: [u64; RING],
    seq: u64,
    int_seq: u64,
    fp_seq: u64,
    /// Monotone dispatch clock: the model's notion of elapsed time.
    now: u64,
    fetch_cycle: u64,
    fetched_this_cycle: usize,
    redirect_at: u64,
    /// Next-free cycle per functional unit instance.
    fxu_free: Vec<u64>,
    fpu_free: Vec<u64>,
    lsu_free: Vec<u64>,
    bxu_free: Vec<u64>,
}

impl CoreSim {
    /// Creates a core running `profile` with deterministic `seed`.
    pub fn new(cfg: CoreConfig, profile: StreamProfile, seed: u64) -> Self {
        let bpred = BranchPredictor::new(cfg.bpred_entries);
        let l1i = SetAssocCache::new(cfg.l1i, 1.0);
        let l1d = SetAssocCache::new(cfg.l1d, 1.0);
        let l2 = SetAssocCache::new(cfg.l2, cfg.l2_capacity_fraction);
        CoreSim {
            fxu_free: vec![0; cfg.n_fxu],
            fpu_free: vec![0; cfg.n_fpu],
            lsu_free: vec![0; cfg.n_lsu],
            bxu_free: vec![0; cfg.n_bxu],
            cfg,
            generator: StreamGenerator::new(profile, seed),
            bpred,
            l1i,
            l1d,
            l2,
            completion: [0; RING],
            int_ring: [0; RING],
            fp_ring: [0; RING],
            seq: 0,
            int_seq: 0,
            fp_seq: 0,
            now: 0,
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            redirect_at: 0,
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Switches the instruction stream profile (phase change) without
    /// disturbing cache or predictor state.
    pub fn set_profile(&mut self, profile: StreamProfile) {
        self.generator.set_profile(profile);
    }

    /// Flushes L1 caches, modeling the cold-start cost of a context
    /// switch onto this core.
    pub fn context_switch(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
    }

    /// Runs the model for (at least) `cycles` cycles and returns the
    /// activity of the interval.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn run_cycles(&mut self, cycles: u64) -> ActivityCounters {
        assert!(cycles > 0, "interval must be non-empty");
        let start = self.now;
        let end = start + cycles;
        let mut c = ActivityCounters {
            cycles,
            ..Default::default()
        };

        while self.now < end {
            let instr = self.generator.next_instr();
            self.execute(&instr, &mut c);
        }
        c
    }

    /// Runs one 100 000-cycle power-trace sample, optionally simulating
    /// only `1/sampling` of the cycles and extrapolating counters
    /// (statistical sampling; `sampling = 1` is exact).
    ///
    /// # Panics
    ///
    /// Panics if `sampling` is zero or does not divide the sample.
    pub fn run_sample(&mut self, sampling: u64) -> ActivityCounters {
        assert!(sampling > 0, "sampling factor must be positive");
        let total = CoreConfig::CYCLES_PER_SAMPLE;
        assert!(
            total.is_multiple_of(sampling),
            "sampling must divide {total}"
        );
        let burst = total / sampling;
        let mut counters = self.run_cycles(burst);
        counters = counters.scaled(sampling);
        counters.cycles = total;
        counters
    }

    fn execute(&mut self, instr: &crate::instr::Instr, c: &mut ActivityCounters) {
        let cfg = &self.cfg;

        // ---- Fetch ----
        if self.fetch_cycle < self.redirect_at {
            self.fetch_cycle = self.redirect_at;
            self.fetched_this_cycle = 0;
        }
        if self.fetched_this_cycle >= cfg.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        self.fetched_this_cycle += 1;
        c.fetches += 1;

        // I-cache: one access per fetched block (block = 32 instructions
        // of 4 bytes).
        if self.seq.is_multiple_of(32) {
            c.icache_accesses += 1;
            if !self.l1i.access(instr.pc) {
                c.l2_accesses += 1;
                let penalty = if self.l2.access(instr.pc) {
                    cfg.l2_latency
                } else {
                    c.mem_accesses += 1;
                    cfg.mem_latency
                };
                self.fetch_cycle += penalty;
            }
        }

        // The fetch engine may not run unboundedly ahead of dispatch
        // (finite fetch buffer), nor fall behind the dispatch clock.
        self.fetch_cycle = self
            .fetch_cycle
            .clamp(self.now.saturating_sub(8), self.now + 64);

        // ---- Dispatch / window and queue constraints ----
        c.rename_ops += 1;
        let mut dispatch = self.fetch_cycle + 5; // front-end depth
        let window = cfg.window as u64;
        if self.seq >= window {
            let oldest = self.completion[((self.seq - window) % RING as u64) as usize];
            dispatch = dispatch.max(oldest);
        }
        let is_fp = instr.kind.is_fp();
        if is_fp {
            let q = cfg.fp_queue as u64;
            if self.fp_seq >= q {
                let head = self.fp_ring[((self.fp_seq - q) % RING as u64) as usize];
                dispatch = dispatch.max(head);
            }
        } else {
            let q = cfg.int_queue as u64;
            if self.int_seq >= q {
                let head = self.int_ring[((self.int_seq - q) % RING as u64) as usize];
                dispatch = dispatch.max(head);
            }
        }

        // ---- Operand readiness ----
        let mut ready = dispatch;
        let dep = instr.dep_distance as u64;
        if dep > 0 && dep <= self.seq.min(RING as u64 - 1) {
            let producer = self.completion[((self.seq - dep) % RING as u64) as usize];
            ready = ready.max(producer);
        }

        // ---- Functional unit selection ----
        let (fu_free, pipelined): (&mut Vec<u64>, bool) = match instr.kind {
            InstrKind::IntAlu => (&mut self.fxu_free, true),
            InstrKind::IntMul => (&mut self.fxu_free, false),
            InstrKind::FpOp => (&mut self.fpu_free, true),
            InstrKind::FpDiv => (&mut self.fpu_free, false),
            InstrKind::Load | InstrKind::Store => (&mut self.lsu_free, true),
            InstrKind::Branch => (&mut self.bxu_free, true),
        };
        let (slot, &slot_free) = fu_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one functional unit");
        let issue = ready.max(slot_free);

        // ---- Execution latency ----
        let mut latency = instr.kind.latency();
        if matches!(instr.kind, InstrKind::Load | InstrKind::Store) {
            c.dcache_accesses += 1;
            if !self.l1d.access(instr.addr) {
                c.l2_accesses += 1;
                if self.l2.access(instr.addr) {
                    latency += cfg.l2_latency;
                } else {
                    c.mem_accesses += 1;
                    latency += cfg.mem_latency;
                }
            }
        }
        // Stores complete from the pipeline's view once issued.
        if instr.kind == InstrKind::Store {
            latency = 1;
        }
        fu_free[slot] = if pipelined {
            issue + 1
        } else {
            issue + latency
        };

        let complete = issue + latency;

        // ---- Branch resolution ----
        if instr.kind == InstrKind::Branch {
            c.bpred_lookups += 1;
            c.bxu_ops += 1;
            let correct = self.bpred.predict_and_update(instr.pc, instr.taken);
            if !correct {
                c.mispredicts += 1;
                self.redirect_at = self.redirect_at.max(complete + cfg.mispredict_penalty);
            }
        }

        // ---- Bookkeeping and activity ----
        self.completion[(self.seq % RING as u64) as usize] = complete;
        if is_fp {
            self.fp_ring[((self.fp_seq) % RING as u64) as usize] = complete;
            self.fp_seq += 1;
            c.issue_fp += 1;
            c.fp_rf_accesses += 3; // 2 reads + 1 write
            c.fpu_ops += 1;
        } else {
            self.int_ring[((self.int_seq) % RING as u64) as usize] = complete;
            self.int_seq += 1;
            c.issue_int += 1;
            match instr.kind {
                InstrKind::IntAlu | InstrKind::IntMul => {
                    c.int_rf_accesses += 3;
                    c.fxu_ops += 1;
                }
                InstrKind::Load => {
                    c.int_rf_accesses += 2; // address + destination
                    c.lsu_ops += 1;
                }
                InstrKind::Store => {
                    c.int_rf_accesses += 2; // address + data read
                    c.lsu_ops += 1;
                }
                InstrKind::Branch => {
                    c.int_rf_accesses += 1; // condition read
                }
                _ => unreachable!("fp kinds handled above"),
            }
        }
        // Advance the monotone dispatch clock.
        self.now = self.now.max(dispatch);
        self.seq += 1;
        c.instructions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(profile: StreamProfile, seed: u64) -> CoreSim {
        CoreSim::new(CoreConfig::default(), profile, seed)
    }

    #[test]
    fn ipc_is_in_plausible_range() {
        let mut s = sim(StreamProfile::generic_int(), 1);
        let c = s.run_cycles(200_000);
        let ipc = c.ipc();
        assert!(ipc > 0.3 && ipc < 6.0, "ipc = {ipc}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let mut a = sim(StreamProfile::generic_int(), 42);
        let mut b = sim(StreamProfile::generic_int(), 42);
        assert_eq!(a.run_cycles(50_000), b.run_cycles(50_000));
    }

    #[test]
    fn fp_profile_exercises_fp_units() {
        let mut s = sim(StreamProfile::generic_fp(), 2);
        let c = s.run_cycles(100_000);
        assert!(c.fpu_ops > 0);
        assert!(c.fp_rf_accesses > c.fpu_ops);
        // FP stream touches the FP register file far more than an int
        // stream does.
        let mut si = sim(StreamProfile::generic_int(), 2);
        let ci = si.run_cycles(100_000);
        assert!(c.fp_rf_per_cycle() > 10.0 * (ci.fp_rf_per_cycle() + 1e-9));
    }

    #[test]
    fn int_profile_stresses_int_register_file() {
        let mut s = sim(StreamProfile::generic_int(), 3);
        let c = s.run_cycles(100_000);
        assert!(c.int_rf_per_cycle() > c.fp_rf_per_cycle());
        assert!(c.fxu_ops > 0);
        assert_eq!(c.fpu_ops, 0);
    }

    #[test]
    fn memory_bound_profile_has_low_ipc() {
        // A huge, low-locality working set (mcf-like) must run much
        // slower than a cache-resident one.
        let mut mem_bound = StreamProfile::generic_int();
        mem_bound.data_working_set = 64 * 1024 * 1024;
        mem_bound.data_locality = 0.2;
        mem_bound.frac_load = 0.35;
        mem_bound.mean_dep_distance = 2.0;

        let mut cache_resident = StreamProfile::generic_int();
        cache_resident.data_working_set = 16 * 1024;

        let ipc_mem = sim(mem_bound, 4).run_cycles(300_000).ipc();
        let ipc_cache = sim(cache_resident, 4).run_cycles(300_000).ipc();
        assert!(
            ipc_cache > 2.0 * ipc_mem,
            "cache {ipc_cache} vs mem {ipc_mem}"
        );
    }

    #[test]
    fn low_ilp_reduces_ipc() {
        let mut serial = StreamProfile::generic_int();
        serial.mean_dep_distance = 1.2;
        let mut parallel = StreamProfile::generic_int();
        parallel.mean_dep_distance = 16.0;
        let ipc_serial = sim(serial, 5).run_cycles(200_000).ipc();
        let ipc_parallel = sim(parallel, 5).run_cycles(200_000).ipc();
        assert!(
            ipc_parallel > ipc_serial,
            "parallel {ipc_parallel} vs serial {ipc_serial}"
        );
    }

    #[test]
    fn poor_branch_prediction_reduces_ipc() {
        let mut bad = StreamProfile::generic_int();
        bad.branch_predictability = 0.3;
        bad.frac_branch = 0.2;
        let mut good = StreamProfile::generic_int();
        good.branch_predictability = 1.0;
        good.frac_branch = 0.2;
        let ipc_bad = sim(bad, 6).run_cycles(200_000).ipc();
        let ipc_good = sim(good, 6).run_cycles(200_000).ipc();
        assert!(ipc_good > 1.2 * ipc_bad, "good {ipc_good} vs bad {ipc_bad}");
    }

    #[test]
    fn run_sample_covers_sample_cycles() {
        let mut s = sim(StreamProfile::generic_int(), 7);
        let c = s.run_sample(1);
        assert_eq!(c.cycles, CoreConfig::CYCLES_PER_SAMPLE);
        assert!(c.instructions > 0);
    }

    #[test]
    fn sampled_run_approximates_full_run_rates() {
        let mut full = sim(StreamProfile::generic_int(), 8);
        let mut sampled = sim(StreamProfile::generic_int(), 8);
        // Warm caches and predictors first so the comparison measures
        // steady-state rates, not cold-start transients (filling the L2
        // takes a few hundred thousand cycles).
        full.run_cycles(400_000);
        sampled.run_cycles(400_000);
        let cf = full.run_sample(1);
        let cs = sampled.run_sample(5);
        assert_eq!(cs.cycles, cf.cycles);
        let rel = (cs.ipc() - cf.ipc()).abs() / cf.ipc();
        assert!(rel < 0.15, "sampled IPC off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn context_switch_causes_transient_slowdown() {
        // A single 5 k-cycle window is dominated by instruction-stream
        // sampling noise (~1 % IPC), which can swamp the cold-start
        // penalty; average the transient over several switch cycles so
        // the test measures the effect, not one draw.
        let mut s = sim(StreamProfile::generic_int(), 9);
        s.run_cycles(100_000); // warm
        let rounds = 8;
        let mut warm = 0.0;
        let mut cold = 0.0;
        for _ in 0..rounds {
            warm += s.run_cycles(20_000).ipc();
            s.context_switch();
            cold += s.run_cycles(5_000).ipc();
            s.run_cycles(80_000); // re-warm before the next measurement
        }
        warm /= rounds as f64;
        cold /= rounds as f64;
        assert!(cold < warm, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn activity_is_consistent_with_instruction_counts() {
        let mut s = sim(StreamProfile::generic_fp(), 10);
        let c = s.run_cycles(100_000);
        assert_eq!(c.issue_int + c.issue_fp, c.instructions);
        assert_eq!(c.fetches, c.instructions);
        assert_eq!(c.rename_ops, c.instructions);
        assert!(c.mispredicts <= c.bpred_lookups);
        assert!(c.mem_accesses <= c.l2_accesses);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cycle_interval_rejected() {
        sim(StreamProfile::generic_int(), 0).run_cycles(0);
    }
}
