//! Per-interval activity counters — the interface between the
//! performance model and the power model, and the source of the
//! counter-based migration policy's thermal proxies.

use serde::{Deserialize, Serialize};

/// Event counts accumulated over one simulation interval.
///
/// Each field corresponds to a floorplan unit's activity; the power model
/// multiplies them by per-access energies. `int_rf_accesses` and
/// `fp_rf_accesses` are also the performance counters consumed by the
/// counter-based migration policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Cycles covered by this interval.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Fetch-stage operations.
    pub fetches: u64,
    /// Branch-predictor lookups.
    pub bpred_lookups: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1 I-cache accesses.
    pub icache_accesses: u64,
    /// L1 D-cache accesses.
    pub dcache_accesses: u64,
    /// Rename/dispatch operations.
    pub rename_ops: u64,
    /// Instructions issued from the mem/int queues.
    pub issue_int: u64,
    /// Instructions issued from the FP queues.
    pub issue_fp: u64,
    /// Integer register-file accesses (reads + writes).
    pub int_rf_accesses: u64,
    /// FP register-file accesses (reads + writes).
    pub fp_rf_accesses: u64,
    /// Fixed-point unit operations.
    pub fxu_ops: u64,
    /// Floating-point unit operations.
    pub fpu_ops: u64,
    /// Load/store unit operations.
    pub lsu_ops: u64,
    /// Branch unit operations.
    pub bxu_ops: u64,
    /// L2 accesses (L1 misses).
    pub l2_accesses: u64,
    /// Main-memory accesses (L2 misses).
    pub mem_accesses: u64,
}

impl ActivityCounters {
    /// Instructions per cycle over the interval (0 for empty intervals).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Integer register-file accesses per cycle — the counter-based
    /// migration policy's proxy for integer-RF thermal intensity.
    pub fn int_rf_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.int_rf_accesses as f64 / self.cycles as f64
        }
    }

    /// FP register-file accesses per cycle.
    pub fn fp_rf_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fp_rf_accesses as f64 / self.cycles as f64
        }
    }

    /// Element-wise sum of two intervals.
    pub fn merged(&self, other: &ActivityCounters) -> ActivityCounters {
        ActivityCounters {
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            fetches: self.fetches + other.fetches,
            bpred_lookups: self.bpred_lookups + other.bpred_lookups,
            mispredicts: self.mispredicts + other.mispredicts,
            icache_accesses: self.icache_accesses + other.icache_accesses,
            dcache_accesses: self.dcache_accesses + other.dcache_accesses,
            rename_ops: self.rename_ops + other.rename_ops,
            issue_int: self.issue_int + other.issue_int,
            issue_fp: self.issue_fp + other.issue_fp,
            int_rf_accesses: self.int_rf_accesses + other.int_rf_accesses,
            fp_rf_accesses: self.fp_rf_accesses + other.fp_rf_accesses,
            fxu_ops: self.fxu_ops + other.fxu_ops,
            fpu_ops: self.fpu_ops + other.fpu_ops,
            lsu_ops: self.lsu_ops + other.lsu_ops,
            bxu_ops: self.bxu_ops + other.bxu_ops,
            l2_accesses: self.l2_accesses + other.l2_accesses,
            mem_accesses: self.mem_accesses + other.mem_accesses,
        }
    }

    /// Scales event counts (not `cycles`) by an integer factor —
    /// used when a short simulated burst stands in for a longer interval
    /// (statistical sampling), so rates per cycle stay constant after the
    /// cycle count is scaled by the caller.
    pub fn scaled(&self, factor: u64) -> ActivityCounters {
        ActivityCounters {
            cycles: self.cycles * factor,
            instructions: self.instructions * factor,
            fetches: self.fetches * factor,
            bpred_lookups: self.bpred_lookups * factor,
            mispredicts: self.mispredicts * factor,
            icache_accesses: self.icache_accesses * factor,
            dcache_accesses: self.dcache_accesses * factor,
            rename_ops: self.rename_ops * factor,
            issue_int: self.issue_int * factor,
            issue_fp: self.issue_fp * factor,
            int_rf_accesses: self.int_rf_accesses * factor,
            fp_rf_accesses: self.fp_rf_accesses * factor,
            fxu_ops: self.fxu_ops * factor,
            fpu_ops: self.fpu_ops * factor,
            lsu_ops: self.lsu_ops * factor,
            bxu_ops: self.bxu_ops * factor,
            l2_accesses: self.l2_accesses * factor,
            mem_accesses: self.mem_accesses * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(ActivityCounters::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_computes_ratio() {
        let c = ActivityCounters {
            cycles: 100,
            instructions: 250,
            ..Default::default()
        };
        assert_eq!(c.ipc(), 2.5);
    }

    #[test]
    fn merged_adds_fields() {
        let a = ActivityCounters {
            cycles: 10,
            fxu_ops: 5,
            int_rf_accesses: 20,
            ..Default::default()
        };
        let b = ActivityCounters {
            cycles: 15,
            fxu_ops: 3,
            fp_rf_accesses: 7,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.cycles, 25);
        assert_eq!(m.fxu_ops, 8);
        assert_eq!(m.int_rf_accesses, 20);
        assert_eq!(m.fp_rf_accesses, 7);
    }

    #[test]
    fn scaled_preserves_rates() {
        let a = ActivityCounters {
            cycles: 10,
            instructions: 20,
            int_rf_accesses: 30,
            ..Default::default()
        };
        let s = a.scaled(5);
        assert_eq!(s.cycles, 50);
        assert_eq!(s.ipc(), a.ipc());
        assert_eq!(s.int_rf_per_cycle(), a.int_rf_per_cycle());
    }

    #[test]
    fn rf_rates_handle_zero() {
        let c = ActivityCounters::default();
        assert_eq!(c.int_rf_per_cycle(), 0.0);
        assert_eq!(c.fp_rf_per_cycle(), 0.0);
    }
}
