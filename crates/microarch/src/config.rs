//! Core and memory-hierarchy configuration (Table 3 of the paper).

use serde::{Deserialize, Serialize};

/// Design parameters of the modeled out-of-order core and its memory
/// hierarchy.
///
/// Defaults reproduce Table 3: a 3.6 GHz PowerPC-class core with 2 FXU,
/// 2 FPU, 2 LSU, 1 BXU, 2×20-entry mem/int issue queues, 2×5-entry FP
/// queues, 120 GPR / 108 FPR / 90 SPR, a 16K-entry combining branch
/// predictor, 32 KB/64 KB L1 caches, a shared 4 MB L2, and 100-cycle
/// memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Nominal clock rate (Hz).
    pub clock_hz: f64,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: usize,
    /// Fixed-point execution units.
    pub n_fxu: usize,
    /// Floating-point execution units.
    pub n_fpu: usize,
    /// Load/store units.
    pub n_lsu: usize,
    /// Branch execution units.
    pub n_bxu: usize,
    /// Combined mem/int issue-queue capacity (2×20 in Table 3).
    pub int_queue: usize,
    /// FP issue-queue capacity (2×5).
    pub fp_queue: usize,
    /// In-flight window (bounded by rename registers: 120 GPR, 108 FPR).
    pub window: usize,
    /// Pipeline refill penalty after a branch mispredict (cycles).
    pub mispredict_penalty: u64,
    /// Entries in each branch-predictor table (bimodal/gshare/selector).
    pub bpred_entries: usize,
    /// L1 I-cache geometry.
    pub l1i: CacheGeometry,
    /// L1 D-cache geometry.
    pub l1d: CacheGeometry,
    /// Shared L2 geometry.
    pub l2: CacheGeometry,
    /// Fraction of the L2 available to a single-threaded trace run (the
    /// paper capacity-limits single-thread simulations to one quarter).
    pub l2_capacity_fraction: f64,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// Main-memory latency (cycles).
    pub mem_latency: u64,
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes.
    pub block_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        assert!(
            self.size_bytes.is_multiple_of(self.ways * self.block_bytes),
            "cache size must be a multiple of ways × block size"
        );
        self.size_bytes / (self.ways * self.block_bytes)
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            clock_hz: 3.6e9,
            fetch_width: 8,
            dispatch_width: 5,
            n_fxu: 2,
            n_fpu: 2,
            n_lsu: 2,
            n_bxu: 1,
            int_queue: 40,
            fp_queue: 10,
            window: 120,
            mispredict_penalty: 12,
            bpred_entries: 16 * 1024,
            l1i: CacheGeometry {
                size_bytes: 64 * 1024,
                ways: 2,
                block_bytes: 128,
            },
            l1d: CacheGeometry {
                size_bytes: 32 * 1024,
                ways: 2,
                block_bytes: 128,
            },
            l2: CacheGeometry {
                size_bytes: 4 * 1024 * 1024,
                ways: 4,
                block_bytes: 128,
            },
            l2_capacity_fraction: 0.25,
            l1_latency: 1,
            l2_latency: 9,
            mem_latency: 100,
        }
    }
}

impl CoreConfig {
    /// Cycles per power-trace sample (100 000 in the study).
    pub const CYCLES_PER_SAMPLE: u64 = 100_000;

    /// Duration of one power-trace sample at nominal frequency (s).
    pub fn sample_period(&self) -> f64 {
        Self::CYCLES_PER_SAMPLE as f64 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = CoreConfig::default();
        assert_eq!(c.n_fxu, 2);
        assert_eq!(c.n_fpu, 2);
        assert_eq!(c.n_lsu, 2);
        assert_eq!(c.n_bxu, 1);
        assert_eq!(c.int_queue, 40);
        assert_eq!(c.fp_queue, 10);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.mem_latency, 100);
        assert_eq!(c.l2_latency, 9);
    }

    #[test]
    fn sample_period_is_about_28_microseconds() {
        let c = CoreConfig::default();
        let t = c.sample_period();
        assert!((t - 27.78e-6).abs() < 0.01e-6, "t = {t}");
    }

    #[test]
    fn cache_sets_compute() {
        let c = CoreConfig::default();
        assert_eq!(c.l1d.sets(), 128);
        assert_eq!(c.l1i.sets(), 256);
        assert_eq!(c.l2.sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_cache_geometry_panics() {
        CacheGeometry {
            size_bytes: 1000,
            ways: 3,
            block_bytes: 128,
        }
        .sets();
    }
}
