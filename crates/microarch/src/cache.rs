//! Set-associative LRU caches.

use crate::config::CacheGeometry;
use serde::{Deserialize, Serialize};

/// A set-associative cache with true-LRU replacement.
///
/// Tags are stored per way; LRU state is an age stamp per line. A
/// capacity fraction below 1.0 restricts the visible sets, modeling the
/// paper's quarter-capacity L2 quota for single-threaded trace runs.
///
/// # Examples
///
/// ```
/// use dtm_microarch::{CacheGeometry, SetAssocCache};
///
/// let geo = CacheGeometry { size_bytes: 1024, ways: 2, block_bytes: 64 };
/// let mut c = SetAssocCache::new(geo, 1.0);
/// assert!(!c.access(0x100)); // cold miss
/// assert!(c.access(0x100));  // hit
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    ways: usize,
    block_shift: u32,
    tags: Vec<u64>,
    ages: Vec<u64>,
    valid: Vec<bool>,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache; `capacity_fraction` in `(0, 1]` limits the number
    /// of usable sets (rounded to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent or the fraction is outside
    /// `(0, 1]`.
    pub fn new(geometry: CacheGeometry, capacity_fraction: f64) -> Self {
        assert!(
            capacity_fraction > 0.0 && capacity_fraction <= 1.0,
            "capacity fraction must be in (0, 1]"
        );
        let full_sets = geometry.sets();
        assert!(
            full_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let mut sets = ((full_sets as f64 * capacity_fraction) as usize).max(1);
        // Round down to a power of two so simple masking works.
        sets = 1 << (usize::BITS - 1 - sets.leading_zeros());
        let ways = geometry.ways;
        SetAssocCache {
            geometry,
            sets,
            ways,
            block_shift: geometry.block_bytes.trailing_zeros(),
            tags: vec![0; sets * ways],
            ages: vec![0; sets * ways],
            valid: vec![false; sets * ways],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The configured geometry (pre-quota).
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of usable sets after the capacity quota.
    pub fn usable_sets(&self) -> usize {
        self.sets
    }

    /// Accesses `addr`; returns `true` on a hit. Misses allocate (the
    /// model is write-allocate for stores too).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let block = addr >> self.block_shift;
        let set = (block as usize) & (self.sets - 1);
        let tag = block >> self.sets.trailing_zeros();
        let base = set * self.ways;

        for w in 0..self.ways {
            if self.valid[base + w] && self.tags[base + w] == tag {
                self.ages[base + w] = self.tick;
                return true;
            }
        }
        self.misses += 1;
        // Choose an invalid way, else LRU.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            if !self.valid[base + w] {
                victim = w;
                break;
            }
            if self.ages[base + w] < oldest {
                oldest = self.ages[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.ages[base + victim] = self.tick;
        self.valid[base + victim] = true;
        false
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 before any access).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidates all contents (e.g., after a context switch, to model
    /// the cold-cache component of the migration penalty).
    pub fn flush(&mut self) {
        self.valid.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 1024,
            ways: 2,
            block_bytes: 64,
        }
    }

    #[test]
    fn hit_after_miss() {
        let mut c = SetAssocCache::new(small(), 1.0);
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7f)); // same block
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way: fill a set with A, B; touch A; insert C → B evicted.
        let mut c = SetAssocCache::new(small(), 1.0);
        let sets = c.usable_sets() as u64;
        let stride = 64 * sets; // same set, different tags
        let (a, b, d) = (0, stride, 2 * stride);
        c.access(a);
        c.access(b);
        c.access(a); // refresh A
        c.access(d); // evicts B
        assert!(c.access(a), "A must survive");
        assert!(!c.access(b), "B must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = SetAssocCache::new(small(), 1.0);
        let blocks: Vec<u64> = (0..16).map(|i| i * 64).collect(); // 1 KB
        for &b in &blocks {
            c.access(b);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &b in &blocks {
                assert!(c.access(b));
            }
        }
        assert_eq!(c.miss_ratio(), 0.0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = SetAssocCache::new(small(), 1.0);
        // 4 KB streaming over a 1 KB cache.
        for round in 0..10 {
            for i in 0..64u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    // Streaming with LRU: everything misses forever.
                    assert!(!hit);
                }
            }
        }
    }

    #[test]
    fn capacity_fraction_quarters_sets() {
        let geo = CacheGeometry {
            size_bytes: 4096,
            ways: 2,
            block_bytes: 64,
        };
        let full = SetAssocCache::new(geo, 1.0);
        let quarter = SetAssocCache::new(geo, 0.25);
        assert_eq!(quarter.usable_sets() * 4, full.usable_sets());
    }

    #[test]
    fn quota_raises_miss_rate() {
        let geo = CacheGeometry {
            size_bytes: 4096,
            ways: 2,
            block_bytes: 64,
        };
        let mut full = SetAssocCache::new(geo, 1.0);
        let mut quarter = SetAssocCache::new(geo, 0.25);
        // Working set = 2 KB: fits in 4 KB, not in 1 KB.
        for _ in 0..20 {
            for i in 0..32u64 {
                full.access(i * 64);
                quarter.access(i * 64);
            }
        }
        assert!(quarter.miss_ratio() > full.miss_ratio());
    }

    #[test]
    fn flush_invalidates() {
        let mut c = SetAssocCache::new(small(), 1.0);
        c.access(0x40);
        c.flush();
        assert!(!c.access(0x40));
    }

    #[test]
    #[should_panic(expected = "capacity fraction")]
    fn zero_fraction_rejected() {
        SetAssocCache::new(small(), 0.0);
    }
}
