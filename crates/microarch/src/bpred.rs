//! Combining branch predictor: 16K-entry bimodal + 16K-entry gshare with
//! a 16K-entry selector (Table 3).

use serde::{Deserialize, Serialize};

/// Two-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Counter2(u8);

impl Counter2 {
    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// The combining predictor: a selector table chooses between a bimodal
/// table (PC-indexed) and a gshare table (PC ⊕ global history).
///
/// # Examples
///
/// ```
/// use dtm_microarch::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(16 * 1024);
/// // A perfectly biased branch becomes predictable after warm-up.
/// for _ in 0..16 {
///     bp.predict_and_update(0x400_0000, true);
/// }
/// assert!(bp.predict_and_update(0x400_0000, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    selector: Vec<Counter2>,
    history: u64,
    mask: u64,
    lookups: u64,
    correct: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` slots per table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        BranchPredictor {
            bimodal: vec![Counter2(1); entries],
            gshare: vec![Counter2(1); entries],
            selector: vec![Counter2(2); entries],
            history: 0,
            mask: entries as u64 - 1,
            lookups: 0,
            correct: 0,
        }
    }

    /// Predicts the branch at `pc`, updates all tables with the actual
    /// `taken` outcome, and returns whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bi_idx = ((pc >> 2) & self.mask) as usize;
        let gs_idx = (((pc >> 2) ^ self.history) & self.mask) as usize;

        let bi_pred = self.bimodal[bi_idx].predict();
        let gs_pred = self.gshare[gs_idx].predict();
        let use_gshare = self.selector[bi_idx].predict();
        let pred = if use_gshare { gs_pred } else { bi_pred };

        // Selector trains toward whichever component was right.
        if bi_pred != gs_pred {
            self.selector[bi_idx].update(gs_pred == taken);
        }
        self.bimodal[bi_idx].update(taken);
        self.gshare[gs_idx].update(taken);
        self.history = ((self.history << 1) | taken as u64) & self.mask;

        self.lookups += 1;
        let correct = pred == taken;
        if correct {
            self.correct += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Fraction of correct predictions so far (1.0 before any lookup).
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }

    /// Clears the accuracy counters (tables keep their training).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.correct = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_learns() {
        let mut bp = BranchPredictor::new(1024);
        for _ in 0..50 {
            bp.predict_and_update(0x1000, true);
        }
        bp.reset_stats();
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
        }
        assert!(bp.accuracy() > 0.99);
    }

    #[test]
    fn alternating_pattern_learned_by_gshare() {
        let mut bp = BranchPredictor::new(4096);
        let mut t = false;
        for _ in 0..2000 {
            bp.predict_and_update(0x2000, t);
            t = !t;
        }
        bp.reset_stats();
        for _ in 0..1000 {
            bp.predict_and_update(0x2000, t);
            t = !t;
        }
        assert!(bp.accuracy() > 0.95, "accuracy = {}", bp.accuracy());
    }

    #[test]
    fn random_branches_are_near_chance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut bp = BranchPredictor::new(4096);
        for _ in 0..20_000 {
            let pc = 0x3000 + (rng.random_range(0..64u64) << 2);
            bp.predict_and_update(pc, rng.random());
        }
        let acc = bp.accuracy();
        assert!(acc > 0.4 && acc < 0.6, "accuracy = {acc}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_in_bimodal() {
        let mut bp = BranchPredictor::new(4096);
        for _ in 0..200 {
            bp.predict_and_update(0x1000, true);
            bp.predict_and_update(0x2000, false);
        }
        bp.reset_stats();
        for _ in 0..100 {
            bp.predict_and_update(0x1000, true);
            bp.predict_and_update(0x2000, false);
        }
        assert!(bp.accuracy() > 0.9);
    }

    #[test]
    fn accuracy_is_one_before_lookups() {
        let bp = BranchPredictor::new(64);
        assert_eq!(bp.accuracy(), 1.0);
        assert_eq!(bp.lookups(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        BranchPredictor::new(1000);
    }
}
