//! Synthetic instruction streams.
//!
//! SPEC 2000 binaries and SimPoint traces are not redistributable, so the
//! performance model is driven by statistically-shaped synthetic streams:
//! each [`StreamProfile`] fixes an instruction mix, dependence-distance
//! distribution (ILP), branch behaviour, and memory working-set
//! parameters. The profiles in `dtm-workloads` are calibrated so the
//! resulting IPC and per-unit activity match the published character of
//! each benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Operation class of a synthetic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply/divide.
    IntMul,
    /// Pipelined FP add/multiply.
    FpOp,
    /// Long-latency FP divide/sqrt.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl InstrKind {
    /// Execution latency in cycles (L1-hit latency for loads; cache
    /// misses add on top in the pipeline model).
    pub fn latency(self) -> u64 {
        match self {
            InstrKind::IntAlu => 1,
            InstrKind::IntMul => 7,
            InstrKind::FpOp => 4,
            InstrKind::FpDiv => 20,
            InstrKind::Load => 1,
            InstrKind::Store => 1,
            InstrKind::Branch => 1,
        }
    }

    /// Whether the instruction executes in the floating-point cluster.
    pub fn is_fp(self) -> bool {
        matches!(self, InstrKind::FpOp | InstrKind::FpDiv)
    }
}

/// One synthetic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// Operation class.
    pub kind: InstrKind,
    /// Distance (in instructions) back to the producer of this
    /// instruction's input; 0 means no register dependence.
    pub dep_distance: u32,
    /// Memory address for loads/stores (block-aligned by the caches).
    pub addr: u64,
    /// Program counter (for branch-predictor indexing).
    pub pc: u64,
    /// Branch outcome (meaningful only for branches).
    pub taken: bool,
    /// Whether this branch follows the stream's learnable pattern (true)
    /// or is inherently random (false).
    pub pattern_branch: bool,
}

/// Statistical description of a benchmark's instruction stream.
///
/// Mix fractions must sum to at most 1; the remainder is `IntAlu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Fraction of integer multiplies.
    pub frac_int_mul: f64,
    /// Fraction of pipelined FP operations.
    pub frac_fp: f64,
    /// Fraction of FP divides.
    pub frac_fp_div: f64,
    /// Fraction of loads.
    pub frac_load: f64,
    /// Fraction of stores.
    pub frac_store: f64,
    /// Fraction of branches.
    pub frac_branch: f64,
    /// Mean register-dependence distance (higher ⇒ more ILP).
    pub mean_dep_distance: f64,
    /// Fraction of branches that follow a learnable repeating pattern.
    pub branch_predictability: f64,
    /// Taken bias of pattern branches.
    pub branch_taken_bias: f64,
    /// Data working-set size in bytes.
    pub data_working_set: u64,
    /// Fraction of memory references that re-touch a recent block
    /// (temporal locality, mostly L1 hits).
    pub data_locality: f64,
    /// Instruction working-set (code footprint) in bytes.
    pub code_working_set: u64,
}

impl StreamProfile {
    /// A generic compute-bound integer profile.
    pub fn generic_int() -> Self {
        StreamProfile {
            frac_int_mul: 0.01,
            frac_fp: 0.0,
            frac_fp_div: 0.0,
            frac_load: 0.25,
            frac_store: 0.10,
            frac_branch: 0.15,
            mean_dep_distance: 6.0,
            branch_predictability: 0.95,
            branch_taken_bias: 0.6,
            data_working_set: 256 * 1024,
            data_locality: 0.9,
            code_working_set: 32 * 1024,
        }
    }

    /// A generic floating-point profile.
    pub fn generic_fp() -> Self {
        StreamProfile {
            frac_int_mul: 0.01,
            frac_fp: 0.45,
            frac_fp_div: 0.01,
            frac_load: 0.22,
            frac_store: 0.08,
            frac_branch: 0.05,
            mean_dep_distance: 10.0,
            branch_predictability: 0.99,
            branch_taken_bias: 0.8,
            data_working_set: 2 * 1024 * 1024,
            data_locality: 0.85,
            code_working_set: 16 * 1024,
        }
    }

    /// Validates that fractions are sane probabilities.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first bad field.
    pub fn validate(&self) {
        let fracs = [
            ("frac_int_mul", self.frac_int_mul),
            ("frac_fp", self.frac_fp),
            ("frac_fp_div", self.frac_fp_div),
            ("frac_load", self.frac_load),
            ("frac_store", self.frac_store),
            ("frac_branch", self.frac_branch),
            ("branch_predictability", self.branch_predictability),
            ("branch_taken_bias", self.branch_taken_bias),
            ("data_locality", self.data_locality),
        ];
        for (name, v) in fracs {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} out of [0,1]");
        }
        let sum = self.frac_int_mul
            + self.frac_fp
            + self.frac_fp_div
            + self.frac_load
            + self.frac_store
            + self.frac_branch;
        assert!(sum <= 1.0 + 1e-9, "mix fractions sum to {sum} > 1");
        assert!(self.mean_dep_distance >= 1.0, "dep distance < 1");
        assert!(self.data_working_set >= 1024, "working set too small");
    }
}

/// Deterministic generator of synthetic instructions for one profile.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    profile: StreamProfile,
    rng: StdRng,
    count: u64,
    recent_blocks: [u64; 32],
    recent_pos: usize,
    stride_ptr: u64,
    pattern_state: u64,
}

impl StreamGenerator {
    /// Creates a generator with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`StreamProfile::validate`].
    pub fn new(profile: StreamProfile, seed: u64) -> Self {
        profile.validate();
        StreamGenerator {
            profile,
            rng: StdRng::seed_from_u64(seed),
            count: 0,
            recent_blocks: [0; 32],
            recent_pos: 0,
            stride_ptr: 0,
            pattern_state: 0,
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &StreamProfile {
        &self.profile
    }

    /// Swaps the profile (phase change) while keeping RNG and locality
    /// state, so caches and predictors see a continuous program.
    pub fn set_profile(&mut self, profile: StreamProfile) {
        profile.validate();
        self.profile = profile;
    }

    /// Generates the next instruction.
    pub fn next_instr(&mut self) -> Instr {
        let p = self.profile;
        let r: f64 = self.rng.random();
        let kind = {
            let mut acc = p.frac_int_mul;
            if r < acc {
                InstrKind::IntMul
            } else {
                acc += p.frac_fp;
                if r < acc {
                    InstrKind::FpOp
                } else {
                    acc += p.frac_fp_div;
                    if r < acc {
                        InstrKind::FpDiv
                    } else {
                        acc += p.frac_load;
                        if r < acc {
                            InstrKind::Load
                        } else {
                            acc += p.frac_store;
                            if r < acc {
                                InstrKind::Store
                            } else if r < acc + p.frac_branch {
                                InstrKind::Branch
                            } else {
                                InstrKind::IntAlu
                            }
                        }
                    }
                }
            }
        };

        // Geometric-ish dependence distance with the configured mean.
        let dep_distance = if p.mean_dep_distance >= 1.0 {
            let u: f64 = self.rng.random::<f64>().max(1e-12);
            (1.0 - u.ln() * (p.mean_dep_distance - 1.0)).round() as u32
        } else {
            1
        };

        let addr = match kind {
            InstrKind::Load | InstrKind::Store => self.next_data_addr(),
            _ => 0,
        };

        let (pc, taken, pattern_branch) = if kind == InstrKind::Branch {
            if self.rng.random::<f64>() < p.branch_predictability {
                // Learnable: a small pool of recurring branch PCs, each
                // with a *static* direction chosen so the overall taken
                // fraction matches the configured bias. A table predictor
                // learns these to ~100 % after warm-up, so the profile's
                // `branch_predictability` directly sets the fraction of
                // easy branches.
                self.pattern_state = self.pattern_state.wrapping_add(1);
                let slot = self.pattern_state % 256;
                let pc = 0x8000_0000 + slot * 4;
                let taken = (slot % 100) as f64 / 100.0 < p.branch_taken_bias;
                (pc, taken, true)
            } else {
                // Inherently unpredictable: random PC pool, coin-flip
                // outcome.
                let pc = 0x9000_0000 + self.rng.random_range(0..1024u64) * 4;
                (pc, self.rng.random::<f64>() < 0.5, false)
            }
        } else {
            (self.next_pc(kind), false, false)
        };

        self.count += 1;
        Instr {
            kind,
            dep_distance,
            addr,
            pc,
            taken,
            pattern_branch,
        }
    }

    fn next_data_addr(&mut self) -> u64 {
        let p = self.profile;
        const BLOCK: u64 = 128;
        if self.rng.random::<f64>() < p.data_locality && self.count > 0 {
            // Re-touch a recently used block.
            let idx = self.rng.random_range(0..self.recent_blocks.len());
            self.recent_blocks[idx]
        } else {
            // Streaming walk with occasional random jump inside the
            // working set.
            let addr = if self.rng.random::<f64>() < 0.7 {
                self.stride_ptr = (self.stride_ptr + BLOCK) % p.data_working_set.max(BLOCK);
                self.stride_ptr
            } else {
                self.rng.random_range(0..p.data_working_set.max(BLOCK)) / BLOCK * BLOCK
            };
            self.recent_blocks[self.recent_pos] = addr;
            self.recent_pos = (self.recent_pos + 1) % self.recent_blocks.len();
            addr
        }
    }

    fn next_pc(&mut self, _kind: InstrKind) -> u64 {
        // Sequential PCs inside the code footprint (for I-cache traffic).
        let code = self.profile.code_working_set.max(1024);
        let base = self.count.wrapping_mul(4) % code;
        0x4000_0000 + base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let p = StreamProfile::generic_int();
        let mut a = StreamGenerator::new(p, 42);
        let mut b = StreamGenerator::new(p, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = StreamProfile::generic_int();
        let mut a = StreamGenerator::new(p, 1);
        let mut b = StreamGenerator::new(p, 2);
        let same = (0..100)
            .filter(|_| a.next_instr() == b.next_instr())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn mix_fractions_are_respected() {
        let p = StreamProfile::generic_fp();
        let mut g = StreamGenerator::new(p, 7);
        let n = 100_000;
        let mut fp = 0;
        let mut loads = 0;
        let mut branches = 0;
        for _ in 0..n {
            match g.next_instr().kind {
                InstrKind::FpOp => fp += 1,
                InstrKind::Load => loads += 1,
                InstrKind::Branch => branches += 1,
                _ => {}
            }
        }
        let nf = n as f64;
        assert!((fp as f64 / nf - p.frac_fp).abs() < 0.01);
        assert!((loads as f64 / nf - p.frac_load).abs() < 0.01);
        assert!((branches as f64 / nf - p.frac_branch).abs() < 0.01);
    }

    #[test]
    fn int_profile_has_no_fp_instructions() {
        let mut g = StreamGenerator::new(StreamProfile::generic_int(), 3);
        for _ in 0..10_000 {
            assert!(!g.next_instr().kind.is_fp());
        }
    }

    #[test]
    fn dep_distance_mean_approximates_profile() {
        let mut p = StreamProfile::generic_int();
        p.mean_dep_distance = 8.0;
        let mut g = StreamGenerator::new(p, 11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| g.next_instr().dep_distance as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn memory_addresses_stay_in_working_set() {
        let p = StreamProfile::generic_int();
        let mut g = StreamGenerator::new(p, 5);
        for _ in 0..10_000 {
            let i = g.next_instr();
            if matches!(i.kind, InstrKind::Load | InstrKind::Store) {
                assert!(i.addr < p.data_working_set + 128);
            }
        }
    }

    #[test]
    fn set_profile_switches_mix() {
        let mut g = StreamGenerator::new(StreamProfile::generic_int(), 9);
        g.set_profile(StreamProfile::generic_fp());
        let fp = (0..10_000).filter(|_| g.next_instr().kind.is_fp()).count();
        assert!(fp > 2000);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_fraction_panics() {
        let mut p = StreamProfile::generic_int();
        p.frac_load = 1.5;
        StreamGenerator::new(p, 0);
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn oversubscribed_mix_panics() {
        let mut p = StreamProfile::generic_int();
        p.frac_load = 0.6;
        p.frac_store = 0.6;
        StreamGenerator::new(p, 0);
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        assert!(InstrKind::FpDiv.latency() > InstrKind::FpOp.latency());
        assert!(InstrKind::IntMul.latency() > InstrKind::IntAlu.latency());
        for k in [
            InstrKind::IntAlu,
            InstrKind::IntMul,
            InstrKind::FpOp,
            InstrKind::FpDiv,
            InstrKind::Load,
            InstrKind::Store,
            InstrKind::Branch,
        ] {
            assert!(k.latency() >= 1);
        }
    }
}
