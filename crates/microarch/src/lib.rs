//! Turandot-style out-of-order core performance model, driven by
//! synthetic SPEC-like instruction streams.
//!
//! The original study used IBM's Turandot simulator replaying SimPoint
//! traces of SPEC 2000; neither is redistributable, so this crate
//! provides a from-scratch equivalent with the same role in the
//! toolflow: turn a program's characteristics into per-interval
//! microarchitectural **activity counts** ([`ActivityCounters`]) that a
//! power model converts into power traces.
//!
//! - [`StreamProfile`] / [`StreamGenerator`] — statistically-shaped
//!   synthetic instruction streams (mix, ILP, branch behaviour, working
//!   sets).
//! - [`BranchPredictor`] — 16K-entry bimodal + gshare + selector.
//! - [`SetAssocCache`] — LRU caches for the split L1s and shared L2
//!   (with the paper's quarter-capacity quota for single-threaded runs).
//! - [`CoreSim`] — the timestamp-propagation OOO pipeline model
//!   (Table 3 resources) producing [`ActivityCounters`] per interval.
//!
//! # Examples
//!
//! ```
//! use dtm_microarch::{CoreConfig, CoreSim, StreamProfile};
//!
//! let mut core = CoreSim::new(CoreConfig::default(), StreamProfile::generic_fp(), 7);
//! let sample = core.run_sample(5); // one 100k-cycle sample, 5× sampled
//! assert!(sample.fpu_ops > 0);
//! ```

mod activity;
mod bpred;
mod cache;
mod config;
mod core;
mod instr;

pub use activity::ActivityCounters;
pub use bpred::BranchPredictor;
pub use cache::SetAssocCache;
pub use config::{CacheGeometry, CoreConfig};
pub use core::CoreSim;
pub use instr::{Instr, InstrKind, StreamGenerator, StreamProfile};
