//! Property-based tests for the performance model.

use dtm_microarch::{
    BranchPredictor, CacheGeometry, CoreConfig, CoreSim, SetAssocCache, StreamProfile,
};
use proptest::prelude::*;

prop_compose! {
    fn arb_profile()(base in 0..2usize,
                     fp in 0.0f64..0.5,
                     load in 0.05f64..0.3,
                     branch in 0.02f64..0.2,
                     dep in 2.0f64..14.0,
                     loc in 0.3f64..0.95) -> StreamProfile {
    let mut p = if base == 0 { StreamProfile::generic_int() } else { StreamProfile::generic_fp() };
    p.frac_fp = fp;
    p.frac_load = load;
    p.frac_branch = branch;
    p.mean_dep_distance = dep;
    p.data_locality = loc;
    // Keep the mix a valid distribution.
    let sum = p.frac_int_mul + p.frac_fp + p.frac_fp_div + p.frac_load + p.frac_store + p.frac_branch;
        if sum > 1.0 {
            p.frac_fp /= sum;
            p.frac_load /= sum;
            p.frac_store /= sum;
            p.frac_branch /= sum;
            p.frac_int_mul /= sum;
            p.frac_fp_div /= sum;
        }
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// IPC stays within the machine's physical envelope for arbitrary
    /// valid stream profiles.
    #[test]
    fn ipc_is_bounded(profile in arb_profile(), seed in 0u64..100) {
        let mut sim = CoreSim::new(CoreConfig::default(), profile, seed);
        let c = sim.run_cycles(60_000);
        let ipc = c.ipc();
        prop_assert!(ipc > 0.0);
        prop_assert!(ipc <= CoreConfig::default().fetch_width as f64);
    }

    /// Counter identities hold for any profile: issued = retired, memory
    /// accesses never exceed L2 accesses, mispredicts never exceed
    /// lookups.
    #[test]
    fn counter_identities(profile in arb_profile(), seed in 0u64..100) {
        let mut sim = CoreSim::new(CoreConfig::default(), profile, seed);
        let c = sim.run_cycles(60_000);
        prop_assert_eq!(c.issue_int + c.issue_fp, c.instructions);
        prop_assert!(c.mem_accesses <= c.l2_accesses);
        prop_assert!(c.mispredicts <= c.bpred_lookups);
        prop_assert!(c.int_rf_accesses + c.fp_rf_accesses >= c.instructions);
    }

    /// Cache accesses and misses are consistent for arbitrary address
    /// streams; a repeated address always hits after insertion.
    #[test]
    fn cache_consistency(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let geo = CacheGeometry { size_bytes: 8 * 1024, ways: 2, block_bytes: 64 };
        let mut cache = SetAssocCache::new(geo, 1.0);
        for &a in &addrs {
            cache.access(a);
            // Immediately re-touching the same address must hit (it was
            // just installed or refreshed).
            prop_assert!(cache.access(a));
        }
        prop_assert!(cache.misses() <= cache.accesses());
    }

    /// Branch predictor accuracy is a valid probability and improves for
    /// strongly biased branches.
    #[test]
    fn predictor_accuracy_bounds(bias in 0.8f64..1.0, n in 200usize..2000) {
        let mut bp = BranchPredictor::new(1024);
        let mut x = 0.37f64;
        for _ in 0..n {
            // Deterministic pseudo-random outcomes with the given bias.
            x = (x * 997.13).fract();
            bp.predict_and_update(0x1000, x < bias);
        }
        let acc = bp.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        // With >=80% bias the table predictor must beat coin flipping.
        prop_assert!(acc > 0.55, "accuracy {}", acc);
    }
}
