//! [`RemoteBackend`]: a [`dtm_harness::Backend`] that executes a
//! sweep's missed cells on a fleet of `dtm-serve` workers.
//!
//! The determinism argument, end to end: a cell is only eligible for
//! remote dispatch when its wire request — encoded, decoded, and
//! resolved against the worker's advertised base configuration —
//! lands on the **same content address** the local runner computed
//! for that cell ([`request_for_cell`]). The handshake pins the
//! worker's version, base `SimConfig`, and trace-generation config;
//! the response echoes the key, which is re-checked on receipt; and
//! any duplicate completion (speculation, late stragglers) is
//! byte-compared against the first. A distributed sweep therefore
//! either produces results bit-identical to a single-process run or
//! fails loudly — never silently diverges.

use crate::dispatch::{Completion, DispatchConfig, DispatchState, RemoteNext, Scheduler};
use crate::summary::DispatchSummary;
use crate::worker::{Health, Worker, WorkerPool};
use dtm_core::{DtmConfig, GainScheduleConfig, RunResult, SimConfig, SimError};
use dtm_harness::cache::cell_key;
use dtm_harness::cli::SweepArgs;
use dtm_harness::codec::result_to_json;
use dtm_harness::json::Json;
use dtm_harness::{Backend, BackendCtx, CellOutcome, LocalExec};
use dtm_serve::protocol::{Request, Response, ResultSource, SimResponse};
use dtm_serve::request::FAULT_PRESETS;
use dtm_serve::{Client, ServerInfo, SimRequest};
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Remote outcomes carry worker ids offset by this, so ledger readers
/// can tell coordinator-local workers (small ids) from remote ones.
pub const REMOTE_WORKER_BASE: usize = 1000;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker addresses (`host:port`).
    pub workers: Vec<String>,
    /// Coordinator-local executor threads mixed in alongside the
    /// remote fleet (0 = pure remote, with local execution only as
    /// the completeness fallback).
    pub local_threads: usize,
    /// Per-attempt remote deadline.
    pub deadline: Duration,
    /// Remote retry budget per cell.
    pub retries: u32,
    /// Base retry backoff (doubles per attempt, no jitter).
    pub backoff: Duration,
    /// Straggler age before speculative re-execution; `None` disables.
    pub speculate_after: Option<Duration>,
    /// TCP connect (and handshake read) timeout.
    pub connect_timeout: Duration,
    /// Heartbeat interval for liveness probing of idle-looking workers.
    pub heartbeat: Duration,
    /// Per-worker concurrent-request window override (default: the
    /// worker's advertised thread count, clamped to [1, 8]).
    pub window: Option<usize>,
    /// The base `SimConfig` every worker must be serving against
    /// (requests resolve relative to it on the server side).
    pub expected_base: SimConfig,
}

impl DistConfig {
    /// Defaults for a worker fleet running against `expected_base`.
    pub fn new(workers: Vec<String>, expected_base: SimConfig) -> Self {
        DistConfig {
            workers,
            local_threads: 0,
            deadline: Duration::from_secs(30),
            retries: 2,
            backoff: Duration::from_millis(250),
            speculate_after: Some(Duration::from_secs(10)),
            connect_timeout: Duration::from_secs(2),
            heartbeat: Duration::from_secs(1),
            window: None,
            expected_base,
        }
    }

    /// Builds from the shared sweep-binary flags (`--dist`,
    /// `--dist-local`, `--dist-deadline`, `--dist-retries`).
    pub fn from_args(args: &SweepArgs, expected_base: SimConfig) -> Self {
        let mut cfg = DistConfig::new(args.dist_workers.clone(), expected_base);
        cfg.local_threads = args.dist_local;
        cfg.deadline = Duration::from_secs_f64(args.dist_deadline.max(0.001));
        cfg.retries = args.dist_retries;
        cfg
    }
}

/// Validates a worker host list before any dispatch: empty entries
/// (stray commas, blank lines) and duplicate hosts are rejected with a
/// [`SimError::BadInput`] naming the offender. A duplicated host would
/// otherwise be handshaken and dispatched to twice — double load on one
/// machine that silently *looks* like a bigger fleet.
///
/// # Errors
///
/// Returns `BadInput` describing the first empty or duplicate entry.
pub fn validate_workers(workers: &[String]) -> Result<(), SimError> {
    let mut seen: Vec<&str> = Vec::with_capacity(workers.len());
    for (i, w) in workers.iter().enumerate() {
        let trimmed = w.trim();
        if trimmed.is_empty() {
            return Err(SimError::BadInput(format!(
                "worker list entry {} is empty (stray comma or blank line?)",
                i + 1
            )));
        }
        if seen.contains(&trimmed) {
            return Err(SimError::BadInput(format!(
                "worker `{trimmed}` listed more than once — a duplicate host \
                 would be dispatched to twice"
            )));
        }
        seen.push(trimmed);
    }
    Ok(())
}

/// Maps sweep cell `i` (an index into `ctx.cells`) to the wire request
/// that reproduces it exactly, or `None` when the cell cannot be
/// expressed remotely (a config outside the protocol's vocabulary).
///
/// The proof obligation is discharged mechanically: the candidate
/// request is JSON round-tripped and resolved exactly as the server
/// will resolve it, and accepted only if the resulting cell's content
/// address equals the coordinator's key for cell `i`. Key equality is
/// the determinism guarantee — both sides will run (and cache) the
/// same simulation.
pub fn request_for_cell(
    ctx: &BackendCtx<'_>,
    i: usize,
    expected_base: &SimConfig,
) -> Option<SimRequest> {
    let cell = ctx.cells[i];
    let workload = &ctx.spec.workload_axis()[cell.workload];
    let policy = ctx.spec.policy_axis()[cell.policy];
    let variant = &ctx.spec.variant_axis()[cell.variant];

    // Structural pre-check: the variant's sim must be the server's
    // base with only the wire-expressible overrides applied.
    let mut probe = expected_base.clone();
    probe.duration = variant.sim.duration;
    probe.cores = variant.sim.cores;
    probe.seed = variant.sim.seed;
    if probe != variant.sim {
        return None;
    }
    // Likewise the variant's dtm: the default with only wire-expressible
    // knobs (threshold + the exploration knobs) changed. Knobs outside
    // the protocol's vocabulary (min scale, transition penalties, ...)
    // force local execution.
    let d = &variant.dtm;
    let dtm_probe = DtmConfig {
        threshold: d.threshold,
        pi_kp: d.pi_kp,
        pi_ki: d.pi_ki,
        dvfs_setpoint_margin: d.dvfs_setpoint_margin,
        stopgo_trip_margin: d.stopgo_trip_margin,
        stopgo_stall: d.stopgo_stall,
        migration_interval: d.migration_interval,
        os_tick: d.os_tick,
        gain_schedule: d.gain_schedule,
        ..DtmConfig::default()
    };
    if dtm_probe != *d {
        return None;
    }
    // Adaptive gain schedules ride the wire as the schedule name plus
    // both adaptation parameters spelled out exactly (no
    // default-elision: the f64s must round-trip bit-identically for
    // the key check below to accept).
    let (schedule, adapt_rate, adapt_window_s) = match d.gain_schedule {
        GainScheduleConfig::Fixed => (None, None, None),
        GainScheduleConfig::Rao { alpha, tau_s } => {
            (Some("rao".to_string()), Some(alpha), Some(tau_s))
        }
        GainScheduleConfig::SelfTuning { rate, window_s } => {
            (Some("selftune".to_string()), Some(rate), Some(window_s))
        }
    };
    // Overrides ride the wire only when they differ from the default, so
    // pre-knob configs produce the exact requests (and server-side memo
    // keys) they produced before the knobs existed. Out-of-range values
    // are not filtered here: the server-identical `resolve` below
    // rejects them, which falls through to `None` → local execution.
    let def = DtmConfig::default();
    let over = |cur: f64, default: f64| if cur != default { Some(cur) } else { None };
    let threshold_c = over(d.threshold, def.threshold);

    let benchmarks: Vec<String> = workload.resolve().into_iter().map(|b| b.name).collect();
    let fault_candidates: Vec<Option<String>> = if variant.faults.is_ideal() {
        vec![None]
    } else {
        FAULT_PRESETS
            .iter()
            .skip(1) // "none" is the ideal case above
            .map(|s| Some((*s).to_string()))
            .collect()
    };

    let version = env!("CARGO_PKG_VERSION");
    for fault in fault_candidates {
        let req = SimRequest {
            workload: None,
            benchmarks: benchmarks.clone(),
            policy: policy.wire_name(),
            duration_s: Some(variant.sim.duration),
            cores: Some(variant.sim.cores),
            threshold_c,
            seed: Some(variant.sim.seed),
            fault,
            deadline_ms: None,
            pi_kp: over(d.pi_kp, def.pi_kp),
            pi_ki: over(d.pi_ki, def.pi_ki),
            setpoint_margin_c: over(d.dvfs_setpoint_margin, def.dvfs_setpoint_margin),
            trip_margin_c: over(d.stopgo_trip_margin, def.stopgo_trip_margin),
            stall_s: over(d.stopgo_stall, def.stopgo_stall),
            migration_interval_s: over(d.migration_interval, def.migration_interval),
            os_tick_s: over(d.os_tick, def.os_tick),
            schedule: schedule.clone(),
            adapt_rate,
            adapt_window_s,
        };
        let wire = Json::Obj(req.to_fields());
        let Ok(decoded) = SimRequest::from_json(&wire) else {
            continue;
        };
        let Ok(resolved) = decoded.resolve(expected_base) else {
            continue;
        };
        let key = cell_key(
            &resolved.workload,
            resolved.policy,
            &resolved.variant.sim,
            &resolved.variant.dtm,
            &resolved.variant.faults,
            ctx.lib.config(),
            version,
        );
        if key == ctx.keys[i] {
            return Some(req);
        }
    }
    None
}

/// Canonical result bytes for duplicate reconciliation: the same JSON
/// encoding the wire and the cache use, so "byte-identical" means the
/// same thing everywhere.
fn canonical_bits(result: &RunResult) -> Vec<u8> {
    result_to_json(result).emit().into_bytes()
}

/// Per-thread outcome emitter: reconciles completions through the
/// scheduler and forwards exactly one outcome per cell to the runner.
struct Emit<'a, 'b> {
    ctx: &'a BackendCtx<'b>,
    sched: &'a Scheduler,
    tx: mpsc::Sender<Result<CellOutcome, SimError>>,
}

impl Emit<'_, '_> {
    /// Handles a remote completion of miss `id`. Returns `false` on a
    /// fatal determinism violation (abort already signalled).
    fn remote(
        &self,
        id: usize,
        result: RunResult,
        wall: Duration,
        queued: Duration,
        worker: usize,
    ) -> bool {
        let bits = canonical_bits(&result);
        match self.sched.complete(id, &bits, true) {
            Completion::Fresh => {
                let i = self.ctx.misses[id];
                self.ctx.publish(i, &result);
                let _ = self.tx.send(Ok(CellOutcome {
                    index: self.ctx.cells[i],
                    key: self.ctx.keys[i].hex(),
                    result,
                    cached: false,
                    wall,
                    queued,
                    worker,
                }));
                true
            }
            Completion::DuplicateMatch => self.duplicate(),
            Completion::DuplicateMismatch => self.mismatch(id),
        }
    }

    /// Handles a locally-executed completion of miss `id` (the outcome
    /// is already published and fully formed by [`LocalExec`]).
    fn local(&self, id: usize, outcome: CellOutcome) -> bool {
        let bits = canonical_bits(&outcome.result);
        match self.sched.complete(id, &bits, false) {
            Completion::Fresh => {
                let _ = self.tx.send(Ok(outcome));
                true
            }
            Completion::DuplicateMatch => self.duplicate(),
            Completion::DuplicateMismatch => self.mismatch(id),
        }
    }

    fn duplicate(&self) -> bool {
        if self.ctx.obs.is_enabled() {
            self.ctx.obs.counter("dtm_dist_duplicate_total").inc();
        }
        true
    }

    fn mismatch(&self, id: usize) -> bool {
        let i = self.ctx.misses[id];
        let _ = self.tx.send(Err(SimError::BadInput(format!(
            "distributed determinism violation: cell {i} (key {}) \
             produced two byte-different results",
            self.ctx.keys[i].hex()
        ))));
        self.sched.abort();
        false
    }
}

/// One remote attempt's disposition, as seen by a dispatch lane.
enum Attempt {
    /// A completed simulation came back.
    Done(Box<SimResponse>),
    /// The server is up but couldn't take or finish the work in time
    /// (admission rejection or server-side deadline) — retry elsewhere
    /// or later; not a health strike against the worker.
    Busy,
    /// The server deterministically rejected the request.
    Rejected(String),
    /// The client-side deadline expired.
    IoTimeout,
    /// Connection-level failure (includes protocol desync).
    IoError,
}

/// Issues one simulate call on a lane's (lazily dialled) connection.
/// Any timeout or error poisons the connection — under the protocol's
/// strict request→response alternation a late reply would desync every
/// later exchange, so the lane redials instead of reusing it.
fn attempt(client: &mut Option<Client>, addr: &str, cfg: &DistConfig, req: SimRequest) -> Attempt {
    if client.is_none() {
        match Client::connect_timeout(addr, cfg.connect_timeout) {
            Ok(c) => *client = Some(c),
            Err(e) => {
                return if e.kind() == io::ErrorKind::TimedOut {
                    Attempt::IoTimeout
                } else {
                    Attempt::IoError
                }
            }
        }
    }
    let c = client.as_mut().expect("dialled above");
    match c.call_deadline(&Request::Simulate(Box::new(req)), cfg.deadline) {
        Ok(Response::Result(r)) => Attempt::Done(r),
        Ok(Response::Overloaded { .. } | Response::Timeout { .. }) => Attempt::Busy,
        Ok(Response::Error { message }) => Attempt::Rejected(message),
        Ok(_) => {
            *client = None;
            Attempt::IoError
        }
        Err(e) => {
            *client = None;
            if e.kind() == io::ErrorKind::TimedOut {
                Attempt::IoTimeout
            } else {
                Attempt::IoError
            }
        }
    }
}

/// Why a handshake didn't produce a usable worker.
enum HandshakeError {
    /// The worker answered but its configuration would break the
    /// sweep's determinism guarantee — fatal, the whole run refuses.
    Mismatch(String),
    /// The worker didn't answer — tolerated, it starts dead.
    Unreachable(io::Error),
}

/// Verifies one worker's version and configuration against the
/// coordinator's expectations.
fn handshake(
    addr: &str,
    cfg: &DistConfig,
    tracegen_dbg: &str,
) -> Result<ServerInfo, HandshakeError> {
    let mut client = Client::connect_timeout(addr, cfg.connect_timeout)
        .and_then(|c| c.with_read_timeout(cfg.connect_timeout))
        .map_err(HandshakeError::Unreachable)?;
    let info = client.ping_info().map_err(HandshakeError::Unreachable)?;
    let Some(info) = info else {
        return Err(HandshakeError::Mismatch(
            "server predates the version handshake (bare pong)".into(),
        ));
    };
    let version = env!("CARGO_PKG_VERSION");
    if info.version != version {
        return Err(HandshakeError::Mismatch(format!(
            "version mismatch: worker {} vs coordinator {version}",
            info.version
        )));
    }
    let base = format!("{:?}", cfg.expected_base);
    if info.base_sim != base {
        return Err(HandshakeError::Mismatch(format!(
            "base_sim mismatch: worker serves `{}`, coordinator expects `{base}`",
            info.base_sim
        )));
    }
    if info.tracegen != tracegen_dbg {
        return Err(HandshakeError::Mismatch(format!(
            "tracegen mismatch: worker uses `{}`, coordinator expects `{tracegen_dbg}`",
            info.tracegen
        )));
    }
    Ok(info)
}

/// The distributed sweep backend. Plug into a
/// [`dtm_harness::SweepRunner`] via
/// [`with_backend`](dtm_harness::SweepRunner::with_backend); after the
/// sweep, [`take_summary`](RemoteBackend::take_summary) returns the
/// dispatch report.
#[derive(Debug)]
pub struct RemoteBackend {
    cfg: DistConfig,
    summary: Mutex<Option<DispatchSummary>>,
}

impl RemoteBackend {
    /// A backend over the given fleet configuration.
    pub fn new(cfg: DistConfig) -> Self {
        RemoteBackend {
            cfg,
            summary: Mutex::new(None),
        }
    }

    /// The dispatch summary of the most recent sweep, if one ran.
    pub fn take_summary(&self) -> Option<DispatchSummary> {
        self.summary.lock().unwrap().take()
    }
}

impl Backend for RemoteBackend {
    fn run_cells(&self, ctx: &BackendCtx<'_>, tx: &mpsc::Sender<Result<CellOutcome, SimError>>) {
        let cfg = &self.cfg;
        if let Err(e) = validate_workers(&cfg.workers) {
            let _ = tx.send(Err(e));
            return;
        }
        let obs = ctx.obs;
        let tracegen_dbg = format!("{:?}", ctx.lib.config());

        // Handshake the fleet. A mismatched worker is fatal (it would
        // silently break bit-identity); an unreachable one starts dead.
        let mut fleet = Vec::new();
        for (idx, addr) in cfg.workers.iter().enumerate() {
            match handshake(addr, cfg, &tracegen_dbg) {
                Ok(info) => {
                    let window = cfg.window.unwrap_or_else(|| info.workers.clamp(1, 8));
                    fleet.push(Worker::alive(addr.clone(), idx, window, info));
                }
                Err(HandshakeError::Mismatch(msg)) => {
                    let _ = tx.send(Err(SimError::BadInput(format!(
                        "refusing worker {addr}: {msg}"
                    ))));
                    return;
                }
                Err(HandshakeError::Unreachable(e)) => {
                    eprintln!("dtm-dist: worker {addr} unreachable at handshake ({e}); continuing without it");
                    fleet.push(Worker::dead(addr.clone(), idx));
                }
            }
        }
        let pool = WorkerPool::new(fleet);

        // Partition cells by remote expressibility.
        let requests: Vec<Option<SimRequest>> = ctx
            .misses
            .iter()
            .map(|&i| request_for_cell(ctx, i, &cfg.expected_base))
            .collect();
        let remote_ok: Vec<bool> = requests.iter().map(|r| r.is_some()).collect();
        let sched = Scheduler::new(DispatchState::new(
            &remote_ok,
            DispatchConfig {
                retries: cfg.retries,
                backoff: cfg.backoff,
                speculate_after: cfg.speculate_after,
            },
        ));
        if pool.alive_count() == 0 {
            sched.pool_died();
        }

        let local_cells = AtomicU64::new(0);
        let fallback_cells = AtomicU64::new(0);
        let lanes_total: usize = pool
            .workers
            .iter()
            .filter(|w| !w.is_dead())
            .map(|w| w.window)
            .sum();
        let active_lanes = AtomicUsize::new(lanes_total);
        let exec_cell: OnceLock<LocalExec> = OnceLock::new();
        let deadline_ms = cfg.deadline.as_millis() as u64;
        let on_worker_down = |w: &Worker| {
            if w.is_dead() && pool.alive_count() == 0 {
                sched.pool_died();
            }
        };

        std::thread::scope(|s| {
            // Dispatch lanes: `window` concurrent request streams per
            // living worker.
            for w in pool.workers.iter().filter(|w| !w.is_dead()) {
                for _ in 0..w.window {
                    let emit = Emit {
                        ctx,
                        sched: &sched,
                        tx: tx.clone(),
                    };
                    let requests = &requests;
                    let active_lanes = &active_lanes;
                    let sched = &sched;
                    let on_worker_down = &on_worker_down;
                    s.spawn(move || {
                        let mut client: Option<Client> = None;
                        loop {
                            if w.is_dead() {
                                break;
                            }
                            let Some(RemoteNext::Dispatch { id, speculative }) =
                                sched.acquire_remote()
                            else {
                                break;
                            };
                            if w.is_dead() {
                                sched.fail_remote(id);
                                break;
                            }
                            w.stats.dispatched.fetch_add(1, Ordering::Relaxed);
                            let inflight = obs.is_enabled().then(|| {
                                obs.counter("dtm_dist_dispatch_total").inc();
                                obs.counter(&format!("dtm_dist_w{}_dispatch_total", w.idx))
                                    .inc();
                                if speculative {
                                    obs.counter("dtm_dist_speculated_total").inc();
                                }
                                let g = obs.gauge(&format!("dtm_dist_w{}_inflight", w.idx));
                                g.inc();
                                g
                            });
                            let mut req = requests[id].clone().expect("remote-eligible cell");
                            req.deadline_ms = Some(deadline_ms);
                            let queued = ctx.sweep_start.elapsed();
                            let t0 = Instant::now();
                            let outcome = attempt(&mut client, &w.addr, cfg, req);
                            if let Some(g) = inflight {
                                g.dec();
                            }
                            match outcome {
                                Attempt::Done(resp) => {
                                    let i = ctx.misses[id];
                                    if resp.key != ctx.keys[i].hex() {
                                        // The worker resolved a different
                                        // cell: its config drifted since
                                        // the handshake. Drop it.
                                        eprintln!(
                                            "dtm-dist: worker {} returned key {} for cell {i} \
                                             (expected {}); dropping worker",
                                            w.addr,
                                            resp.key,
                                            ctx.keys[i].hex()
                                        );
                                        w.mark_dead();
                                        on_worker_down(w);
                                        sched.fail_remote(id);
                                        break;
                                    }
                                    w.note_success();
                                    let rtt = t0.elapsed();
                                    let rtt_us = rtt.as_micros() as u64;
                                    w.stats.completed.fetch_add(1, Ordering::Relaxed);
                                    w.stats.rtt_us_sum.fetch_add(rtt_us, Ordering::Relaxed);
                                    let src = match resp.source {
                                        ResultSource::Simulated => &w.stats.src_sim,
                                        ResultSource::Memo => &w.stats.src_memo,
                                        ResultSource::Disk => &w.stats.src_disk,
                                    };
                                    src.fetch_add(1, Ordering::Relaxed);
                                    if obs.is_enabled() {
                                        obs.counter("dtm_dist_complete_total").inc();
                                        obs.counter(&format!("dtm_dist_w{}_complete_total", w.idx))
                                            .inc();
                                        obs.histogram("dtm_dist_rtt_us").record(rtt_us);
                                        let src_name = match resp.source {
                                            ResultSource::Simulated => "sim",
                                            ResultSource::Memo => "memo",
                                            ResultSource::Disk => "disk",
                                        };
                                        obs.counter(&format!("dtm_dist_src_{src_name}_total"))
                                            .inc();
                                    }
                                    if !emit.remote(
                                        id,
                                        resp.result,
                                        rtt,
                                        queued,
                                        REMOTE_WORKER_BASE + w.idx,
                                    ) {
                                        break;
                                    }
                                }
                                Attempt::Busy => {
                                    w.stats.retried.fetch_add(1, Ordering::Relaxed);
                                    if obs.is_enabled() {
                                        obs.counter("dtm_dist_retry_total").inc();
                                        obs.counter(&format!("dtm_dist_w{}_retry_total", w.idx))
                                            .inc();
                                    }
                                    sched.fail_remote(id);
                                }
                                Attempt::Rejected(msg) => {
                                    eprintln!(
                                        "dtm-dist: worker {} rejected cell {}: {msg}; \
                                         running it locally",
                                        w.addr, ctx.misses[id]
                                    );
                                    sched.park_local(id);
                                }
                                timeout_or_error => {
                                    let timed_out = matches!(timeout_or_error, Attempt::IoTimeout);
                                    if timed_out {
                                        w.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                                    }
                                    w.stats.retried.fetch_add(1, Ordering::Relaxed);
                                    if obs.is_enabled() {
                                        if timed_out {
                                            obs.counter("dtm_dist_timeout_total").inc();
                                            obs.counter(&format!(
                                                "dtm_dist_w{}_timeout_total",
                                                w.idx
                                            ))
                                            .inc();
                                        }
                                        obs.counter("dtm_dist_retry_total").inc();
                                        obs.counter(&format!("dtm_dist_w{}_retry_total", w.idx))
                                            .inc();
                                    }
                                    if w.note_failure() == Health::Dead {
                                        on_worker_down(w);
                                    }
                                    sched.fail_remote(id);
                                }
                            }
                        }
                        active_lanes.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            }

            // Heartbeat: probes non-dead workers so a hung fleet is
            // noticed even when every lane is blocked on a call.
            if lanes_total > 0 {
                let pool = &pool;
                let sched = &sched;
                let active_lanes = &active_lanes;
                let on_worker_down = &on_worker_down;
                s.spawn(move || {
                    let done = || {
                        sched.is_aborted()
                            || sched.all_done()
                            || active_lanes.load(Ordering::SeqCst) == 0
                    };
                    loop {
                        let mut slept = Duration::ZERO;
                        while slept < cfg.heartbeat {
                            if done() {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(50));
                            slept += Duration::from_millis(50);
                        }
                        for w in pool.workers.iter().filter(|w| !w.is_dead()) {
                            let alive = Client::connect_timeout(&w.addr, cfg.connect_timeout)
                                .and_then(|mut c| {
                                    c.call_deadline(&Request::Ping, cfg.connect_timeout)
                                })
                                .map(|r| matches!(r, Response::Pong { .. }))
                                .unwrap_or(false);
                            if alive {
                                w.note_success();
                            } else if w.note_failure() == Health::Dead {
                                on_worker_down(w);
                            }
                            if done() {
                                return;
                            }
                        }
                    }
                });
            }

            // Coordinator-local executor threads: drain parked and
            // inexpressible cells, and steal queued remote work when
            // idle.
            for t in 0..cfg.local_threads {
                let emit = Emit {
                    ctx,
                    sched: &sched,
                    tx: tx.clone(),
                };
                let sched = &sched;
                let exec_cell = &exec_cell;
                let local_cells = &local_cells;
                s.spawn(move || {
                    while let Some(id) = sched.acquire_local(true) {
                        let exec = exec_cell.get_or_init(|| LocalExec::new(ctx));
                        match exec.run_cell(ctx, ctx.misses[id], t + 1) {
                            Ok(outcome) => {
                                local_cells.fetch_add(1, Ordering::Relaxed);
                                if obs.is_enabled() {
                                    obs.counter("dtm_dist_local_cells_total").inc();
                                }
                                if !emit.local(id, outcome) {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = emit.tx.send(Err(e));
                                sched.abort();
                                break;
                            }
                        }
                    }
                });
            }
        });

        // Completeness fallback: whatever is still unresolved (parked
        // with no local threads, or a fleet that died mid-sweep) runs
        // on a local pool. A sweep handed to this backend always
        // finishes.
        if !sched.is_aborted() && !sched.all_done() {
            let remaining = sched.with_state(|st| st.drain_unresolved());
            let subset: Vec<usize> = remaining.iter().map(|&id| ctx.misses[id]).collect();
            let nw = ctx.workers.min(subset.len()).max(1);
            ctx.prewarm(&subset, nw);
            let exec = exec_cell.get_or_init(|| LocalExec::new(ctx));
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for wid in 1..=nw {
                    let emit = Emit {
                        ctx,
                        sched: &sched,
                        tx: tx.clone(),
                    };
                    let sched = &sched;
                    let next = &next;
                    let remaining = &remaining;
                    let fallback_cells = &fallback_cells;
                    s.spawn(move || loop {
                        if sched.is_aborted() {
                            break;
                        }
                        let j = next.fetch_add(1, Ordering::SeqCst);
                        let Some(&id) = remaining.get(j) else { break };
                        match exec.run_cell(ctx, ctx.misses[id], wid) {
                            Ok(outcome) => {
                                fallback_cells.fetch_add(1, Ordering::Relaxed);
                                if obs.is_enabled() {
                                    obs.counter("dtm_dist_fallback_cells_total").inc();
                                }
                                if !emit.local(id, outcome) {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = emit.tx.send(Err(e));
                                sched.abort();
                                break;
                            }
                        }
                    });
                }
            });
        }

        let counts = sched.with_state(|st| st.counts);
        *self.summary.lock().unwrap() = Some(DispatchSummary::collect(
            &pool,
            counts,
            local_cells.load(Ordering::Relaxed),
            fallback_cells.load(Ordering::Relaxed),
        ));
    }

    fn label(&self) -> String {
        format!(
            "dist({} remote, {} local)",
            self.cfg.workers.len(),
            self.cfg.local_threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_core::{DtmConfig, FaultConfig, FaultScenario, PolicySpec, SimConfig, WatchdogConfig};
    use dtm_harness::cache::CellKey;
    use dtm_harness::{ConfigVariant, SweepSpec};
    use dtm_workloads::{TraceGenConfig, TraceLibrary, Workload};
    use std::sync::Arc;

    struct Fixture {
        spec: SweepSpec,
        cells: Vec<dtm_harness::CellIndex>,
        keys: Vec<CellKey>,
        misses: Vec<usize>,
        lib: Arc<TraceLibrary>,
        obs: dtm_core::ObsHandle,
    }

    fn fixture(variant: ConfigVariant) -> Fixture {
        let spec = SweepSpec::new(vec![Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"])])
            .variant(variant)
            .policies([PolicySpec::baseline()]);
        let cells = spec.cells();
        let lib = Arc::new(TraceLibrary::new(TraceGenConfig::fast_test()));
        let version = env!("CARGO_PKG_VERSION");
        let keys: Vec<CellKey> = cells
            .iter()
            .map(|c| {
                cell_key(
                    &spec.workload_axis()[c.workload],
                    spec.policy_axis()[c.policy],
                    &spec.variant_axis()[c.variant].sim,
                    &spec.variant_axis()[c.variant].dtm,
                    &spec.variant_axis()[c.variant].faults,
                    lib.config(),
                    version,
                )
            })
            .collect();
        let misses = (0..cells.len()).collect();
        Fixture {
            spec,
            cells,
            keys,
            misses,
            lib,
            obs: dtm_core::ObsHandle::enabled_default(),
        }
    }

    impl Fixture {
        fn ctx(&self) -> BackendCtx<'_> {
            BackendCtx {
                spec: &self.spec,
                cells: &self.cells,
                keys: &self.keys,
                misses: &self.misses,
                lib: &self.lib,
                cache: None,
                obs: &self.obs,
                sweep_start: Instant::now(),
                workers: 1,
                lanes: 1,
            }
        }
    }

    #[test]
    fn base_config_cell_is_expressible_and_key_checked() {
        let sim = SimConfig::fast_test();
        let fx = fixture(ConfigVariant::new(
            "base",
            sim.clone(),
            DtmConfig::default(),
        ));
        let ctx = fx.ctx();
        let req = request_for_cell(&ctx, 0, &sim).expect("expressible");
        assert_eq!(req.benchmarks, vec!["gzip", "mcf", "gzip", "mcf"]);
        assert!(req.fault.is_none());
        assert!(req.threshold_c.is_none());
        assert_eq!(req.duration_s, Some(sim.duration));
    }

    #[test]
    fn threshold_and_fault_variants_map_to_wire_presets() {
        let sim = SimConfig::fast_test();
        let faults = FaultConfig::protected(
            FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, sim.duration * 0.2),
            WatchdogConfig::enabled(),
        );
        let fx = fixture(
            ConfigVariant::new("hot", sim.clone(), DtmConfig::with_threshold(90.0))
                .with_faults(faults),
        );
        let ctx = fx.ctx();
        let req = request_for_cell(&ctx, 0, &sim).expect("expressible");
        assert_eq!(req.fault.as_deref(), Some("stuck-hot+watchdog"));
        assert_eq!(req.threshold_c, Some(90.0));
    }

    #[test]
    fn tuned_knob_variants_are_expressible_and_key_checked() {
        let sim = SimConfig::fast_test();
        let dtm = DtmConfig {
            pi_kp: 0.02,
            dvfs_setpoint_margin: 1.2,
            migration_interval: 0.05,
            ..DtmConfig::default()
        };
        let fx = fixture(ConfigVariant::new("tuned", sim.clone(), dtm));
        let ctx = fx.ctx();
        let req = request_for_cell(&ctx, 0, &sim).expect("expressible");
        assert_eq!(req.pi_kp, Some(0.02));
        assert_eq!(req.setpoint_margin_c, Some(1.2));
        assert_eq!(req.migration_interval_s, Some(0.05));
        // Paper-default knobs stay off the wire entirely.
        assert!(req.pi_ki.is_none());
        assert!(req.trip_margin_c.is_none());
        assert!(req.stall_s.is_none());
        assert!(req.os_tick_s.is_none());
        assert!(req.threshold_c.is_none());
    }

    #[test]
    fn adaptive_schedule_variants_are_expressible_and_key_checked() {
        let sim = SimConfig::fast_test();
        for (schedule, wire) in [
            (GainScheduleConfig::rao_default(), "rao"),
            (
                GainScheduleConfig::SelfTuning {
                    rate: 0.3,
                    window_s: 0.004,
                },
                "selftune",
            ),
        ] {
            let dtm = DtmConfig {
                gain_schedule: schedule,
                ..DtmConfig::default()
            };
            let fx = fixture(ConfigVariant::new("adaptive", sim.clone(), dtm));
            let ctx = fx.ctx();
            let req = request_for_cell(&ctx, 0, &sim).expect("expressible");
            assert_eq!(req.schedule.as_deref(), Some(wire));
            assert!(req.adapt_rate.is_some() && req.adapt_window_s.is_some());
        }
        // Fixed-gain cells keep the pre-adaptive wire spelling.
        let fx = fixture(ConfigVariant::new(
            "base",
            sim.clone(),
            DtmConfig::default(),
        ));
        let ctx = fx.ctx();
        let req = request_for_cell(&ctx, 0, &sim).expect("expressible");
        assert!(req.schedule.is_none());
        assert!(req.adapt_rate.is_none() && req.adapt_window_s.is_none());
    }

    #[test]
    fn off_vocabulary_dtm_fields_are_inexpressible() {
        // min-scale has no wire spelling; out-of-range knob values are
        // rejected by the server-identical resolve.
        let sim = SimConfig::fast_test();
        for dtm in [
            DtmConfig {
                dvfs_min_scale: 0.5,
                ..DtmConfig::default()
            },
            DtmConfig {
                pi_kp: 99.0, // beyond the wire's accepted range
                ..DtmConfig::default()
            },
        ] {
            let fx = fixture(ConfigVariant::new("odd", sim.clone(), dtm));
            let ctx = fx.ctx();
            assert!(request_for_cell(&ctx, 0, &sim).is_none());
        }
    }

    #[test]
    fn off_vocabulary_configs_are_inexpressible() {
        // A per-core max-scale map has no wire spelling: the cell must
        // fall back to local execution rather than resolve to a
        // different (wrong) cell remotely.
        let mut sim = SimConfig::fast_test();
        sim.core_max_scale = vec![1.0, 0.8, 1.0, 0.8];
        let fx = fixture(ConfigVariant::new("asym", sim, DtmConfig::default()));
        let ctx = fx.ctx();
        assert!(request_for_cell(&ctx, 0, &SimConfig::fast_test()).is_none());
    }

    #[test]
    fn bad_host_lists_are_rejected_before_any_dispatch() {
        let ok = |hosts: &[&str]| {
            validate_workers(&hosts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert!(ok(&["a:1", "b:2"]).is_ok());
        assert!(ok(&[]).is_ok(), "an empty fleet is the caller's decision");
        match ok(&["a:1", "", "b:2"]) {
            Err(SimError::BadInput(msg)) => assert!(msg.contains("entry 2 is empty"), "got: {msg}"),
            other => panic!("expected BadInput for empty entry, got {other:?}"),
        }
        match ok(&["a:1", "b:2", "a:1"]) {
            Err(SimError::BadInput(msg)) => {
                assert!(msg.contains("`a:1` listed more than once"), "got: {msg}")
            }
            other => panic!("expected BadInput for duplicate, got {other:?}"),
        }

        // A backend over a bad fleet fails the sweep loudly instead of
        // dispatching twice — checked without any live server because
        // validation precedes the handshake.
        let sim = SimConfig::fast_test();
        let fx = fixture(ConfigVariant::new(
            "base",
            sim.clone(),
            DtmConfig::default(),
        ));
        let ctx = fx.ctx();
        let backend = RemoteBackend::new(DistConfig::new(vec!["a:1".into(), "a:1".into()], sim));
        let (tx, rx) = mpsc::channel();
        backend.run_cells(&ctx, &tx);
        drop(tx);
        let delivered: Vec<_> = rx.iter().collect();
        assert_eq!(delivered.len(), 1);
        assert!(
            matches!(&delivered[0], Err(SimError::BadInput(m)) if m.contains("more than once"))
        );
    }

    #[test]
    fn duplicate_delivery_emits_once_and_counts_in_obs() {
        let sim = SimConfig::fast_test();
        let fx = fixture(ConfigVariant::new("base", sim, DtmConfig::default()));
        let ctx = fx.ctx();
        let exec = LocalExec::new(&ctx);
        let outcome = exec.run_cell(&ctx, 0, 1).expect("simulates");
        let result = outcome.result.clone();

        let sched = Scheduler::new(DispatchState::new(
            &[true],
            crate::dispatch::DispatchConfig::default(),
        ));
        let (tx, rx) = mpsc::channel();
        let emit = Emit {
            ctx: &ctx,
            sched: &sched,
            tx,
        };
        // Mark the cell dispatched twice (speculation), then deliver
        // the same result twice.
        sched.acquire_remote();
        assert!(emit.remote(0, result.clone(), Duration::ZERO, Duration::ZERO, 1000));
        assert!(emit.remote(0, result, Duration::ZERO, Duration::ZERO, 1001));
        drop(emit);
        let delivered: Vec<_> = rx.iter().collect();
        assert_eq!(delivered.len(), 1, "exactly one outcome reaches the runner");
        assert!(delivered[0].is_ok());
        assert_eq!(
            fx.obs.counter("dtm_dist_duplicate_total").get(),
            1,
            "the reconciled duplicate is counted"
        );
        assert_eq!(sched.with_state(|st| st.counts.duplicates), 1);
    }

    #[test]
    fn mismatched_duplicate_is_a_fatal_error() {
        let sim = SimConfig::fast_test();
        let fx = fixture(ConfigVariant::new("base", sim, DtmConfig::default()));
        let ctx = fx.ctx();
        let exec = LocalExec::new(&ctx);
        let outcome = exec.run_cell(&ctx, 0, 1).expect("simulates");
        let mut tampered = outcome.result.clone();
        tampered.duty_cycle += 0.25;

        let sched = Scheduler::new(DispatchState::new(
            &[true],
            crate::dispatch::DispatchConfig::default(),
        ));
        let (tx, rx) = mpsc::channel();
        let emit = Emit {
            ctx: &ctx,
            sched: &sched,
            tx,
        };
        sched.acquire_remote();
        assert!(emit.remote(0, outcome.result, Duration::ZERO, Duration::ZERO, 1000));
        assert!(
            !emit.remote(0, tampered, Duration::ZERO, Duration::ZERO, 1001),
            "a byte-different duplicate is fatal"
        );
        assert!(sched.is_aborted());
        drop(emit);
        let delivered: Vec<_> = rx.iter().collect();
        assert_eq!(delivered.len(), 2);
        assert!(delivered[0].is_ok());
        match &delivered[1] {
            Err(SimError::BadInput(msg)) => {
                assert!(msg.contains("determinism violation"), "got: {msg}")
            }
            other => panic!("expected a BadInput error, got {other:?}"),
        }
    }
}
