//! `dtm_dist` — run a sweep grid across a fleet of `dtm-serve`
//! workers.
//!
//! ```text
//! dtm_dist --workers HOST:PORT[,HOST:PORT...] | --workers-file PATH
//!          [DURATION] [--local-workers N] [--deadline S] [--retries N]
//!          [--fast-traces] [--no-cache] [--json] [--smoke]
//! ```
//!
//! Default mode runs the full Table 8 grid (all 12 policies ×
//! standard workloads) through the distributed backend, prints the
//! policy table and the dispatch summary, and reports wall-clock time
//! (the number the scaling measurement in `EXPERIMENTS.md` quotes).
//!
//! `--smoke` is the self-check CI runs: a small fast-config grid is
//! executed twice — locally and distributed — into separate throwaway
//! caches and ledgers, then compared. Results must be bit-identical
//! and ledger rows identical modulo timing fields; any divergence
//! exits non-zero. The dispatch summary is written to
//! `results/DIST_summary.json`.

use dtm_core::{PolicySpec, SimConfig, SimError};
use dtm_dist::{DistConfig, RemoteBackend};
use dtm_harness::codec::result_to_json;
use dtm_harness::json::Json;
use dtm_harness::{Ledger, ResultCache, SweepResults, SweepRunner, SweepSpec};
use dtm_workloads::{TraceGenConfig, TraceLibrary, Workload};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: dtm_dist --workers HOST:PORT[,...] | --workers-file PATH\n\
         \x20      [DURATION] [--local-workers N] [--deadline S] [--retries N]\n\
         \x20      [--fast-traces] [--no-cache] [--json] [--smoke]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

struct Args {
    workers: Vec<String>,
    local_workers: usize,
    deadline: f64,
    retries: u32,
    duration: f64,
    fast_traces: bool,
    no_cache: bool,
    json: bool,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        workers: Vec::new(),
        local_workers: 0,
        deadline: 30.0,
        retries: 2,
        duration: 0.5,
        fast_traces: false,
        no_cache: false,
        json: false,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workers" => match args.next() {
                Some(list) => {
                    for entry in list.split(',') {
                        if entry.trim().is_empty() {
                            usage(&format!("--workers list `{list}` contains an empty entry"));
                        }
                        out.workers.push(entry.trim().to_string());
                    }
                }
                None => usage("--workers requires host:port[,host:port...]"),
            },
            "--workers-file" => match args.next() {
                Some(path) => match std::fs::read_to_string(&path) {
                    Ok(text) => out.workers.extend(
                        text.lines()
                            .map(str::trim)
                            .filter(|l| !l.is_empty() && !l.starts_with('#'))
                            .map(String::from),
                    ),
                    Err(e) => usage(&format!("cannot read {path}: {e}")),
                },
                None => usage("--workers-file requires a path"),
            },
            "--local-workers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => out.local_workers = n,
                None => usage("--local-workers requires an integer"),
            },
            "--deadline" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(d) if d > 0.0 => out.deadline = d,
                _ => usage("--deadline requires positive seconds"),
            },
            "--retries" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => out.retries = n,
                None => usage("--retries requires an integer"),
            },
            "--fast-traces" => out.fast_traces = true,
            "--no-cache" => out.no_cache = true,
            "--json" => out.json = true,
            "--smoke" => out.smoke = true,
            "--help" | "-h" => usage(""),
            other => match other.parse::<f64>() {
                Ok(d) if d > 0.0 => out.duration = d,
                _ => usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }
    if out.workers.is_empty() {
        usage("at least one worker is required (--workers or --workers-file)");
    }
    if let Err(e) = dtm_dist::validate_workers(&out.workers) {
        usage(&format!("{e:?}"));
    }
    out
}

/// The coordinator's view of the fleet's configuration: base sim and
/// trace generation must match what the workers were started with
/// (the handshake verifies this).
fn fleet_config(args: &Args) -> (SimConfig, TraceGenConfig) {
    if args.fast_traces {
        (SimConfig::fast_test(), TraceGenConfig::fast_test())
    } else {
        (SimConfig::default(), TraceGenConfig::default())
    }
}

fn dist_config(args: &Args, expected_base: SimConfig) -> DistConfig {
    let mut cfg = DistConfig::new(args.workers.clone(), expected_base);
    cfg.local_threads = args.local_workers;
    cfg.deadline = Duration::from_secs_f64(args.deadline);
    cfg.retries = args.retries;
    cfg
}

fn main() {
    let args = parse_args();
    if args.smoke {
        smoke(&args);
        return;
    }

    let (base_sim, tracegen) = fleet_config(&args);
    let mut sim = base_sim.clone();
    sim.duration = args.duration;
    let spec = SweepSpec::new(dtm_workloads::standard_workloads())
        .variant(dtm_harness::ConfigVariant::new(
            "dist",
            sim,
            dtm_core::DtmConfig::default(),
        ))
        .policies(PolicySpec::all());

    let backend = Arc::new(RemoteBackend::new(dist_config(&args, base_sim)));
    let mut runner = SweepRunner::paper_defaults().with_backend(backend.clone() as Arc<_>);
    if args.fast_traces {
        runner = SweepRunner::bare_shared(Arc::new(TraceLibrary::new(tracegen)))
            .with_cache(Some(ResultCache::default_location()))
            .with_ledger(Some(Ledger::default_location()))
            .with_backend(backend.clone() as Arc<_>);
    }
    if args.no_cache {
        runner = runner.with_cache(None);
    }

    let t0 = Instant::now();
    let results = match runner.run(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dtm_dist: sweep failed: {e:?}");
            std::process::exit(1);
        }
    };
    let wall = t0.elapsed();
    if let Some(summary) = backend.take_summary() {
        if args.json {
            println!("{}", summary.to_json().emit());
        } else {
            println!("{}", summary.render());
        }
    }
    println!(
        "dtm_dist: {} cells ({} executed, {} cached) in {:.2}s",
        results.outcomes().len(),
        results.executed(),
        results.cache_hits(),
        wall.as_secs_f64()
    );
}

/// Canonical per-cell result bytes, in cell order.
fn canonical(results: &SweepResults) -> Vec<String> {
    results
        .outcomes()
        .iter()
        .map(|o| result_to_json(&o.result).emit())
        .collect()
}

/// A ledger row with the timing/placement fields stripped — what must
/// be identical between local and distributed execution.
fn normalize_ledger_row(line: &str) -> String {
    let Ok(v) = Json::parse(line) else {
        return line.to_string();
    };
    let Json::Obj(fields) = v else {
        return line.to_string();
    };
    let kept: Vec<(String, Json)> = fields
        .into_iter()
        .filter(|(k, _)| !matches!(k.as_str(), "ts" | "wall_s" | "queue_s" | "worker"))
        .collect();
    Json::Obj(kept).emit()
}

fn sorted_normalized_ledger(path: &PathBuf) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut rows: Vec<String> = text.lines().map(normalize_ledger_row).collect();
    rows.sort();
    rows
}

fn smoke(args: &Args) {
    let (base_sim, tracegen) = fleet_config(args);
    let spec = || {
        SweepSpec::new(vec![
            Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
            Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
            Workload::new("wc", ["art", "swim", "art", "swim"]),
        ])
        .variant(dtm_harness::ConfigVariant::new(
            "smoke",
            base_sim.clone(),
            dtm_core::DtmConfig::default(),
        ))
        .policies([PolicySpec::baseline(), PolicySpec::best()])
    };

    let scratch = std::env::temp_dir().join(format!("dtm-dist-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let run = |tag: &str,
               backend: Option<Arc<RemoteBackend>>|
     -> Result<(SweepResults, PathBuf), SimError> {
        let ledger_path = scratch.join(format!("{tag}-ledger.jsonl"));
        let mut runner = SweepRunner::bare_shared(Arc::new(TraceLibrary::new(tracegen.clone())))
            .with_cache(Some(ResultCache::new(scratch.join(format!("{tag}-cache")))))
            .with_ledger(Some(Ledger::open(&ledger_path)));
        if let Some(b) = backend {
            runner = runner.with_backend(b as Arc<_>);
        }
        Ok((runner.run(spec())?, ledger_path))
    };

    eprintln!("dtm_dist: smoke — local baseline…");
    let (local, local_ledger) = match run("local", None) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dtm_dist: local baseline failed: {e:?}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "dtm_dist: smoke — distributed across {} worker(s)…",
        args.workers.len()
    );
    let backend = Arc::new(RemoteBackend::new(dist_config(args, base_sim.clone())));
    let (dist, dist_ledger) = match run("dist", Some(backend.clone())) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dtm_dist: distributed run failed: {e:?}");
            std::process::exit(1);
        }
    };

    let summary = backend.take_summary();
    if let Some(s) = &summary {
        eprintln!("{}", s.render());
    }

    // Bit-identity of every cell's result.
    let a = canonical(&local);
    let b = canonical(&dist);
    let mut failures = 0;
    if a != b {
        failures += 1;
        eprintln!("dtm_dist: FAIL — results diverge between local and distributed runs");
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x != y {
                eprintln!("  cell {i}:\n    local: {x}\n    dist:  {y}");
            }
        }
    }
    // Ledger parity modulo timing/placement fields.
    let la = sorted_normalized_ledger(&local_ledger);
    let lb = sorted_normalized_ledger(&dist_ledger);
    if la != lb {
        failures += 1;
        eprintln!("dtm_dist: FAIL — ledgers diverge (modulo ts/wall_s/queue_s/worker)");
    }
    if la.len() != local.outcomes().len() || lb.len() != dist.outcomes().len() {
        failures += 1;
        eprintln!(
            "dtm_dist: FAIL — ledger row counts {} / {} != {} cells",
            la.len(),
            lb.len(),
            local.outcomes().len()
        );
    }

    // The CI artifact.
    let _ = std::fs::create_dir_all("results");
    let verdict = Json::Obj(vec![
        ("ok".into(), Json::Bool(failures == 0)),
        ("cells".into(), Json::Num(a.len().to_string())),
        ("ledger_rows".into(), Json::Num(la.len().to_string())),
        (
            "dispatch".into(),
            summary.map(|s| s.to_json()).unwrap_or(Json::Null),
        ),
    ]);
    let _ = std::fs::write("results/DIST_summary.json", verdict.emit());

    println!(
        "dtm_dist smoke: {} cells, {} ledger rows, {}",
        a.len(),
        la.len(),
        if failures == 0 {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    let _ = std::fs::remove_dir_all(&scratch);
    if failures > 0 {
        std::process::exit(1);
    }
}
