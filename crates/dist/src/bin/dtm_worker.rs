//! `dtm_worker` — a `dtm-serve` worker process with the isolation
//! flags a distributed test (or CI smoke job) needs: explicit cache
//! and ledger paths instead of the shared default locations, so
//! parallel fleets never share on-disk state by accident.
//!
//! ```text
//! dtm_worker [--addr HOST:PORT] [--workers N] [--queue N]
//!            [--fast-traces] [--cache-dir PATH] [--ledger-file PATH]
//!            [--port-file PATH]
//! ```
//!
//! Caching defaults to **off** (unlike `dtm_serve`): a worker fleet is
//! usually pointed at disposable state, and the coordinator maintains
//! the authoritative sweep cache itself.

use dtm_harness::{Ledger, ResultCache};
use dtm_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dtm_worker [--addr HOST:PORT] [--workers N] [--queue N] \
         [--fast-traces] [--cache-dir PATH] [--ledger-file PATH] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig {
        cache: None,
        ledger: None,
        ..ServerConfig::default()
    };
    let mut port_file: Option<String> = None;

    fn value(args: &[String], i: &mut usize, name: &str) -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        })
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = value(&args, &mut i, "--addr"),
            "--workers" => {
                cfg.workers = value(&args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--queue" => {
                cfg.queue_capacity = value(&args, &mut i, "--queue")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--fast-traces" => {
                cfg.tracegen = dtm_workloads::TraceGenConfig::fast_test();
                cfg.base_sim = dtm_core::SimConfig::fast_test();
            }
            "--cache-dir" => {
                cfg.cache = Some(ResultCache::new(value(&args, &mut i, "--cache-dir")))
            }
            "--ledger-file" => {
                cfg.ledger = Some(Ledger::open(value(&args, &mut i, "--ledger-file")))
            }
            "--port-file" => port_file = Some(value(&args, &mut i, "--port-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    let handle = match Server::spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dtm_worker: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!("dtm_worker listening on {addr}");
    if let Some(path) = port_file {
        // Written atomically (temp + rename) so a polling script never
        // reads a half-written port number.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{}\n", addr.port())).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    while !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("dtm_worker: shutdown requested, draining…");
    let report = handle.shutdown();
    eprintln!(
        "dtm_worker: drained — accepted {} rejected {} completed {} timeouts {}",
        report.accepted, report.rejected, report.completed, report.timeouts
    );
    if !report.fully_drained() {
        eprintln!("dtm_worker: drain accounting violated");
        std::process::exit(1);
    }
}
