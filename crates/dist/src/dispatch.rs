//! The coordinator's scheduling core: a pure, lock-free-of-I/O state
//! machine ([`DispatchState`]) plus the thread-safe wrapper
//! ([`Scheduler`]) the backend's channel/local threads drive.
//!
//! Every robustness behavior lives here, where it is unit-testable
//! without sockets:
//!
//! - bounded retry with deterministic (jitter-free) exponential
//!   backoff,
//! - parking cells to the local queue once the retry budget is spent
//!   (or the worker pool drains to zero) so a sweep always completes,
//! - speculative re-execution of stragglers, capped at one duplicate
//!   in flight per cell,
//! - duplicate-result reconciliation: the first completion wins and is
//!   emitted; any later completion of the same cell is byte-compared
//!   against it and must be identical — a mismatch is a determinism
//!   violation, surfaced as a fatal error, never silently dropped.
//!
//! Time enters as a plain [`Duration`] since an arbitrary epoch, so
//! tests drive the clock explicitly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduling knobs (all deterministic: no jitter anywhere).
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Remote attempts per cell beyond the first before it is parked
    /// to the local queue.
    pub retries: u32,
    /// Base backoff after a failed attempt; attempt `n` waits
    /// `backoff × 2^(n−1)`.
    pub backoff: Duration,
    /// Age at which an in-flight cell becomes a straggler eligible for
    /// speculative duplication on an idle channel; `None` disables
    /// speculation.
    pub speculate_after: Option<Duration>,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            retries: 2,
            backoff: Duration::from_millis(250),
            speculate_after: Some(Duration::from_secs(10)),
        }
    }
}

/// Per-cell scheduling slot. `id` is the position in the backend's
/// miss list, not the sweep-wide cell index.
#[derive(Debug)]
struct Slot {
    /// Whether this cell can be expressed as a wire request at all.
    remote_ok: bool,
    /// Dispatches so far (remote only).
    attempts: u32,
    /// Executions currently in flight (remote + stolen local).
    inflight: u32,
    /// Of those, how many are remote.
    remote_inflight: u32,
    /// Logical time of the most recent dispatch.
    started: Duration,
    /// Earliest logical time the next remote attempt may start.
    next_eligible: Duration,
    /// A completion has been recorded (and emitted).
    done: bool,
    /// Forced onto the local queue (retries spent, pool dead, or
    /// inexpressible).
    parked: bool,
    /// Canonical bytes of the first completion, for reconciling any
    /// duplicate that lands later.
    first_bits: Option<Vec<u8>>,
}

/// What [`DispatchState::next_remote`] hands an idle channel.
#[derive(Debug, PartialEq, Eq)]
pub enum RemoteNext {
    /// Dispatch this slot now. The flag says this is a speculative
    /// duplicate of a straggler, not a first/retry dispatch.
    Dispatch {
        /// Slot id (index into the miss list).
        id: usize,
        /// True when this duplicates an in-flight attempt.
        speculative: bool,
    },
    /// Nothing dispatchable yet; re-ask after this long (backoff gap
    /// or waiting on stragglers that may yet need speculation/retry).
    Wait(Duration),
    /// No remote work will ever exist again: every cell is done,
    /// parked locally, or the queue is empty with nothing in flight.
    Exhausted,
}

/// How a completed execution was reconciled.
#[derive(Debug, PartialEq, Eq)]
pub enum Completion {
    /// First completion of this cell: emit the outcome.
    Fresh,
    /// A duplicate (speculation or a late straggler) whose bytes match
    /// the first completion: count it, emit nothing.
    DuplicateMatch,
    /// A duplicate whose bytes differ — a determinism violation.
    DuplicateMismatch,
}

/// What happened to a failed remote attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum FailOutcome {
    /// Requeued for another remote attempt after backoff.
    Retry,
    /// Retry budget spent (or pool dead): moved to the local queue.
    ParkedLocal,
    /// The cell no longer needs this attempt (already completed by
    /// another lane, or already parked).
    Stale,
}

/// The pure scheduling state. All methods take `now` as a [`Duration`]
/// since the scheduler's epoch.
#[derive(Debug)]
pub struct DispatchState {
    slots: Vec<Slot>,
    remote_queue: VecDeque<usize>,
    local_queue: VecDeque<usize>,
    remote_inflight_total: usize,
    resolved: usize,
    pool_alive: bool,
    cfg: DispatchConfig,
    /// Reconciliation/robustness tallies, exported into the dispatch
    /// summary.
    pub counts: DispatchCounts,
}

/// Tallies the dispatch machinery keeps about its own behavior.
#[derive(Debug, Default, Clone, Copy)]
pub struct DispatchCounts {
    /// Speculative duplicate dispatches issued.
    pub speculated: u64,
    /// Duplicate completions reconciled (byte-identical).
    pub duplicates: u64,
    /// Cells parked to the local queue after spending their retry
    /// budget.
    pub retry_exhausted: u64,
    /// Cells parked because the worker pool drained to zero.
    pub pool_drained: u64,
    /// Cells that were never remotely expressible.
    pub inexpressible: u64,
    /// Remote attempts that failed and were requeued.
    pub retries: u64,
    /// Cells the server rejected outright (`error` response) — parked
    /// locally without burning the retry budget.
    pub rejected: u64,
}

impl DispatchState {
    /// Builds the state for one sweep: `remote_ok[i]` says whether
    /// miss `i` can be expressed as a wire request. Inexpressible
    /// cells start on the local queue.
    pub fn new(remote_ok: &[bool], cfg: DispatchConfig) -> Self {
        let mut counts = DispatchCounts::default();
        let slots = remote_ok
            .iter()
            .map(|&ok| Slot {
                remote_ok: ok,
                attempts: 0,
                inflight: 0,
                remote_inflight: 0,
                started: Duration::ZERO,
                next_eligible: Duration::ZERO,
                done: false,
                parked: !ok,
                first_bits: None,
            })
            .collect::<Vec<_>>();
        let mut remote_queue = VecDeque::new();
        let mut local_queue = VecDeque::new();
        for (id, &ok) in remote_ok.iter().enumerate() {
            if ok {
                remote_queue.push_back(id);
            } else {
                counts.inexpressible += 1;
                local_queue.push_back(id);
            }
        }
        DispatchState {
            slots,
            remote_queue,
            local_queue,
            remote_inflight_total: 0,
            resolved: 0,
            pool_alive: true,
            cfg,
            counts,
        }
    }

    /// Every cell has a recorded completion.
    pub fn all_done(&self) -> bool {
        self.resolved == self.slots.len()
    }

    /// Cells still without a completion.
    pub fn unresolved(&self) -> usize {
        self.slots.len() - self.resolved
    }

    /// Marks the worker pool dead: the remote queue drains to the
    /// local queue and future failures park instead of retrying.
    pub fn pool_died(&mut self) {
        self.pool_alive = false;
        while let Some(id) = self.remote_queue.pop_front() {
            let s = &mut self.slots[id];
            if !s.done && !s.parked {
                s.parked = true;
                self.counts.pool_drained += 1;
                self.local_queue.push_back(id);
            }
        }
    }

    /// Whether the pool is still considered alive.
    pub fn pool_alive(&self) -> bool {
        self.pool_alive
    }

    /// Picks work for an idle remote channel.
    pub fn next_remote(&mut self, now: Duration) -> RemoteNext {
        if !self.pool_alive {
            return RemoteNext::Exhausted;
        }
        // First queued cell whose backoff has elapsed wins. Skipped
        // (still-cooling) cells keep their order.
        let mut soonest: Option<Duration> = None;
        for _ in 0..self.remote_queue.len() {
            let id = self.remote_queue.pop_front().expect("non-empty");
            let s = &self.slots[id];
            if s.done || s.parked {
                continue; // resolved elsewhere (e.g. stolen by a local thread)
            }
            if s.next_eligible <= now {
                self.dispatch(id, now, false);
                return RemoteNext::Dispatch {
                    id,
                    speculative: false,
                };
            }
            soonest = Some(match soonest {
                Some(t) => t.min(s.next_eligible),
                None => s.next_eligible,
            });
            self.remote_queue.push_back(id);
        }
        if let Some(t) = soonest {
            return RemoteNext::Wait(t.saturating_sub(now));
        }
        // Queue empty: speculate on the oldest straggler, if allowed.
        if let Some(after) = self.cfg.speculate_after {
            let mut best: Option<(usize, Duration)> = None;
            for (id, s) in self.slots.iter().enumerate() {
                if s.remote_ok
                    && !s.done
                    && !s.parked
                    && s.inflight == 1
                    && s.started + after <= now
                    && best.map(|(_, t)| s.started < t).unwrap_or(true)
                {
                    best = Some((id, s.started));
                }
            }
            if let Some((id, _)) = best {
                self.dispatch(id, now, true);
                return RemoteNext::Dispatch {
                    id,
                    speculative: true,
                };
            }
        }
        if self.remote_inflight_total > 0 {
            // Stragglers may fail and come back; poll again shortly.
            return RemoteNext::Wait(Duration::from_millis(50));
        }
        RemoteNext::Exhausted
    }

    fn dispatch(&mut self, id: usize, now: Duration, speculative: bool) {
        let s = &mut self.slots[id];
        s.attempts += 1;
        s.inflight += 1;
        s.remote_inflight += 1;
        s.started = now;
        self.remote_inflight_total += 1;
        if speculative {
            self.counts.speculated += 1;
        }
    }

    /// Picks work for a local executor thread. With `steal`, an empty
    /// local queue falls back to taking queued remote work (back of
    /// the queue first) — the mixed-backend mode.
    pub fn next_local(&mut self, steal: bool) -> Option<usize> {
        while let Some(id) = self.local_queue.pop_front() {
            let s = &mut self.slots[id];
            if s.done {
                continue;
            }
            s.inflight += 1;
            return Some(id);
        }
        if steal && self.pool_alive {
            while let Some(id) = self.remote_queue.pop_back() {
                let s = &mut self.slots[id];
                if s.done || s.parked {
                    continue;
                }
                s.inflight += 1;
                return Some(id);
            }
        }
        None
    }

    /// Records a completed execution of `id` whose canonical result
    /// bytes are `bits`. `remote` says which kind of in-flight token
    /// to release.
    pub fn complete(&mut self, id: usize, bits: &[u8], remote: bool) -> Completion {
        let s = &mut self.slots[id];
        s.inflight = s.inflight.saturating_sub(1);
        if remote {
            s.remote_inflight = s.remote_inflight.saturating_sub(1);
            self.remote_inflight_total = self.remote_inflight_total.saturating_sub(1);
        }
        if !s.done {
            s.done = true;
            s.first_bits = Some(bits.to_vec());
            self.resolved += 1;
            return Completion::Fresh;
        }
        let identical = s.first_bits.as_deref() == Some(bits);
        if identical {
            self.counts.duplicates += 1;
            Completion::DuplicateMatch
        } else {
            Completion::DuplicateMismatch
        }
    }

    /// Records a failed remote attempt (I/O error, timeout, or
    /// server-side rejection) and decides the cell's fate.
    pub fn fail_remote(&mut self, id: usize, now: Duration) -> FailOutcome {
        let s = &mut self.slots[id];
        s.inflight = s.inflight.saturating_sub(1);
        s.remote_inflight = s.remote_inflight.saturating_sub(1);
        self.remote_inflight_total = self.remote_inflight_total.saturating_sub(1);
        if s.done || s.parked {
            return FailOutcome::Stale;
        }
        if s.remote_inflight > 0 {
            // A twin attempt is still running; let it decide the fate.
            return FailOutcome::Stale;
        }
        if self.pool_alive && s.attempts <= self.cfg.retries {
            self.counts.retries += 1;
            let factor = 1u32 << (s.attempts.saturating_sub(1)).min(16);
            s.next_eligible = now + self.cfg.backoff * factor;
            self.remote_queue.push_back(id);
            FailOutcome::Retry
        } else {
            s.parked = true;
            if self.pool_alive {
                self.counts.retry_exhausted += 1;
            } else {
                self.counts.pool_drained += 1;
            }
            self.local_queue.push_back(id);
            FailOutcome::ParkedLocal
        }
    }

    /// Parks a cell the server rejected outright: remote retries are
    /// pointless (the rejection is deterministic), so it goes straight
    /// to the local queue.
    pub fn park_local(&mut self, id: usize) {
        let s = &mut self.slots[id];
        s.inflight = s.inflight.saturating_sub(1);
        s.remote_inflight = s.remote_inflight.saturating_sub(1);
        self.remote_inflight_total = self.remote_inflight_total.saturating_sub(1);
        if s.done || s.parked {
            return;
        }
        s.parked = true;
        self.counts.rejected += 1;
        self.local_queue.push_back(id);
    }

    /// Slot ids still unresolved, for the post-scope local fallback
    /// drain (only non-empty when no local threads were configured).
    pub fn drain_unresolved(&mut self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&id| !self.slots[id].done)
            .collect()
    }
}

/// Thread-safe wrapper: the mutex + condvar discipline around
/// [`DispatchState`], plus the abort flag for fatal errors.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<DispatchState>,
    cv: Condvar,
    epoch: Instant,
    aborted: Mutex<bool>,
}

impl Scheduler {
    /// Wraps a fresh dispatch state.
    pub fn new(state: DispatchState) -> Self {
        Scheduler {
            state: Mutex::new(state),
            cv: Condvar::new(),
            epoch: Instant::now(),
            aborted: Mutex::new(false),
        }
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Signals a fatal error: every thread winds down at its next ask.
    pub fn abort(&self) {
        *self.aborted.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Whether a fatal error has been signalled.
    pub fn is_aborted(&self) -> bool {
        *self.aborted.lock().unwrap()
    }

    /// Blocks until remote work is available (or returns `None` when
    /// none will ever be again). Waits are bounded so no thread can
    /// miss a wakeup forever.
    pub fn acquire_remote(&self) -> Option<RemoteNext> {
        let mut st = self.state.lock().unwrap();
        loop {
            if self.is_aborted() {
                return None;
            }
            match st.next_remote(self.now()) {
                RemoteNext::Exhausted => return None,
                d @ RemoteNext::Dispatch { .. } => return Some(d),
                RemoteNext::Wait(d) => {
                    let wait = d.clamp(Duration::from_millis(1), Duration::from_millis(100));
                    let (guard, _) = self.cv.wait_timeout(st, wait).unwrap();
                    st = guard;
                }
            }
        }
    }

    /// Blocks until local work is available; `None` once every cell is
    /// resolved (local threads stay alive to absorb late parks).
    pub fn acquire_local(&self, steal: bool) -> Option<usize> {
        let mut st = self.state.lock().unwrap();
        loop {
            if self.is_aborted() || st.all_done() {
                return None;
            }
            if let Some(id) = st.next_local(steal) {
                return Some(id);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap();
            st = guard;
        }
    }

    /// Records a completion; see [`DispatchState::complete`].
    pub fn complete(&self, id: usize, bits: &[u8], remote: bool) -> Completion {
        let mut st = self.state.lock().unwrap();
        let c = st.complete(id, bits, remote);
        self.cv.notify_all();
        c
    }

    /// Records a failed remote attempt; see
    /// [`DispatchState::fail_remote`].
    pub fn fail_remote(&self, id: usize) -> FailOutcome {
        let now = self.now();
        let mut st = self.state.lock().unwrap();
        let f = st.fail_remote(id, now);
        self.cv.notify_all();
        f
    }

    /// Parks a server-rejected cell; see [`DispatchState::park_local`].
    pub fn park_local(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.park_local(id);
        self.cv.notify_all();
    }

    /// Declares the worker pool dead; see [`DispatchState::pool_died`].
    pub fn pool_died(&self) {
        let mut st = self.state.lock().unwrap();
        st.pool_died();
        self.cv.notify_all();
    }

    /// Whether every cell is resolved.
    pub fn all_done(&self) -> bool {
        self.state.lock().unwrap().all_done()
    }

    /// Runs `f` with the locked state (summary extraction).
    pub fn with_state<T>(&self, f: impl FnOnce(&mut DispatchState) -> T) -> T {
        let mut st = self.state.lock().unwrap();
        f(&mut st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(retries: u32, backoff_ms: u64, speculate_ms: Option<u64>) -> DispatchConfig {
        DispatchConfig {
            retries,
            backoff: Duration::from_millis(backoff_ms),
            speculate_after: speculate_ms.map(Duration::from_millis),
        }
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn happy_path_dispatches_each_cell_once() {
        let mut st = DispatchState::new(&[true, true, true], cfg(2, 100, None));
        let mut got = Vec::new();
        for _ in 0..3 {
            match st.next_remote(ms(0)) {
                RemoteNext::Dispatch { id, speculative } => {
                    assert!(!speculative);
                    got.push(id);
                }
                other => panic!("expected dispatch, got {other:?}"),
            }
        }
        assert!(matches!(st.next_remote(ms(1)), RemoteNext::Wait(_)));
        for id in got {
            assert_eq!(st.complete(id, b"r", true), Completion::Fresh);
        }
        assert!(st.all_done());
        assert_eq!(st.next_remote(ms(2)), RemoteNext::Exhausted);
    }

    #[test]
    fn failures_back_off_exponentially_then_park() {
        let mut st = DispatchState::new(&[true], cfg(2, 100, None));
        // Attempt 1 at t=0.
        assert!(matches!(
            st.next_remote(ms(0)),
            RemoteNext::Dispatch { id: 0, .. }
        ));
        assert_eq!(st.fail_remote(0, ms(10)), FailOutcome::Retry);
        // Backoff 100 ms: not eligible at t=50…
        match st.next_remote(ms(50)) {
            RemoteNext::Wait(d) => assert_eq!(d, ms(60)),
            other => panic!("expected wait, got {other:?}"),
        }
        // …eligible at t=110 (attempt 2).
        assert!(matches!(
            st.next_remote(ms(110)),
            RemoteNext::Dispatch { id: 0, .. }
        ));
        // Second failure doubles the backoff: 200 ms.
        assert_eq!(st.fail_remote(0, ms(120)), FailOutcome::Retry);
        match st.next_remote(ms(130)) {
            RemoteNext::Wait(d) => assert_eq!(d, ms(190)),
            other => panic!("expected wait, got {other:?}"),
        }
        // Attempt 3 (retries=2 allows 3 attempts total), then park.
        assert!(matches!(
            st.next_remote(ms(320)),
            RemoteNext::Dispatch { id: 0, .. }
        ));
        assert_eq!(st.fail_remote(0, ms(330)), FailOutcome::ParkedLocal);
        assert_eq!(st.counts.retry_exhausted, 1);
        assert_eq!(st.counts.retries, 2);
        // It now comes out of the local queue, and the remote side is
        // exhausted.
        assert_eq!(st.next_remote(ms(340)), RemoteNext::Exhausted);
        assert_eq!(st.next_local(false), Some(0));
        assert_eq!(st.complete(0, b"r", false), Completion::Fresh);
        assert!(st.all_done());
    }

    #[test]
    fn pool_death_parks_everything_remote() {
        let mut st = DispatchState::new(&[true, true, true], cfg(5, 100, None));
        // One in flight, two queued.
        assert!(matches!(st.next_remote(ms(0)), RemoteNext::Dispatch { .. }));
        st.pool_died();
        assert_eq!(st.counts.pool_drained, 2);
        assert_eq!(st.next_remote(ms(1)), RemoteNext::Exhausted);
        // The in-flight cell's failure parks it too, despite the
        // untouched retry budget.
        assert_eq!(st.fail_remote(0, ms(2)), FailOutcome::ParkedLocal);
        assert_eq!(st.counts.pool_drained, 3);
        // All three drain locally.
        let mut local = Vec::new();
        while let Some(id) = st.next_local(false) {
            local.push(id);
            st.complete(id, b"r", false);
        }
        local.sort_unstable();
        assert_eq!(local, vec![0, 1, 2]);
        assert!(st.all_done());
    }

    #[test]
    fn speculation_duplicates_only_stragglers() {
        let mut st = DispatchState::new(&[true, true], cfg(2, 100, Some(500)));
        assert!(matches!(
            st.next_remote(ms(0)),
            RemoteNext::Dispatch { id: 0, .. }
        ));
        assert!(matches!(
            st.next_remote(ms(10)),
            RemoteNext::Dispatch { id: 1, .. }
        ));
        // Too young to speculate.
        assert!(matches!(st.next_remote(ms(100)), RemoteNext::Wait(_)));
        // Past the straggler age: the oldest in-flight cell (0) is
        // duplicated, exactly once.
        match st.next_remote(ms(600)) {
            RemoteNext::Dispatch { id, speculative } => {
                assert_eq!(id, 0);
                assert!(speculative);
            }
            other => panic!("expected speculative dispatch, got {other:?}"),
        }
        assert_eq!(st.counts.speculated, 1);
        // Cell 0 now has 2 in flight — not eligible again; cell 1 is.
        match st.next_remote(ms(700)) {
            RemoteNext::Dispatch { id, speculative } => {
                assert_eq!(id, 1);
                assert!(speculative);
            }
            other => panic!("expected speculative dispatch, got {other:?}"),
        }
        assert!(matches!(st.next_remote(ms(800)), RemoteNext::Wait(_)));
    }

    #[test]
    fn duplicate_completions_reconcile_by_bytes() {
        let mut st = DispatchState::new(&[true], cfg(2, 100, Some(0)));
        assert!(matches!(st.next_remote(ms(0)), RemoteNext::Dispatch { .. }));
        // Idle channel immediately speculates (age 0).
        assert!(matches!(
            st.next_remote(ms(1)),
            RemoteNext::Dispatch {
                speculative: true,
                ..
            }
        ));
        // First completion is fresh and emitted.
        assert_eq!(st.complete(0, b"result-bytes", true), Completion::Fresh);
        // Identical duplicate: counted, not emitted.
        assert_eq!(
            st.complete(0, b"result-bytes", true),
            Completion::DuplicateMatch
        );
        assert_eq!(st.counts.duplicates, 1);
        assert!(st.all_done());
        assert_eq!(st.unresolved(), 0);
    }

    #[test]
    fn duplicate_mismatch_is_flagged_fatally() {
        let mut st = DispatchState::new(&[true], cfg(2, 100, Some(0)));
        assert!(matches!(st.next_remote(ms(0)), RemoteNext::Dispatch { .. }));
        assert!(matches!(st.next_remote(ms(1)), RemoteNext::Dispatch { .. }));
        assert_eq!(st.complete(0, b"aaaa", true), Completion::Fresh);
        assert_eq!(st.complete(0, b"bbbb", true), Completion::DuplicateMismatch);
        // The mismatch is reported, not counted as a benign duplicate.
        assert_eq!(st.counts.duplicates, 0);
    }

    #[test]
    fn speculative_twin_failure_is_stale_not_a_retry() {
        let mut st = DispatchState::new(&[true], cfg(2, 100, Some(0)));
        assert!(matches!(st.next_remote(ms(0)), RemoteNext::Dispatch { .. }));
        assert!(matches!(st.next_remote(ms(1)), RemoteNext::Dispatch { .. }));
        // One twin fails while the other is still running: no retry yet.
        assert_eq!(st.fail_remote(0, ms(2)), FailOutcome::Stale);
        // The surviving twin completes normally.
        assert_eq!(st.complete(0, b"r", true), Completion::Fresh);
        assert!(st.all_done());
    }

    #[test]
    fn inexpressible_cells_start_on_the_local_queue() {
        let mut st = DispatchState::new(&[true, false], cfg(2, 100, None));
        assert_eq!(st.counts.inexpressible, 1);
        assert_eq!(st.next_local(false), Some(1));
        assert!(matches!(
            st.next_remote(ms(0)),
            RemoteNext::Dispatch { id: 0, .. }
        ));
    }

    #[test]
    fn local_steal_takes_from_the_back_of_the_remote_queue() {
        let mut st = DispatchState::new(&[true, true, true], cfg(2, 100, None));
        assert_eq!(st.next_local(true), Some(2));
        assert_eq!(st.next_local(false), None, "no steal, no local work");
        // Remote still gets the front cells.
        assert!(matches!(
            st.next_remote(ms(0)),
            RemoteNext::Dispatch { id: 0, .. }
        ));
        // A completion of a stolen cell releases a local token.
        assert_eq!(st.complete(2, b"r", false), Completion::Fresh);
        assert_eq!(st.unresolved(), 2);
    }

    #[test]
    fn server_rejection_parks_without_burning_retries() {
        let mut st = DispatchState::new(&[true], cfg(5, 100, None));
        assert!(matches!(st.next_remote(ms(0)), RemoteNext::Dispatch { .. }));
        st.park_local(0);
        assert_eq!(st.counts.rejected, 1);
        assert_eq!(st.counts.retries, 0);
        assert_eq!(st.next_remote(ms(1)), RemoteNext::Exhausted);
        assert_eq!(st.next_local(false), Some(0));
        assert_eq!(st.complete(0, b"r", false), Completion::Fresh);
        assert!(st.all_done());
    }

    #[test]
    fn late_completion_after_local_park_reconciles() {
        // A cell times out remotely, parks (retries=0), runs locally —
        // then the original remote attempt's result straggles in.
        let mut st = DispatchState::new(&[true], cfg(0, 100, None));
        assert!(matches!(st.next_remote(ms(0)), RemoteNext::Dispatch { .. }));
        assert_eq!(st.fail_remote(0, ms(10)), FailOutcome::ParkedLocal);
        assert_eq!(st.next_local(false), Some(0));
        assert_eq!(st.complete(0, b"r", false), Completion::Fresh);
        // Straggler arrives with identical bytes: benign duplicate.
        assert_eq!(st.complete(0, b"r", true), Completion::DuplicateMatch);
        assert!(st.all_done());
    }
}
