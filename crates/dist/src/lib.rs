//! `dtm-dist`: fault-tolerant distributed sweep execution over
//! `dtm-serve` workers.
//!
//! A sweep grid (the Table 8 / fault-matrix experiments) is
//! embarrassingly parallel across cells, and `dtm-serve` already
//! exposes single-cell simulation over TCP with the same content
//! addresses the sweep cache uses. This crate closes the loop: a
//! coordinator that shards a [`dtm_harness::SweepSpec`]'s missed cells
//! across a fleet of workers, survives worker failure, and produces
//! **bit-identical** results, cache contents, and ledger rows (modulo
//! timing fields) to a single-process run.
//!
//! The moving parts:
//!
//! - [`RemoteBackend`] implements [`dtm_harness::Backend`], so the
//!   ordinary [`dtm_harness::SweepRunner`] drives it — cache pass,
//!   ledger, and progress reporting stay byte-for-byte the shared
//!   code paths.
//! - [`request_for_cell`] proves each cell's wire request faithful by
//!   round-tripping it and requiring content-address equality; cells
//!   outside the protocol vocabulary run locally instead.
//! - The handshake ([`dtm_serve::ServerInfo`] via extended `ping`)
//!   refuses workers whose version, base config, or trace generation
//!   differs from the coordinator's.
//! - [`dispatch`] holds the pure scheduling core: deterministic
//!   exponential backoff, bounded retries, straggler speculation, and
//!   byte-compared duplicate reconciliation.
//! - Liveness: per-worker request windows, heartbeats, and an
//!   alive → suspect → dead health model ([`worker`]); a fleet that
//!   drains to zero parks everything on the coordinator's own
//!   executor, so a sweep always completes.
//! - [`DispatchSummary`] reports per-worker dispatch/retry/timeout/RTT
//!   statistics and cache-tier attribution, alongside `dtm_dist_*`
//!   obs counters, gauges, and histograms.
//!
//! Binaries: `dtm_worker` (a `dtm-serve` server with isolation flags
//! for cache/ledger paths) and `dtm_dist` (runs a grid against a
//! fleet; `--smoke` self-checks distributed-vs-local bit-identity).

pub mod backend;
pub mod dispatch;
pub mod summary;
pub mod worker;

pub use backend::{
    request_for_cell, validate_workers, DistConfig, RemoteBackend, REMOTE_WORKER_BASE,
};
pub use dispatch::{Completion, DispatchConfig, DispatchCounts, DispatchState, Scheduler};
pub use summary::{DispatchSummary, WorkerRow};
pub use worker::{Health, Worker, WorkerPool, WorkerStats};

use dtm_core::{SimConfig, SimError};
use dtm_harness::cli::SweepArgs;
use dtm_harness::{SweepResults, SweepRunner, SweepSpec};
use std::sync::Arc;

/// Like [`dtm_harness::run_standard`], but routing execution through
/// the distributed backend when `--dist` workers were given (printing
/// the dispatch summary afterwards). Experiment binaries call this to
/// gain distribution with one flag and zero behavioral change in the
/// local case.
///
/// # Errors
///
/// Propagates the first simulation failure, including a refused
/// worker handshake.
pub fn run_with_args(spec: SweepSpec, args: &SweepArgs) -> Result<SweepResults, SimError> {
    if args.dist_workers.is_empty() {
        return dtm_harness::run_standard(spec, args);
    }
    let cfg = DistConfig::from_args(args, SimConfig::default());
    let backend = Arc::new(RemoteBackend::new(cfg));
    let mut runner = SweepRunner::paper_defaults().with_backend(backend.clone() as Arc<_>);
    if let Some(n) = args.workers {
        runner = runner.with_workers(n);
    }
    if args.no_cache {
        runner = runner.with_cache(None);
    }
    let results = runner.run(spec)?;
    if let Some(summary) = backend.take_summary() {
        eprintln!("{}", summary.render());
    }
    Ok(results)
}
