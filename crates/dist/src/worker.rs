//! The coordinator's view of a `dtm-serve` worker fleet: per-worker
//! identity, handshake verification, health tracking
//! (alive → suspect → dead), and the per-worker statistics the
//! dispatch summary reports.

use dtm_serve::ServerInfo;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Consecutive failures after which a worker is declared dead.
pub const DEATH_THRESHOLD: u32 = 3;

/// A worker's liveness as the coordinator currently believes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Handshook and recently responsive.
    Alive,
    /// At least one recent failure; still being retried.
    Suspect,
    /// Unreachable at handshake, or failed [`DEATH_THRESHOLD`]
    /// consecutive times. Its queued work is re-dispatched elsewhere.
    Dead,
}

impl Health {
    /// Fixed-width display label.
    pub fn label(self) -> &'static str {
        match self {
            Health::Alive => "alive",
            Health::Suspect => "suspect",
            Health::Dead => "dead",
        }
    }
}

/// Monotonic per-worker tallies, updated lock-free by the dispatch
/// lanes and read once at the end for the summary (and mirrored into
/// obs counters when observability is enabled).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Requests sent (first attempts + retries + speculation).
    pub dispatched: AtomicU64,
    /// Successful simulate responses.
    pub completed: AtomicU64,
    /// Attempts that failed and were requeued.
    pub retried: AtomicU64,
    /// Deadline expiries (client-side timeouts).
    pub timeouts: AtomicU64,
    /// Sum of round-trip times, µs.
    pub rtt_us_sum: AtomicU64,
    /// Results the server reported as freshly simulated.
    pub src_sim: AtomicU64,
    /// Results served from the server's in-memory memo.
    pub src_memo: AtomicU64,
    /// Results served from the server's on-disk cache.
    pub src_disk: AtomicU64,
}

impl WorkerStats {
    /// Mean observed round-trip in µs (0 when nothing completed).
    pub fn mean_rtt_us(&self) -> u64 {
        self.rtt_us_sum
            .load(Ordering::Relaxed)
            .checked_div(self.completed.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// One remote worker: address, verified capabilities, health, stats.
#[derive(Debug)]
pub struct Worker {
    /// `host:port` as given on the command line.
    pub addr: String,
    /// Stable index (order of the `--workers` list), used in metric
    /// names and outcome worker ids.
    pub idx: usize,
    /// Concurrent request lanes this worker is driven with.
    pub window: usize,
    /// Capabilities from the handshake (`None` when unreachable at
    /// startup).
    pub info: Option<ServerInfo>,
    health: Mutex<Health>,
    consecutive_failures: AtomicUsize,
    /// Per-worker dispatch tallies.
    pub stats: WorkerStats,
}

impl Worker {
    /// A handshook, alive worker driven with `window` lanes.
    pub fn alive(addr: String, idx: usize, window: usize, info: ServerInfo) -> Self {
        Worker {
            addr,
            idx,
            window,
            info: Some(info),
            health: Mutex::new(Health::Alive),
            consecutive_failures: AtomicUsize::new(0),
            stats: WorkerStats::default(),
        }
    }

    /// A worker that was unreachable at handshake: tolerated, but
    /// starts dead and gets no lanes.
    pub fn dead(addr: String, idx: usize) -> Self {
        Worker {
            addr,
            idx,
            window: 0,
            info: None,
            health: Mutex::new(Health::Dead),
            consecutive_failures: AtomicUsize::new(DEATH_THRESHOLD as usize),
            stats: WorkerStats::default(),
        }
    }

    /// Current health.
    pub fn health(&self) -> Health {
        *self.health.lock().unwrap()
    }

    /// Whether the worker is declared dead.
    pub fn is_dead(&self) -> bool {
        self.health() == Health::Dead
    }

    /// Records a successful interaction: failures reset, health back
    /// to alive (a dead worker stays dead — lanes have already left).
    pub fn note_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        let mut h = self.health.lock().unwrap();
        if *h == Health::Suspect {
            *h = Health::Alive;
        }
    }

    /// Records a failed interaction; after [`DEATH_THRESHOLD`]
    /// consecutive failures the worker is declared dead. Returns the
    /// resulting health.
    pub fn note_failure(&self) -> Health {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let mut h = self.health.lock().unwrap();
        if *h != Health::Dead {
            *h = if n >= DEATH_THRESHOLD as usize {
                Health::Dead
            } else {
                Health::Suspect
            };
        }
        *h
    }

    /// Declares the worker dead immediately (connection refused —
    /// the process is gone, no point counting to the threshold).
    pub fn mark_dead(&self) {
        *self.health.lock().unwrap() = Health::Dead;
    }
}

/// The fleet, plus a cached count of living members.
#[derive(Debug)]
pub struct WorkerPool {
    /// All configured workers, in `--workers` order.
    pub workers: Vec<Worker>,
}

impl WorkerPool {
    /// Wraps the handshook fleet.
    pub fn new(workers: Vec<Worker>) -> Self {
        WorkerPool { workers }
    }

    /// Workers not currently declared dead.
    pub fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| !w.is_dead()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ServerInfo {
        ServerInfo {
            version: "0".into(),
            workers: 2,
            cache: false,
            base_sim: "sim".into(),
            tracegen: "tg".into(),
        }
    }

    #[test]
    fn three_consecutive_failures_kill_a_worker() {
        let w = Worker::alive("h:1".into(), 0, 2, info());
        assert_eq!(w.health(), Health::Alive);
        assert_eq!(w.note_failure(), Health::Suspect);
        assert_eq!(w.note_failure(), Health::Suspect);
        assert_eq!(w.note_failure(), Health::Dead);
        // Death is sticky: a late success cannot resurrect it.
        w.note_success();
        assert!(w.is_dead());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let w = Worker::alive("h:1".into(), 0, 2, info());
        w.note_failure();
        w.note_failure();
        w.note_success();
        assert_eq!(w.health(), Health::Alive);
        // The streak restarts from zero.
        assert_eq!(w.note_failure(), Health::Suspect);
        assert_eq!(w.note_failure(), Health::Suspect);
        assert_eq!(w.note_failure(), Health::Dead);
    }

    #[test]
    fn pool_counts_the_living() {
        let pool = WorkerPool::new(vec![
            Worker::alive("a:1".into(), 0, 1, info()),
            Worker::dead("b:2".into(), 1),
        ]);
        assert_eq!(pool.alive_count(), 1);
        pool.workers[0].mark_dead();
        assert_eq!(pool.alive_count(), 0);
    }
}
