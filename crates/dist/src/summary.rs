//! The per-sweep dispatch summary: one row per worker plus the
//! coordinator-level robustness tallies, rendered through the
//! harness's [`Table`] so it matches every other experiment artifact
//! (aligned text or JSON).

use crate::dispatch::DispatchCounts;
use crate::worker::{Health, WorkerPool};
use dtm_harness::json::Json;
use dtm_harness::Table;
use std::sync::atomic::Ordering;

/// Everything the coordinator knows about how one sweep's dispatch
/// went, frozen at completion.
#[derive(Debug, Clone)]
pub struct DispatchSummary {
    /// One row per configured worker.
    pub workers: Vec<WorkerRow>,
    /// Scheduler-level tallies (retries, speculation, parking...).
    pub counts: DispatchCounts,
    /// Cells executed by the coordinator's own local threads.
    pub local_cells: u64,
    /// Cells executed by the post-scope local fallback drain.
    pub fallback_cells: u64,
    /// Cells executed remotely (fresh completions only).
    pub remote_cells: u64,
}

/// A worker's frozen dispatch statistics.
#[derive(Debug, Clone)]
pub struct WorkerRow {
    /// `host:port`.
    pub addr: String,
    /// Health at sweep completion.
    pub health: Health,
    /// Request lanes the worker was driven with.
    pub window: usize,
    /// Requests sent.
    pub dispatched: u64,
    /// Successful responses.
    pub completed: u64,
    /// Attempts requeued after failure.
    pub retried: u64,
    /// Client-side deadline expiries.
    pub timeouts: u64,
    /// Mean round-trip µs over completed requests.
    pub mean_rtt_us: u64,
    /// Server-side result sources: freshly simulated.
    pub src_sim: u64,
    /// Served from the server's in-memory memo.
    pub src_memo: u64,
    /// Served from the server's on-disk cache.
    pub src_disk: u64,
}

impl DispatchSummary {
    /// Freezes the pool's atomics and the scheduler's counts.
    pub fn collect(
        pool: &WorkerPool,
        counts: DispatchCounts,
        local_cells: u64,
        fallback_cells: u64,
    ) -> Self {
        let o = Ordering::Relaxed;
        let workers = pool
            .workers
            .iter()
            .map(|w| WorkerRow {
                addr: w.addr.clone(),
                health: w.health(),
                window: w.window,
                dispatched: w.stats.dispatched.load(o),
                completed: w.stats.completed.load(o),
                retried: w.stats.retried.load(o),
                timeouts: w.stats.timeouts.load(o),
                mean_rtt_us: w.stats.mean_rtt_us(),
                src_sim: w.stats.src_sim.load(o),
                src_memo: w.stats.src_memo.load(o),
                src_disk: w.stats.src_disk.load(o),
            })
            .collect::<Vec<_>>();
        let remote_cells = workers
            .iter()
            .map(|w| w.src_sim + w.src_memo + w.src_disk)
            .sum();
        DispatchSummary {
            workers,
            counts,
            local_cells,
            fallback_cells,
            remote_cells,
        }
    }

    /// The per-worker table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "worker",
            "health",
            "lanes",
            "sent",
            "done",
            "retry",
            "tmo",
            "rtt_ms",
            "sim/memo/disk",
        ])
        .with_title("Distributed dispatch summary");
        for w in &self.workers {
            t.row([
                w.addr.clone(),
                w.health.label().to_string(),
                w.window.to_string(),
                w.dispatched.to_string(),
                w.completed.to_string(),
                w.retried.to_string(),
                w.timeouts.to_string(),
                format!("{:.1}", w.mean_rtt_us as f64 / 1000.0),
                format!("{}/{}/{}", w.src_sim, w.src_memo, w.src_disk),
            ]);
        }
        t
    }

    /// Full text rendering: table plus the coordinator footer.
    pub fn render(&self) -> String {
        format!(
            "{}\ncells: {} remote, {} local, {} fallback | retries {} | speculated {} | \
             duplicates {} | parked: {} retry-exhausted, {} pool-drained, {} inexpressible",
            self.table().render(),
            self.remote_cells,
            self.local_cells,
            self.fallback_cells,
            self.counts.retries,
            self.counts.speculated,
            self.counts.duplicates,
            self.counts.retry_exhausted,
            self.counts.pool_drained,
            self.counts.inexpressible,
        )
    }

    /// Machine-readable form (the CI artifact).
    pub fn to_json(&self) -> Json {
        let n = |v: u64| Json::Num(v.to_string());
        Json::Obj(vec![
            ("workers".into(), self.table().to_json()),
            ("remote_cells".into(), n(self.remote_cells)),
            ("local_cells".into(), n(self.local_cells)),
            ("fallback_cells".into(), n(self.fallback_cells)),
            ("retries".into(), n(self.counts.retries)),
            ("speculated".into(), n(self.counts.speculated)),
            ("duplicates".into(), n(self.counts.duplicates)),
            ("retry_exhausted".into(), n(self.counts.retry_exhausted)),
            ("pool_drained".into(), n(self.counts.pool_drained)),
            ("inexpressible".into(), n(self.counts.inexpressible)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Worker;
    use dtm_serve::ServerInfo;

    #[test]
    fn summary_freezes_worker_stats_and_renders() {
        let info = ServerInfo {
            version: "0".into(),
            workers: 2,
            cache: true,
            base_sim: "s".into(),
            tracegen: "t".into(),
        };
        let pool = WorkerPool::new(vec![
            Worker::alive("a:1".into(), 0, 2, info),
            Worker::dead("b:2".into(), 1),
        ]);
        let o = Ordering::Relaxed;
        pool.workers[0].stats.dispatched.store(5, o);
        pool.workers[0].stats.completed.store(4, o);
        pool.workers[0].stats.rtt_us_sum.store(8000, o);
        pool.workers[0].stats.src_sim.store(3, o);
        pool.workers[0].stats.src_memo.store(1, o);
        let counts = DispatchCounts {
            retries: 1,
            duplicates: 2,
            ..DispatchCounts::default()
        };
        let s = DispatchSummary::collect(&pool, counts, 3, 1);
        assert_eq!(s.remote_cells, 4);
        assert_eq!(s.workers[0].mean_rtt_us, 2000);
        assert_eq!(s.workers[1].health, Health::Dead);
        let text = s.render();
        assert!(text.contains("a:1"), "worker address in table:\n{text}");
        assert!(text.contains("duplicates 2"), "footer tallies:\n{text}");
        let json = s.to_json().emit();
        assert!(json.contains("\"fallback_cells\":1"), "json: {json}");
    }
}
