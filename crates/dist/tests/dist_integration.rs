//! End-to-end distributed execution tests: real `dtm_worker`
//! processes on ephemeral ports, a worker killed mid-sweep, and the
//! headline invariant — a distributed sweep produces bit-identical
//! results, cache contents, and ledger rows (modulo timing fields) to
//! a single-process run.

use dtm_core::{DtmConfig, PolicySpec, SimConfig, SimError};
use dtm_dist::{DistConfig, RemoteBackend};
use dtm_harness::json::Json;
use dtm_harness::{ConfigVariant, Ledger, ResultCache, SweepRunner, SweepSpec};
use dtm_serve::{Server, ServerConfig};
use dtm_workloads::{TraceGenConfig, TraceLibrary, Workload};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dtm-dist-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

fn fast_lib() -> TraceLibrary {
    TraceLibrary::new(TraceGenConfig::fast_test())
}

/// The test grid: 12 cells on the fast-test configuration, the same
/// base the workers are started with (`--fast-traces`).
fn grid() -> SweepSpec {
    SweepSpec::new(vec![
        Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
        Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
        Workload::new("wc", ["art", "swim", "art", "swim"]),
        Workload::new("wd", ["gzip", "eon", "art", "mcf"]),
    ])
    .variant(ConfigVariant::new(
        "base",
        SimConfig::fast_test(),
        DtmConfig::default(),
    ))
    .policies([
        PolicySpec::baseline(),
        PolicySpec::best(),
        PolicySpec::new(
            dtm_core::ThrottleKind::Dvfs,
            dtm_core::Scope::Global,
            dtm_core::MigrationKind::None,
        ),
    ])
}

/// Spawns a real `dtm_worker` process on an ephemeral port and waits
/// for it to report the bound port via `--port-file`.
// Every caller kills and waits the returned child before returning.
#[allow(clippy::zombie_processes)]
fn spawn_worker(dir: &Path, tag: &str) -> (Child, String) {
    let port_file = dir.join(format!("port-{tag}"));
    let child = Command::new(env!("CARGO_BIN_EXE_dtm_worker"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2", "--fast-traces"])
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dtm_worker");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim();
            if !text.is_empty() {
                return (child, format!("127.0.0.1:{text}"));
            }
        }
        assert!(
            Instant::now() < deadline,
            "worker {tag} never reported a port"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// All files under a result-cache directory, relative path → bytes.
fn cache_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_file() {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&p).unwrap());
        }
    }
    out
}

/// Ledger rows with timing/placement fields stripped, sorted.
fn normalized_ledger(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("ledger exists");
    let mut rows: Vec<String> = text
        .lines()
        .map(|line| {
            let Json::Obj(fields) = Json::parse(line).expect("ledger row parses") else {
                panic!("ledger row is not an object: {line}");
            };
            let kept: Vec<(String, Json)> = fields
                .into_iter()
                .filter(|(k, _)| !matches!(k.as_str(), "ts" | "wall_s" | "queue_s" | "worker"))
                .collect();
            Json::Obj(kept).emit()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn distributed_sweep_is_bit_identical_and_survives_worker_death() {
    let dir = scratch("headline");

    // Local baseline into its own cache and ledger.
    let local_ledger = dir.join("local-ledger.jsonl");
    let local = SweepRunner::bare(fast_lib())
        .with_workers(4)
        .with_cache(Some(ResultCache::new(dir.join("local-cache"))))
        .with_ledger(Some(Ledger::open(&local_ledger)))
        .run(grid())
        .expect("local baseline");
    assert_eq!(local.executed(), 12);

    // Three real worker processes; one will be killed mid-sweep.
    let (victim, addr0) = spawn_worker(&dir, "w0");
    let (mut w1, addr1) = spawn_worker(&dir, "w1");
    let (mut w2, addr2) = spawn_worker(&dir, "w2");

    let mut cfg = DistConfig::new(vec![addr0, addr1, addr2], SimConfig::fast_test());
    cfg.deadline = Duration::from_secs(20);
    cfg.backoff = Duration::from_millis(100);
    let backend = Arc::new(RemoteBackend::new(cfg));

    // Kill the first worker shortly after dispatch begins.
    let killer = std::thread::spawn(move || {
        let mut victim = victim;
        std::thread::sleep(Duration::from_millis(400));
        let _ = victim.kill();
        let _ = victim.wait();
    });

    let dist_ledger = dir.join("dist-ledger.jsonl");
    let dist = SweepRunner::bare(fast_lib())
        .with_backend(backend.clone() as Arc<_>)
        .with_cache(Some(ResultCache::new(dir.join("dist-cache"))))
        .with_ledger(Some(Ledger::open(&dist_ledger)))
        .run(grid())
        .expect("distributed sweep completes despite a killed worker");
    killer.join().unwrap();
    let _ = w1.kill();
    let _ = w2.kill();
    let _ = w1.wait();
    let _ = w2.wait();

    // Every cell resolved exactly once, none served from cache.
    assert_eq!(dist.executed(), 12);
    assert_eq!(dist.cache_hits(), 0);

    // Bit-identical results, cell by cell.
    for (a, b) in local.outcomes().iter().zip(dist.outcomes()) {
        assert_eq!(a.index, b.index, "cell order preserved");
        assert_eq!(a.result, b.result, "cell {:?} diverged", a.index);
        assert_eq!(
            a.result.duty_cycle.to_bits(),
            b.result.duty_cycle.to_bits(),
            "bit-level divergence in cell {:?}",
            a.index
        );
        assert_eq!(a.key, b.key, "content address diverged");
    }

    // Bit-identical cache contents.
    let ca = cache_contents(&dir.join("local-cache"));
    let cb = cache_contents(&dir.join("dist-cache"));
    assert_eq!(
        ca.keys().collect::<Vec<_>>(),
        cb.keys().collect::<Vec<_>>(),
        "cache entry sets differ"
    );
    for (name, bytes) in &ca {
        assert_eq!(bytes, &cb[name], "cache entry {name} differs");
    }

    // Ledger parity modulo timing/placement fields.
    let la = normalized_ledger(&local_ledger);
    let lb = normalized_ledger(&dist_ledger);
    assert_eq!(
        la.len(),
        12,
        "one ledger row per cell, never double-appended"
    );
    assert_eq!(la, lb, "ledgers diverge beyond timing fields");

    // The dispatch summary saw the death: a killed worker plus
    // retried/re-dispatched work.
    let summary = backend.take_summary().expect("summary recorded");
    let completed: u64 = summary.workers.iter().map(|w| w.completed).sum();
    assert!(
        completed + summary.local_cells + summary.fallback_cells >= 12,
        "all cells accounted for: {summary:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_worker_configuration_is_refused() {
    // An in-process server with the fast-test base; the coordinator
    // expects the paper-default base. The handshake must refuse it —
    // silently accepting would break bit-identity.
    let handle = Server::spawn(ServerConfig::fast_test()).expect("server");
    let addr = handle.addr().to_string();

    let cfg = DistConfig::new(vec![addr], SimConfig::default());
    let backend = Arc::new(RemoteBackend::new(cfg));
    let err = SweepRunner::bare(fast_lib())
        .with_backend(backend as Arc<_>)
        .run(grid())
        .expect_err("mismatched worker must be refused");
    match err {
        SimError::BadInput(msg) => {
            assert!(
                msg.contains("refusing worker") && msg.contains("mismatch"),
                "got: {msg}"
            );
        }
        other => panic!("expected BadInput, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn dead_pool_falls_back_to_local_and_stays_identical() {
    // A port with nothing listening: the single worker is dead on
    // arrival, and the sweep must still complete — locally — with
    // results identical to a plain local run.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let spec = || {
        SweepSpec::new(vec![Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"])])
            .variant(ConfigVariant::new(
                "base",
                SimConfig::fast_test(),
                DtmConfig::default(),
            ))
            .policies([PolicySpec::baseline(), PolicySpec::best()])
    };
    let local = SweepRunner::bare(fast_lib())
        .run(spec())
        .expect("local run");

    let cfg = DistConfig::new(vec![format!("127.0.0.1:{port}")], SimConfig::fast_test());
    let backend = Arc::new(RemoteBackend::new(cfg));
    let dist = SweepRunner::bare(fast_lib())
        .with_backend(backend.clone() as Arc<_>)
        .run(spec())
        .expect("sweep completes with a dead fleet");
    assert_eq!(dist.executed(), 2);
    for (a, b) in local.outcomes().iter().zip(dist.outcomes()) {
        assert_eq!(a.result, b.result);
    }
    let summary = backend.take_summary().expect("summary");
    assert_eq!(
        summary.fallback_cells, 2,
        "cells ran via the local fallback"
    );
    assert_eq!(summary.remote_cells, 0);
}

#[test]
fn local_mixin_threads_share_the_sweep_with_the_fleet() {
    // One real worker plus two coordinator-local threads: whatever the
    // split ends up being, the merged results must match a local run
    // and every cell must resolve exactly once.
    let dir = scratch("mixin");
    let (mut w0, addr0) = spawn_worker(&dir, "w0");

    let local = SweepRunner::bare(fast_lib())
        .run(grid())
        .expect("local baseline");

    let mut cfg = DistConfig::new(vec![addr0], SimConfig::fast_test());
    cfg.local_threads = 2;
    cfg.deadline = Duration::from_secs(20);
    let backend = Arc::new(RemoteBackend::new(cfg));
    let dist = SweepRunner::bare(fast_lib())
        .with_backend(backend.clone() as Arc<_>)
        .run(grid())
        .expect("mixed sweep");
    let _ = w0.kill();
    let _ = w0.wait();

    assert_eq!(dist.executed(), 12);
    for (a, b) in local.outcomes().iter().zip(dist.outcomes()) {
        assert_eq!(a.result, b.result, "cell {:?} diverged", a.index);
    }
    let summary = backend.take_summary().expect("summary");
    let remote: u64 = summary.workers.iter().map(|w| w.completed).sum();
    assert!(
        remote + summary.local_cells + summary.fallback_cells >= 12,
        "split accounted for: {summary:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
