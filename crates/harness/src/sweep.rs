//! Declarative sweep grids: workloads × policies × named configuration
//! variants.
//!
//! Every table and figure in the paper is such a grid. A [`SweepSpec`]
//! names the axes; [`crate::SweepRunner`] executes the cross product in
//! parallel with content-addressed caching and returns a
//! [`SweepResults`] the reporting code indexes by (variant, policy,
//! workload).

use crate::cache::CacheStats;
use dtm_core::{DtmConfig, FaultConfig, PolicySpec, RunResult, SimConfig};
use dtm_workloads::{standard_workloads, Workload};
use std::time::Duration;

/// One named (SimConfig, DtmConfig, FaultConfig) combination — a point
/// on the sweep's configuration axis (threshold, core count, migration
/// interval, sensor noise, fault scenario, …).
#[derive(Debug, Clone)]
pub struct ConfigVariant {
    /// Display name, e.g. `base` or `threshold=100`.
    pub name: String,
    /// Simulation configuration for this variant.
    pub sim: SimConfig,
    /// DTM configuration for this variant.
    pub dtm: DtmConfig,
    /// Robustness configuration (fault scenario plus watchdog); the
    /// ideal default contributes nothing to the cell's content address,
    /// so fault-free variants keep their pre-fault cache entries.
    pub faults: FaultConfig,
}

impl ConfigVariant {
    /// Builds a named fault-free variant.
    pub fn new(name: impl Into<String>, sim: SimConfig, dtm: DtmConfig) -> Self {
        ConfigVariant {
            name: name.into(),
            sim,
            dtm,
            faults: FaultConfig::ideal(),
        }
    }

    /// Attaches a robustness configuration to the variant.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

/// A declarative experiment grid.
///
/// # Examples
///
/// ```
/// use dtm_core::PolicySpec;
/// use dtm_harness::SweepSpec;
///
/// // The full Table 8 grid: 12 workloads × 12 policies.
/// let spec = SweepSpec::standard(0.5).policies(PolicySpec::all());
/// assert_eq!(spec.cells().len(), 144);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    workloads: Vec<Workload>,
    policies: Vec<PolicySpec>,
    variants: Vec<ConfigVariant>,
}

/// Indexes of one cell within its [`SweepSpec`] (variant-major, then
/// policy, then workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellIndex {
    /// Index into [`SweepSpec::variants`].
    pub variant: usize,
    /// Index into [`SweepSpec::policies`].
    pub policy: usize,
    /// Index into [`SweepSpec::workloads`].
    pub workload: usize,
}

impl SweepSpec {
    /// An empty spec over explicit workloads.
    pub fn new(workloads: Vec<Workload>) -> Self {
        SweepSpec {
            workloads,
            policies: Vec::new(),
            variants: vec![ConfigVariant::new(
                "base",
                SimConfig::default(),
                DtmConfig::default(),
            )],
        }
    }

    /// The paper's standard grid: the 12 Table 4 workloads under the
    /// default configuration with the given run `duration` (s).
    pub fn standard(duration: f64) -> Self {
        let sim = SimConfig {
            duration,
            ..SimConfig::default()
        };
        SweepSpec::new(standard_workloads()).variant(ConfigVariant::new(
            "base",
            sim,
            DtmConfig::default(),
        ))
    }

    /// Adds policies to the policy axis.
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicySpec>) -> Self {
        for p in policies {
            if !self.policies.contains(&p) {
                self.policies.push(p);
            }
        }
        self
    }

    /// Replaces the configuration axis with `variant` (dropping the
    /// implicit `base` variant).
    pub fn variant(mut self, variant: ConfigVariant) -> Self {
        self.variants = vec![variant];
        self
    }

    /// Appends a variant to the configuration axis.
    pub fn add_variant(mut self, variant: ConfigVariant) -> Self {
        self.variants.push(variant);
        self
    }

    /// The workload axis.
    pub fn workload_axis(&self) -> &[Workload] {
        &self.workloads
    }

    /// The policy axis.
    pub fn policy_axis(&self) -> &[PolicySpec] {
        &self.policies
    }

    /// The configuration axis.
    pub fn variant_axis(&self) -> &[ConfigVariant] {
        &self.variants
    }

    /// All cells of the grid in canonical (variant, policy, workload)
    /// order.
    pub fn cells(&self) -> Vec<CellIndex> {
        let mut v =
            Vec::with_capacity(self.variants.len() * self.policies.len() * self.workloads.len());
        for variant in 0..self.variants.len() {
            for policy in 0..self.policies.len() {
                for workload in 0..self.workloads.len() {
                    v.push(CellIndex {
                        variant,
                        policy,
                        workload,
                    });
                }
            }
        }
        v
    }
}

/// The outcome of one executed (or cache-served) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Which cell of the spec this is.
    pub index: CellIndex,
    /// The cell's content address (hex spelling in the ledger/cache).
    pub key: String,
    /// The simulation metrics.
    pub result: RunResult,
    /// Whether the result came from the cache (no simulation executed).
    pub cached: bool,
    /// Wall-clock time spent producing the result (≈0 for hits).
    pub wall: Duration,
    /// Time the cell waited between sweep start and execution start
    /// (zero for cache hits, which are served immediately).
    pub queued: Duration,
    /// Worker thread that produced it (0 = the coordinating thread, for
    /// cache hits).
    pub worker: usize,
}

/// All cell outcomes of one sweep, indexable by the spec's axes.
#[derive(Debug)]
pub struct SweepResults {
    spec: SweepSpec,
    /// In `spec.cells()` order.
    outcomes: Vec<CellOutcome>,
    /// Result-cache traffic for this sweep, when a cache was attached.
    cache_stats: Option<CacheStats>,
}

impl SweepResults {
    pub(crate) fn new(spec: SweepSpec, outcomes: Vec<CellOutcome>) -> Self {
        debug_assert_eq!(spec.cells().len(), outcomes.len());
        SweepResults {
            spec,
            outcomes,
            cache_stats: None,
        }
    }

    pub(crate) fn with_cache_stats(mut self, stats: CacheStats) -> Self {
        self.cache_stats = Some(stats);
        self
    }

    /// Result-cache traffic counters (`None` when the sweep ran without
    /// a cache).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache_stats
    }

    /// The spec this sweep executed.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// All outcomes in canonical cell order.
    pub fn outcomes(&self) -> &[CellOutcome] {
        &self.outcomes
    }

    /// Number of cells actually simulated (cache misses).
    pub fn executed(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.cached).count()
    }

    /// Number of cells served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// Highest worker id that executed a cell, plus one — i.e. the
    /// number of distinct workers observed doing simulation work.
    pub fn workers_used(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.cached)
            .map(|o| o.worker)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    fn policy_index(&self, policy: PolicySpec) -> usize {
        self.spec
            .policies
            .iter()
            .position(|&p| p == policy)
            .unwrap_or_else(|| panic!("policy {policy} is not on the sweep's policy axis"))
    }

    fn variant_index(&self, name: &str) -> usize {
        self.spec
            .variants
            .iter()
            .position(|v| v.name == name)
            .unwrap_or_else(|| panic!("variant `{name}` is not on the sweep's config axis"))
    }

    fn flat(&self, index: CellIndex) -> &CellOutcome {
        let n_p = self.spec.policies.len();
        let n_w = self.spec.workloads.len();
        let i = (index.variant * n_p + index.policy) * n_w + index.workload;
        &self.outcomes[i]
    }

    /// The result of one cell of a single-variant sweep.
    ///
    /// # Panics
    ///
    /// Panics if the policy is not on the sweep's axes.
    pub fn get(&self, policy: PolicySpec, workload: usize) -> &RunResult {
        self.get_in("base", policy, workload)
    }

    /// The result of one cell, addressed by variant name.
    ///
    /// # Panics
    ///
    /// Panics if the variant or policy is not on the sweep's axes.
    pub fn get_in(&self, variant: &str, policy: PolicySpec, workload: usize) -> &RunResult {
        let index = CellIndex {
            variant: self.variant_index(variant),
            policy: self.policy_index(policy),
            workload,
        };
        &self.flat(index).result
    }

    /// All workloads' results under one policy (single-variant sweeps),
    /// in workload-axis order — the shape `mean_bips`-style reducers
    /// take.
    pub fn policy_runs(&self, policy: PolicySpec) -> Vec<RunResult> {
        self.policy_runs_in("base", policy)
    }

    /// All workloads' results under one policy within a named variant.
    pub fn policy_runs_in(&self, variant: &str, policy: PolicySpec) -> Vec<RunResult> {
        let vi = self.variant_index(variant);
        let pi = self.policy_index(policy);
        (0..self.spec.workloads.len())
            .map(|wi| {
                self.flat(CellIndex {
                    variant: vi,
                    policy: pi,
                    workload: wi,
                })
                .result
                .clone()
            })
            .collect()
    }

    /// Cache/parallelism summary for experiment footers: the classic
    /// one-liner, plus a cache-traffic line when a cache was attached.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} cells: {} simulated on {} worker(s), {} cache hit(s)",
            self.outcomes.len(),
            self.executed(),
            self.workers_used().max(usize::from(self.executed() > 0)),
            self.cache_hits()
        );
        if let Some(stats) = self.cache_stats {
            s.push('\n');
            s.push_str(&stats.summary_line());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_spec_matches_paper_axes() {
        let spec = SweepSpec::standard(0.5).policies(PolicySpec::all());
        assert_eq!(spec.workload_axis().len(), 12);
        assert_eq!(spec.policy_axis().len(), 12);
        assert_eq!(spec.variant_axis().len(), 1);
        assert_eq!(spec.cells().len(), 144);
    }

    #[test]
    fn duplicate_policies_collapse() {
        let spec = SweepSpec::standard(0.5)
            .policies([PolicySpec::baseline()])
            .policies([PolicySpec::baseline(), PolicySpec::best()]);
        assert_eq!(spec.policy_axis().len(), 2);
    }

    #[test]
    fn cells_enumerate_variant_major() {
        let spec = SweepSpec::standard(0.1)
            .policies([PolicySpec::baseline(), PolicySpec::best()])
            .add_variant(ConfigVariant::new(
                "hot",
                SimConfig::default(),
                DtmConfig::with_threshold(100.0),
            ));
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 12);
        assert_eq!(cells[0].variant, 0);
        assert_eq!(cells[0].policy, 0);
        assert_eq!(cells[0].workload, 0);
        assert_eq!(cells[12].policy, 1);
        assert_eq!(cells[24].variant, 1);
    }
}
