//! Sweep progress reporting: cells-done / total with a wall-clock ETA,
//! written to stderr so table output on stdout stays clean.

use std::time::{Duration, Instant};

/// Tracks and (optionally) prints sweep progress.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: usize,
    hits: usize,
    started: Instant,
    /// Cumulative simulation wall time across workers, for the ETA's
    /// per-cell estimate.
    sim_wall: Duration,
    executed: usize,
    enabled: bool,
    finished: bool,
}

impl Progress {
    /// A reporter over `total` cells; `enabled = false` makes every
    /// method a silent counter update (for tests and `--quiet` runs).
    pub fn new(total: usize, enabled: bool) -> Self {
        Progress {
            total,
            done: 0,
            hits: 0,
            started: Instant::now(),
            sim_wall: Duration::ZERO,
            executed: 0,
            enabled,
            finished: false,
        }
    }

    /// Records one cache-served cell.
    pub fn record_hit(&mut self) {
        self.done += 1;
        self.hits += 1;
        self.print();
    }

    /// Records one simulated cell that took `wall` of worker time.
    pub fn record_executed(&mut self, wall: Duration) {
        self.done += 1;
        self.executed += 1;
        self.sim_wall += wall;
        self.print();
    }

    /// Cells completed so far (hits + executed).
    pub fn done(&self) -> usize {
        self.done
    }

    /// Human-readable ETA for the remaining cells, from elapsed
    /// coordinator wall time per completed cell. `None` until at least
    /// one cell has finished (no basis for an estimate).
    pub fn eta(&self) -> Option<Duration> {
        if self.done == 0 || self.done >= self.total {
            return None;
        }
        let per_cell = self.started.elapsed().div_f64(self.done as f64);
        Some(per_cell.mul_f64((self.total - self.done) as f64))
    }

    fn print(&self) {
        if !self.enabled {
            return;
        }
        let eta = match self.eta() {
            Some(d) => format!(", eta {}", fmt_duration(d)),
            None => String::new(),
        };
        eprint!(
            "\r[sweep] {}/{} cells ({} cached){}   ",
            self.done, self.total, self.hits, eta
        );
    }

    /// Terminates the progress line with a final summary.
    pub fn finish(&mut self) {
        if self.finished || !self.enabled {
            self.finished = true;
            return;
        }
        self.finished = true;
        eprintln!(
            "\r[sweep] {}/{} cells done in {} ({} simulated, {} cached)   ",
            self.done,
            self.total,
            fmt_duration(self.started.elapsed()),
            self.executed,
            self.hits
        );
    }
}

/// `mm:ss` (or `hh:mm:ss` past an hour) spelling of a duration.
fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs();
    if s >= 3600 {
        format!("{}:{:02}:{:02}", s / 3600, (s % 3600) / 60, s % 60)
    } else {
        format!("{}:{:02}", s / 60, s % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hits_and_executions() {
        let mut p = Progress::new(4, false);
        p.record_hit();
        p.record_executed(Duration::from_millis(10));
        p.record_executed(Duration::from_millis(30));
        assert_eq!(p.done(), 3);
        assert!(p.eta().is_some(), "partial progress yields an estimate");
        p.record_hit();
        assert_eq!(p.done(), 4);
        assert!(p.eta().is_none(), "complete sweep has no remaining work");
        p.finish();
    }

    #[test]
    fn empty_sweep_has_no_eta() {
        let p = Progress::new(10, false);
        assert!(p.eta().is_none());
    }

    #[test]
    fn durations_format_as_clock_time() {
        assert_eq!(fmt_duration(Duration::from_secs(0)), "0:00");
        assert_eq!(fmt_duration(Duration::from_secs(75)), "1:15");
        assert_eq!(fmt_duration(Duration::from_secs(3_725)), "1:02:05");
    }
}
