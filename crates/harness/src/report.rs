//! Shared table rendering for the experiment binaries.
//!
//! Every reproduction prints an aligned-column text table (the shape the
//! paper's tables take); with `--json` the same table is dumped as a
//! machine-readable object instead. Centralizing the formatting here
//! replaces the per-binary `println!("{:<13} {:>11} …")` width juggling.

use crate::json::Json;

/// An aligned-column table: a header row plus data rows. The first
/// column is left-aligned (labels), the rest right-aligned (numbers),
/// with widths computed from the content.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Table {
            title: None,
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets a title line printed (and serialized) above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a data row. Short rows are padded with empty cells;
    /// long rows widen the table.
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0)
    }

    /// Renders the aligned text form (no trailing newline).
    pub fn render(&self) -> String {
        let ncols = self.column_count();
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("== {t} ==\n\n"));
        }
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}"));
                } else {
                    line.push_str(&format!("{cell:>width$}"));
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out.pop();
        out
    }

    /// The machine-readable form: `{"title", "headers", "rows"}` with
    /// every cell as the exact string the text form prints.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "title".into(),
                match &self.title {
                    Some(t) => Json::str(t),
                    None => Json::Null,
                },
            ),
            (
                "headers".into(),
                Json::Arr(self.headers.iter().map(Json::str).collect()),
            ),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Prints the table to stdout — as JSON when `json` is set, as
    /// aligned text otherwise.
    pub fn print(&self, json: bool) {
        if json {
            println!("{}", self.to_json().emit());
        } else {
            println!("{}", self.render());
        }
    }
}

/// `1.23x`-style ratio cell.
pub fn times(v: f64) -> String {
    format!("{v:.2}x")
}

/// `32.57%`-style percentage cell (input is a fraction).
pub fn pct(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

/// `+4.20%`-style signed percentage-delta cell (input already in %).
pub fn signed_pct(v: f64) -> String {
    format!("{v:+.2}%")
}

/// `7.25`-style two-decimal numeric cell.
pub fn num2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_to_widest_cell() {
        let mut t = Table::new(["policy", "BIPS", "relative"]);
        t.row(["Dist. stop-go", "4.53", "baseline"]);
        t.row(["Dist. DVFS", "11.36", "2.51x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Right-aligned numeric columns end at the same offset on every
        // line (modulo the trailing trim on the longest).
        let col_end = |line: &str, s: &str| line.find(s).map(|i| i + s.len());
        assert_eq!(col_end(lines[0], "BIPS"), col_end(lines[1], "4.53"));
        assert_eq!(col_end(lines[1], "4.53"), col_end(lines[2], "11.36"));
        // Label column is left-aligned.
        assert!(lines[1].starts_with("Dist. stop-go"));
        assert!(lines[2].starts_with("Dist. DVFS"));
    }

    #[test]
    fn title_and_padding_of_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-label"]);
        t.row(["x", "1", "extra"]);
        let text = t.with_title("Table 5: policy averages").render();
        assert!(text.starts_with("== Table 5: policy averages ==\n\n"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn json_form_mirrors_cells() {
        let mut t = Table::new(["w", "rel"]);
        t.row(["gzip".to_string(), times(1.234)]);
        let j = t.with_title("Fig 3").to_json();
        assert_eq!(j.field("title").unwrap().as_str().unwrap(), "Fig 3");
        let rows = j.field("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        let cells = rows[0].as_arr().unwrap();
        assert_eq!(cells[1].as_str().unwrap(), "1.23x");
    }

    #[test]
    fn cell_formatters() {
        assert_eq!(times(2.514), "2.51x");
        assert_eq!(pct(0.3257), "32.57%");
        assert_eq!(signed_pct(4.2), "+4.20%");
        assert_eq!(signed_pct(-1.0), "-1.00%");
        assert_eq!(num2(11.357), "11.36");
    }

    #[test]
    fn empty_table_is_just_headers() {
        let t = Table::new(["a", "bb"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render(), "a  bb");
    }
}
