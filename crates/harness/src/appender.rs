//! A shared, line-atomic JSONL appender.
//!
//! Every `results/ledger.jsonl` row — whether it comes from a sweep in
//! this process, a second sweep in another process, or the simulation
//! server — goes through a [`LineAppender`]: the file is opened in
//! `O_APPEND` mode and each row is written **with a single `write`
//! call** (one buffer holding the row plus its newline). On POSIX
//! filesystems an `O_APPEND` write is atomic with respect to other
//! appenders, so interleaved writers can interleave *rows* but never
//! *bytes within a row* — a reader always sees whole JSONL lines.
//!
//! Clones share one file handle behind an `Arc`, so one opened ledger
//! can be handed to many threads (sweep coordinator, server workers)
//! without reopening the file.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A cloneable handle appending whole lines to one file.
///
/// Open failures are tolerated (the appender goes inert) — matching
/// the ledger's observability-not-correctness discipline.
#[derive(Debug, Clone)]
pub struct LineAppender {
    path: PathBuf,
    file: Option<Arc<Mutex<std::fs::File>>>,
}

impl LineAppender {
    /// Opens (creating parent directories as needed) an appender at
    /// `path`. The file is opened once in append mode; failures leave
    /// the appender inert.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()
            .map(|f| Arc::new(Mutex::new(f)));
        LineAppender { path, file }
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the file opened (an inert appender drops every row).
    pub fn is_open(&self) -> bool {
        self.file.is_some()
    }

    /// Appends `line` (which must not itself contain `\n`) plus a
    /// newline in one `write` call. I/O errors are swallowed.
    pub fn append_line(&self, line: &str) {
        debug_assert!(!line.contains('\n'), "a row must be a single line");
        let Some(file) = &self.file else {
            return;
        };
        // One buffer, one write_all: with O_APPEND the kernel applies
        // the whole row at the end of the file atomically with respect
        // to other appenders (same process or not).
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut f = file.lock().unwrap();
        let _ = f.write_all(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dtm-appender-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d.join("rows.jsonl")
    }

    #[test]
    fn interleaved_writers_produce_only_whole_rows() {
        let path = tmpfile("interleave");
        // Several appenders over the same file — as a sweep and a
        // server running simultaneously would hold — plus clones
        // within each, hammered from many threads.
        let appenders: Vec<LineAppender> = (0..4).map(|_| LineAppender::open(&path)).collect();
        const ROWS_PER_WRITER: usize = 200;
        std::thread::scope(|s| {
            for (w, a) in appenders.iter().enumerate() {
                let a = a.clone();
                s.spawn(move || {
                    for i in 0..ROWS_PER_WRITER {
                        // Rows long enough that a torn write would be
                        // visible, with writer-identifying content.
                        let row = Json::Obj(vec![
                            ("writer".into(), Json::usize(w)),
                            ("row".into(), Json::usize(i)),
                            ("pad".into(), Json::str("x".repeat(256 + w * 17))),
                        ]);
                        a.append_line(&row.emit());
                    }
                });
            }
        });

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4 * ROWS_PER_WRITER);
        let mut seen = vec![0usize; 4];
        for line in lines {
            let v = Json::parse(line).expect("every row is whole JSON");
            let w = v.field("writer").unwrap().as_usize().unwrap();
            let pad = v.field("pad").unwrap().as_str().unwrap();
            assert_eq!(pad.len(), 256 + w * 17, "payload tied to its writer");
            seen[w] += 1;
        }
        assert_eq!(seen, vec![ROWS_PER_WRITER; 4], "no rows lost");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn unopenable_appender_is_inert() {
        // A directory path can't be opened as a file.
        let a = LineAppender::open(std::env::temp_dir());
        assert!(!a.is_open());
        a.append_line("{\"dropped\":true}");
    }
}
