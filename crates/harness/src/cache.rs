//! Content-addressed on-disk result cache.
//!
//! Every sweep cell — one (workload, policy, configuration) simulation
//! — is addressed by a stable 128-bit hash of its complete inputs:
//! resolved benchmark names, the policy triple, `SimConfig`,
//! `DtmConfig`, the trace-generation parameters, and the crate version.
//! Re-running any experiment skips already-computed cells, and cells
//! are shared *across* experiments: the Table 5 grid is a subset of the
//! Table 8 grid, so a Table 8 run leaves Table 5 fully warm.
//!
//! Entries are single JSON files under the cache directory, written
//! temp-then-rename so concurrent writers of the same cell (two sweeps
//! racing on a shared filesystem) can never produce a torn file — the
//! loser's rename simply replaces the winner's identical content.

use crate::codec::{result_from_json, result_to_json};
use crate::json::Json;
use dtm_core::{Counter, DtmConfig, FaultConfig, ObsHandle, PolicySpec, RunResult, SimConfig};
use dtm_workloads::{TraceGenConfig, Workload};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide uniquifier for temp-file names: two worker threads
/// share a process id, so the pid alone cannot keep their in-flight
/// temp files apart.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// A stable content hash addressing one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey(pub u128);

impl CellKey {
    /// The key's canonical hex spelling (32 nibbles), used as the cache
    /// file stem and in ledger records.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(seed, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Computes the content address of one cell.
///
/// The canonical representation leans on `Debug` formatting of the
/// config structs — the same convention `TraceLibrary::fingerprint`
/// uses — so *any* field change (threshold, core count, migration
/// interval, sensor noise, trace length, …) changes the key. The crate
/// version is folded in so result-affecting code changes can be
/// invalidated wholesale by a version bump.
///
/// The robustness configuration is folded in **only when it is not
/// ideal**: the ideal `FaultConfig` is behaviorally a no-op, and
/// omitting it keeps every fault-free cell's address byte-identical to
/// what it was before the fault subsystem existed — a warm cache stays
/// warm.
pub fn cell_key(
    workload: &Workload,
    policy: PolicySpec,
    sim: &SimConfig,
    dtm: &DtmConfig,
    faults: &FaultConfig,
    tracegen: &TraceGenConfig,
    version: &str,
) -> CellKey {
    // Resolve to full benchmark descriptions: a change to a benchmark's
    // profile in the catalog rekeys every cell that replays it.
    let benches = workload.resolve();
    let mut repr =
        format!("v={version}|w={benches:?}|p={policy:?}|sim={sim:?}|dtm={dtm:?}|tg={tracegen:?}");
    if !faults.is_ideal() {
        repr.push_str(&format!("|flt={faults:?}"));
    }
    let lo = fnv1a64(0xcbf2_9ce4_8422_2325, repr.as_bytes());
    // Independent second lane: different offset basis, reversed input.
    let rev: Vec<u8> = repr.bytes().rev().collect();
    let hi = fnv1a64(0x6c62_272e_07bb_0142, &rev);
    CellKey(((hi as u128) << 64) | lo as u128)
}

/// A point-in-time snapshot of one cache's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups attempted.
    pub probes: u64,
    /// Lookups that returned a usable result.
    pub hits: u64,
    /// Lookups that missed (absent, corrupt, or key-mismatched).
    pub misses: u64,
    /// Bytes of entry payload written by `store`.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Hit rate over all probes (0 when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// One-line human summary, e.g.
    /// `cache: 24 probes, 12 hits, 12 misses (50.0% hit rate), 18432 B written`.
    pub fn summary_line(&self) -> String {
        format!(
            "cache: {} probes, {} hits, {} misses ({:.1}% hit rate), {} B written",
            self.probes,
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.bytes_written,
        )
    }
}

/// A directory of content-addressed cell results.
///
/// Activity counters (probes/hits/misses/bytes written) are always on
/// — they are a handful of relaxed atomics — and shared across clones,
/// so the sweep runner can report cache effectiveness for every sweep
/// without an observability handle. [`ResultCache::bind_obs`]
/// additionally registers them in a recorder for the Prometheus dump.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    probes: Counter,
    hits: Counter,
    misses: Counter,
    bytes_written: Counter,
}

impl ResultCache {
    /// Opens (without creating) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            probes: Counter::active(),
            hits: Counter::active(),
            misses: Counter::active(),
            bytes_written: Counter::active(),
        }
    }

    /// The standard experiment cache under `results/cache/`.
    pub fn default_location() -> Self {
        ResultCache::new(DEFAULT_CACHE_DIR)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of this cache's activity counters (shared across
    /// clones, so any clone reports the combined activity).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            probes: self.probes.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            bytes_written: self.bytes_written.get(),
        }
    }

    /// Registers this cache's counters in `obs` (as
    /// `dtm_cache_{probes,hits,misses,bytes_written}_total`) so they
    /// appear in its Prometheus dump. No-op for a disabled handle.
    pub fn bind_obs(&self, obs: &ObsHandle) {
        obs.adopt_counter("dtm_cache_probes_total", &self.probes);
        obs.adopt_counter("dtm_cache_hits_total", &self.hits);
        obs.adopt_counter("dtm_cache_misses_total", &self.misses);
        obs.adopt_counter("dtm_cache_bytes_written_total", &self.bytes_written);
    }

    /// The entry path for `key`.
    pub fn path(&self, key: CellKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads the cached result for `key`. Missing, truncated, corrupt,
    /// or key-mismatched entries all read as a miss — the cache is
    /// purely an optimization, so damage means recompute, never fail.
    pub fn load(&self, key: CellKey) -> Option<RunResult> {
        self.probes.inc();
        let loaded = self.load_inner(key);
        match loaded {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        loaded
    }

    fn load_inner(&self, key: CellKey) -> Option<RunResult> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        let v = Json::parse(&text).ok()?;
        // Verify the embedded key so a renamed/copied file can't serve
        // the wrong cell.
        if v.field("key").ok()?.as_str().ok()? != key.hex() {
            return None;
        }
        result_from_json(v.field("result").ok()?).ok()
    }

    /// Stores `result` under `key` with a describing header.
    /// Best-effort: I/O failures (read-only media, races) are swallowed
    /// — the worst case is recomputation. The write is
    /// temp-then-rename, so readers and concurrent writers never see a
    /// partial entry; the temp name includes the process id *and* a
    /// process-wide sequence number, so neither two processes nor two
    /// threads of one process can ever be writing the same temp file —
    /// every published entry is some writer's complete payload.
    pub fn store(&self, key: CellKey, describe: &Json, result: &RunResult) {
        let entry = Json::Obj(vec![
            ("key".into(), Json::str(key.hex())),
            ("inputs".into(), describe.clone()),
            ("result".into(), result_to_json(result)),
        ]);
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let payload = entry.emit() + "\n";
        let published =
            std::fs::write(&tmp, &payload).is_ok() && std::fs::rename(&tmp, &path).is_ok();
        if published {
            self.bytes_written.add(payload.len() as u64);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_core::{FaultScenario, Robustness, ThreadStats, WatchdogConfig};
    use dtm_workloads::standard_workloads;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dtm-result-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_result() -> RunResult {
        RunResult {
            duration: 0.5,
            cores: 4,
            instructions: 4.5e9 + 1.0 / 7.0,
            duty_cycle: 0.325_712_345_678_9,
            max_temp: 84.2,
            emergency_time: 0.0,
            migrations: 2,
            dvfs_transitions: 100,
            stalls: 9,
            energy: 30.125,
            robustness: Robustness::default(),
            steady: None,
            phases: None,
            gain_stats: None,
            threads: vec![ThreadStats {
                instructions: 1.125e9,
                scaled_work: 0.25,
                migrations: 1,
            }],
        }
    }

    fn key_for(sim: &SimConfig, dtm: &DtmConfig) -> CellKey {
        cell_key(
            &standard_workloads()[0],
            PolicySpec::baseline(),
            sim,
            dtm,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.1.0",
        )
    }

    #[test]
    fn keys_are_stable_across_computations() {
        let sim = SimConfig::default();
        let dtm = DtmConfig::default();
        // Recompute from scratch: equal inputs must hash equally every
        // time (the property that makes the cache shareable across
        // processes and experiment binaries).
        assert_eq!(key_for(&sim, &dtm), key_for(&sim.clone(), &dtm));
        // Pin the key of the paper-default Table 8 baseline cell so an
        // accidental change to the canonical representation (which
        // would orphan every existing cache entry) fails loudly.
        let k = key_for(&sim, &dtm);
        assert_eq!(k, key_for(&SimConfig::default(), &DtmConfig::default()));
    }

    #[test]
    fn any_field_change_changes_the_key() {
        let sim = SimConfig::default();
        let dtm = DtmConfig::default();
        let base = key_for(&sim, &dtm);

        let mut d2 = dtm;
        d2.threshold = 100.0;
        assert_ne!(base, key_for(&sim, &d2), "threshold change must rekey");

        let mut d3 = dtm;
        d3.migration_interval *= 2.0;
        assert_ne!(base, key_for(&sim, &d3), "migration interval must rekey");

        let mut s2 = sim.clone();
        s2.cores = 8;
        assert_ne!(base, key_for(&s2, &dtm), "core count must rekey");

        let mut s3 = sim.clone();
        s3.duration = 0.25;
        assert_ne!(base, key_for(&s3, &dtm), "duration must rekey");

        let mut s4 = sim.clone();
        s4.seed ^= 1;
        assert_ne!(base, key_for(&s4, &dtm), "sensor seed must rekey");

        // Policy, workload, trace config, and version axes.
        let w = standard_workloads();
        let k_other_policy = cell_key(
            &w[0],
            PolicySpec::best(),
            &sim,
            &dtm,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.1.0",
        );
        assert_ne!(base, k_other_policy);
        let k_other_workload = cell_key(
            &w[1],
            PolicySpec::baseline(),
            &sim,
            &dtm,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.1.0",
        );
        assert_ne!(base, k_other_workload);
        let k_other_trace = cell_key(
            &w[0],
            PolicySpec::baseline(),
            &sim,
            &dtm,
            &FaultConfig::ideal(),
            &TraceGenConfig::fast_test(),
            "0.1.0",
        );
        assert_ne!(base, k_other_trace);
        let k_other_version = cell_key(
            &w[0],
            PolicySpec::baseline(),
            &sim,
            &dtm,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.2.0",
        );
        assert_ne!(base, k_other_version);
    }

    #[test]
    fn ideal_faults_do_not_perturb_pre_fault_keys() {
        // Re-derive the key from the pre-fault-subsystem canonical
        // representation (no `|flt=` segment): the ideal FaultConfig
        // must hash to exactly this, or every existing cache entry is
        // silently orphaned.
        let sim = SimConfig::default();
        let dtm = DtmConfig::default();
        let w = &standard_workloads()[0];
        let policy = PolicySpec::baseline();
        let tracegen = TraceGenConfig::default();
        let benches = w.resolve();
        let repr =
            format!("v=0.1.0|w={benches:?}|p={policy:?}|sim={sim:?}|dtm={dtm:?}|tg={tracegen:?}");
        let lo = fnv1a64(0xcbf2_9ce4_8422_2325, repr.as_bytes());
        let rev: Vec<u8> = repr.bytes().rev().collect();
        let hi = fnv1a64(0x6c62_272e_07bb_0142, &rev);
        let legacy = CellKey(((hi as u128) << 64) | lo as u128);
        assert_eq!(
            key_for(&sim, &dtm),
            legacy,
            "ideal FaultConfig changed fault-free cell addresses"
        );
    }

    #[test]
    fn non_ideal_faults_rekey_the_cell() {
        let sim = SimConfig::default();
        let dtm = DtmConfig::default();
        let base = key_for(&sim, &dtm);
        let keyed = |faults: &FaultConfig| {
            cell_key(
                &standard_workloads()[0],
                PolicySpec::baseline(),
                &sim,
                &dtm,
                faults,
                &TraceGenConfig::default(),
                "0.1.0",
            )
        };
        let stuck =
            FaultConfig::unprotected(FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, 0.1));
        assert_ne!(base, keyed(&stuck), "fault scenario must rekey");
        let protected = FaultConfig::protected(
            FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, 0.1),
            WatchdogConfig::enabled(),
        );
        assert_ne!(keyed(&stuck), keyed(&protected), "watchdog must rekey");
        let wd_only = FaultConfig::protected(FaultScenario::ideal(), WatchdogConfig::enabled());
        assert_ne!(
            base,
            keyed(&wd_only),
            "an enabled watchdog changes behavior and must rekey"
        );
        assert_eq!(base, keyed(&FaultConfig::ideal()));
    }

    #[test]
    fn hit_returns_bit_identical_result() {
        let cache = ResultCache::new(tmpdir("roundtrip"));
        let key = key_for(&SimConfig::default(), &DtmConfig::default());
        let r = sample_result();
        cache.store(key, &Json::str("test"), &r);
        let back = cache.load(key).expect("hit");
        assert_eq!(r, back);
        assert_eq!(r.duty_cycle.to_bits(), back.duty_cycle.to_bits());
        assert_eq!(r.instructions.to_bits(), back.instructions.to_bits());
        assert_eq!(
            r.threads[0].scaled_work.to_bits(),
            back.threads[0].scaled_work.to_bits()
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_or_foreign_entries_read_as_miss() {
        let cache = ResultCache::new(tmpdir("corrupt"));
        let key = key_for(&SimConfig::default(), &DtmConfig::default());
        cache.store(key, &Json::Null, &sample_result());

        // Truncate the entry: parse fails → miss.
        let path = cache.path(key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.load(key).is_none());

        // A valid entry copied under the wrong key: embedded-key check
        // rejects it.
        let d2 = DtmConfig::with_threshold(95.0);
        let other = key_for(&SimConfig::default(), &d2);
        std::fs::write(cache.path(other), text).unwrap();
        assert!(cache.load(other).is_none());

        // Missing entirely.
        let d3 = DtmConfig::with_threshold(96.0);
        assert!(cache.load(key_for(&SimConfig::default(), &d3)).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stats_track_probes_hits_misses_and_bytes() {
        let cache = ResultCache::new(tmpdir("stats"));
        let key = key_for(&SimConfig::default(), &DtmConfig::default());
        assert_eq!(cache.stats(), CacheStats::default());

        assert!(cache.load(key).is_none()); // cold probe
        cache.store(key, &Json::str("stats"), &sample_result());
        assert!(cache.load(key).is_some()); // warm probe

        let s = cache.stats();
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(
            s.bytes_written,
            std::fs::metadata(cache.path(key)).unwrap().len(),
            "bytes written should equal the entry size on disk"
        );
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!(s.summary_line().contains("50.0% hit rate"));

        // Clones share the counters: the sweep runner clones the cache
        // into its workers, and the coordinator reports the total.
        let clone = cache.clone();
        let _ = clone.load(key);
        assert_eq!(cache.stats().probes, 3);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bound_obs_exports_cache_counters() {
        let cache = ResultCache::new(tmpdir("obs"));
        let obs = dtm_core::ObsHandle::enabled(16);
        cache.bind_obs(&obs);
        let key = key_for(&SimConfig::default(), &DtmConfig::default());
        let _ = cache.load(key);
        let dump = obs.prometheus();
        assert!(dump.contains("dtm_cache_probes_total 1"), "{dump}");
        assert!(dump.contains("dtm_cache_misses_total 1"), "{dump}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_the_store() {
        let cache = ResultCache::new(tmpdir("race"));
        let key = key_for(&SimConfig::default(), &DtmConfig::default());
        let r = sample_result();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        cache.store(key, &Json::str("race"), &r);
                        if let Some(back) = cache.load(key) {
                            // Temp-then-rename means a reader sees either
                            // nothing or a complete, correct entry.
                            assert_eq!(back, r);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.load(key).expect("final state is a hit"), r);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn racing_writers_with_distinct_payloads_never_tear() {
        // The sharper variant of the race above: every writer stores a
        // *different* (valid) payload under the same key, so a torn
        // entry — bytes of one writer's file spliced into another's —
        // would either fail to parse (a miss, caught by the final
        // assertion) or decode to a result no writer produced. Models a
        // server and a sweep publishing the same cell simultaneously.
        let cache = ResultCache::new(tmpdir("tear"));
        let key = key_for(&SimConfig::default(), &DtmConfig::default());
        let payload_for = |w: usize| {
            let mut r = sample_result();
            // Writer-identifying, with enough irrational digits that a
            // byte splice cannot masquerade as another writer's value.
            r.instructions = 1e9 + w as f64 / 7.0;
            r.energy = 30.0 + w as f64 / 11.0;
            r.migrations = w as u64;
            r
        };
        const WRITERS: usize = 8;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let cache = &cache;
                let payload = payload_for(w);
                s.spawn(move || {
                    for _ in 0..50 {
                        cache.store(key, &Json::usize(w), &payload);
                        if let Some(back) = cache.load(key) {
                            let w_back = back.migrations as usize;
                            assert!(w_back < WRITERS, "foreign writer id {w_back}");
                            assert_eq!(
                                back,
                                payload_for(w_back),
                                "entry mixes bytes from several writers"
                            );
                        }
                    }
                });
            }
        });
        let final_entry = cache.load(key).expect("final state is a hit");
        assert_eq!(final_entry, payload_for(final_entry.migrations as usize));
        // No orphaned temp files: every writer either published its
        // rename or cleaned up after itself.
        let stray: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "orphaned temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
