//! Minimal shared argument parsing for the experiment binaries.
//!
//! All reproductions accept the same knobs:
//!
//! ```text
//! exp_table8 [DURATION] [--workers N | -j N] [--json] [--no-cache]
//! ```
//!
//! where `DURATION` is seconds of simulated silicon time (default: the
//! study's 0.5 s). `--workers` overrides the pool size (as does the
//! `DTM_WORKERS` environment variable; the flag wins), `--json` switches
//! table output to machine-readable JSON, and `--no-cache` forces every
//! cell to re-simulate.

/// Parsed sweep-binary arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Simulated seconds per run.
    pub duration: f64,
    /// Worker-pool size override (`--workers` / `-j`).
    pub workers: Option<usize>,
    /// Emit tables as JSON instead of aligned text.
    pub json: bool,
    /// Bypass the result cache (always simulate).
    pub no_cache: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            duration: 0.5,
            workers: None,
            json: false,
            no_cache: false,
        }
    }
}

impl SweepArgs {
    /// Parses from the process's argument list.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (exposed for tests).
    ///
    /// Unknown flags abort with a usage message; an unparsable value
    /// for a known flag does too.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = SweepArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--no-cache" => out.no_cache = true,
                "--workers" | "-j" => {
                    let v = args.next().and_then(|s| s.parse::<usize>().ok());
                    match v {
                        Some(n) => out.workers = Some(n.max(1)),
                        None => usage(&format!("{a} requires a positive integer")),
                    }
                }
                "--help" | "-h" => usage(""),
                other => match other.parse::<f64>() {
                    Ok(d) if d > 0.0 => out.duration = d,
                    _ => usage(&format!("unrecognized argument `{other}`")),
                },
            }
        }
        out
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: <exp> [DURATION_SECONDS] [--workers N | -j N] [--json] [--no-cache]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> SweepArgs {
        SweepArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_the_study() {
        let a = parse(&[]);
        assert_eq!(a, SweepArgs::default());
        assert!((a.duration - 0.5).abs() < 1e-12);
    }

    #[test]
    fn positional_duration_and_flags() {
        let a = parse(&["0.1", "--workers", "3", "--json"]);
        assert!((a.duration - 0.1).abs() < 1e-12);
        assert_eq!(a.workers, Some(3));
        assert!(a.json);
        assert!(!a.no_cache);
    }

    #[test]
    fn short_worker_flag_and_no_cache() {
        let a = parse(&["-j", "8", "--no-cache"]);
        assert_eq!(a.workers, Some(8));
        assert!(a.no_cache);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(parse(&["--workers", "0"]).workers, Some(1));
    }
}
