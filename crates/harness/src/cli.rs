//! Minimal shared argument parsing for the experiment binaries.
//!
//! All reproductions accept the same knobs:
//!
//! ```text
//! exp_table8 [DURATION] [--workers N | -j N] [--json] [--no-cache]
//! ```
//!
//! where `DURATION` is seconds of simulated silicon time (default: the
//! study's 0.5 s). `--workers` overrides the pool size (as does the
//! `DTM_WORKERS` environment variable; the flag wins), `--json` switches
//! table output to machine-readable JSON, and `--no-cache` forces every
//! cell to re-simulate.

/// Parsed sweep-binary arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Simulated seconds per run.
    pub duration: f64,
    /// Worker-pool size override (`--workers` / `-j`).
    pub workers: Option<usize>,
    /// Lockstep lane-batch width override (`--lanes N`; `--lanes 1`
    /// disables batching entirely). Falls back to `DTM_LANES`, then the
    /// default width.
    pub lanes: Option<usize>,
    /// Emit tables as JSON instead of aligned text.
    pub json: bool,
    /// Bypass the result cache (always simulate).
    pub no_cache: bool,
    /// Remote `dtm-serve` worker addresses (`--dist host:port,...`).
    /// When set, binaries that support it run the sweep through the
    /// distributed backend instead of the local pool.
    pub dist_workers: Vec<String>,
    /// Local threads to mix in alongside remote workers
    /// (`--dist-local N`; default 0 = pure remote).
    pub dist_local: usize,
    /// Per-cell remote deadline in seconds (`--dist-deadline S`).
    pub dist_deadline: f64,
    /// Remote retry budget per cell before falling back to local
    /// execution (`--dist-retries N`).
    pub dist_retries: u32,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            duration: 0.5,
            workers: None,
            lanes: None,
            json: false,
            no_cache: false,
            dist_workers: Vec::new(),
            dist_local: 0,
            dist_deadline: 30.0,
            dist_retries: 2,
        }
    }
}

impl SweepArgs {
    /// Parses from the process's argument list.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (exposed for tests).
    ///
    /// Unknown flags abort with a usage message; an unparsable value
    /// for a known flag does too.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = SweepArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => out.json = true,
                "--no-cache" => out.no_cache = true,
                "--workers" | "-j" => {
                    let v = args.next().and_then(|s| s.parse::<usize>().ok());
                    match v {
                        Some(n) => out.workers = Some(n.max(1)),
                        None => usage(&format!("{a} requires a positive integer")),
                    }
                }
                "--lanes" => {
                    let v = args.next().and_then(|s| s.parse::<usize>().ok());
                    match v {
                        Some(n) => out.lanes = Some(n.max(1)),
                        None => usage("--lanes requires a positive integer"),
                    }
                }
                "--dist" => match args.next() {
                    Some(list) => {
                        for entry in list.split(',') {
                            let entry = entry.trim();
                            if entry.is_empty() {
                                usage(&format!("--dist list `{list}` contains an empty entry"));
                            }
                            if out.dist_workers.iter().any(|w| w == entry) {
                                usage(&format!(
                                    "--dist worker `{entry}` listed more than once; \
                                     a duplicate host would be dispatched to twice"
                                ));
                            }
                            out.dist_workers.push(entry.to_string());
                        }
                    }
                    None => usage("--dist requires host:port[,host:port...]"),
                },
                "--dist-local" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => out.dist_local = n,
                    None => usage("--dist-local requires an integer"),
                },
                "--dist-deadline" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                    Some(d) if d > 0.0 => out.dist_deadline = d,
                    _ => usage("--dist-deadline requires positive seconds"),
                },
                "--dist-retries" => match args.next().and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) => out.dist_retries = n,
                    None => usage("--dist-retries requires an integer"),
                },
                "--help" | "-h" => usage(""),
                other => match other.parse::<f64>() {
                    Ok(d) if d > 0.0 => out.duration = d,
                    _ => usage(&format!("unrecognized argument `{other}`")),
                },
            }
        }
        out
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: <exp> [DURATION_SECONDS] [--workers N | -j N] [--lanes N] [--json] [--no-cache]\n\
         \x20          [--dist host:port,...] [--dist-local N] [--dist-deadline S] [--dist-retries N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> SweepArgs {
        SweepArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_the_study() {
        let a = parse(&[]);
        assert_eq!(a, SweepArgs::default());
        assert!((a.duration - 0.5).abs() < 1e-12);
    }

    #[test]
    fn positional_duration_and_flags() {
        let a = parse(&["0.1", "--workers", "3", "--json"]);
        assert!((a.duration - 0.1).abs() < 1e-12);
        assert_eq!(a.workers, Some(3));
        assert!(a.json);
        assert!(!a.no_cache);
    }

    #[test]
    fn short_worker_flag_and_no_cache() {
        let a = parse(&["-j", "8", "--no-cache"]);
        assert_eq!(a.workers, Some(8));
        assert!(a.no_cache);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(parse(&["--workers", "0"]).workers, Some(1));
    }

    #[test]
    fn lanes_flag_parses_and_clamps() {
        assert_eq!(parse(&["--lanes", "8"]).lanes, Some(8));
        assert_eq!(
            parse(&["--lanes", "0"]).lanes,
            Some(1),
            "zero clamps to one"
        );
        assert_eq!(parse(&[]).lanes, None);
    }

    #[test]
    fn dist_flags_parse() {
        let a = parse(&[
            "--dist",
            "10.0.0.1:4000,10.0.0.2:4000",
            "--dist-local",
            "2",
            "--dist-deadline",
            "12.5",
            "--dist-retries",
            "5",
        ]);
        assert_eq!(a.dist_workers, vec!["10.0.0.1:4000", "10.0.0.2:4000"]);
        assert_eq!(a.dist_local, 2);
        assert!((a.dist_deadline - 12.5).abs() < 1e-12);
        assert_eq!(a.dist_retries, 5);
        // Repeated --dist accumulates.
        let b = parse(&["--dist", "a:1", "--dist", "b:2"]);
        assert_eq!(b.dist_workers, vec!["a:1", "b:2"]);
        // Default is a purely local run.
        assert!(parse(&[]).dist_workers.is_empty());
    }
}
