//! The structured run ledger: one JSON record per executed or
//! cache-served cell, appended to `results/ledger.jsonl`.
//!
//! Schema (one object per line; field order as written):
//!
//! ```text
//! {
//!   "ts":        unix seconds when the record was appended,
//!   "key":       32-hex-digit content address of the cell's inputs,
//!   "workload":  hyphenated benchmark names, e.g. "gzip-twolf-ammp-lucas",
//!   "mix":       suite mix label, e.g. "IIFF",
//!   "policy":    policy display name, e.g. "Dist. DVFS",
//!   "variant":   config-variant name, e.g. "base" or "threshold=100",
//!   "cached":    true if served from the result cache (no simulation),
//!   "wall_s":    wall-clock seconds spent producing the result,
//!   "queue_s":   seconds the cell waited before execution started (0 for hits),
//!   "worker":    worker thread id (0 for cache hits),
//!   "result":    the full RunResult (see dtm-harness::codec)
//! }
//! ```
//!
//! The file is append-only history: every sweep adds records, cached or
//! not, so the ledger doubles as a provenance trail for any number that
//! ends up in a table.
//!
//! All appends route through one shared [`LineAppender`]: each row is a
//! single `O_APPEND` `write`, so a sweep and a simulation server
//! appending to the same ledger concurrently can interleave rows but
//! never tear one (see `crate::appender`).

use crate::appender::LineAppender;
use crate::codec::result_to_json;
use crate::json::Json;
use crate::sweep::CellOutcome;
use crate::SweepSpec;
use std::path::{Path, PathBuf};

/// The default ledger path, relative to the working directory.
pub const DEFAULT_LEDGER_PATH: &str = "results/ledger.jsonl";

/// An append-only JSONL run ledger. Clones share the underlying
/// appender (and thus one file handle).
#[derive(Debug, Clone)]
pub struct Ledger {
    appender: LineAppender,
}

impl Ledger {
    /// Opens (creating directories as needed) a ledger at `path`.
    /// Failures to open are tolerated — the ledger is observability,
    /// not a correctness dependency — and disable appends.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        Ledger {
            appender: LineAppender::open(path),
        }
    }

    /// The standard experiment ledger at `results/ledger.jsonl`.
    pub fn default_location() -> Self {
        Ledger::open(DEFAULT_LEDGER_PATH)
    }

    /// The ledger path.
    pub fn path(&self) -> &Path {
        self.appender.path()
    }

    /// The shared line appender, for co-writers (the simulation
    /// server) that build their own row layouts.
    pub fn appender(&self) -> &LineAppender {
        &self.appender
    }

    /// Appends an arbitrary record as one whole JSONL row.
    pub fn append_record(&self, rec: &Json) {
        self.appender.append_line(&rec.emit());
    }

    /// Appends one cell record.
    pub fn append(&self, spec: &SweepSpec, outcome: &CellOutcome) {
        let w = &spec.workload_axis()[outcome.index.workload];
        let p = spec.policy_axis()[outcome.index.policy];
        let v = &spec.variant_axis()[outcome.index.variant];
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let rec = Json::Obj(vec![
            ("ts".into(), Json::u64(ts)),
            ("key".into(), Json::str(&outcome.key)),
            ("workload".into(), Json::str(w.display_name())),
            ("mix".into(), Json::str(w.mix_label())),
            ("policy".into(), Json::str(p.name())),
            ("variant".into(), Json::str(&v.name)),
            ("cached".into(), Json::Bool(outcome.cached)),
            ("wall_s".into(), Json::f64(outcome.wall.as_secs_f64())),
            ("queue_s".into(), Json::f64(outcome.queued.as_secs_f64())),
            ("worker".into(), Json::usize(outcome.worker)),
            ("result".into(), result_to_json(&outcome.result)),
        ]);
        self.append_record(&rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::CellIndex;
    use dtm_core::{PolicySpec, Robustness, RunResult};
    use std::time::Duration;

    #[test]
    fn records_are_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("dtm-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ledger.jsonl");
        let spec = SweepSpec::standard(0.05).policies([PolicySpec::baseline()]);
        let outcome = CellOutcome {
            index: CellIndex {
                variant: 0,
                policy: 0,
                workload: 6,
            },
            key: "f".repeat(32),
            result: RunResult {
                duration: 0.05,
                cores: 4,
                instructions: 1e8,
                duty_cycle: 0.5,
                max_temp: 80.0,
                emergency_time: 0.0,
                migrations: 0,
                dvfs_transitions: 0,
                stalls: 1,
                energy: 2.0,
                robustness: Robustness::default(),
                steady: None,
                phases: None,
                gain_stats: None,
                threads: vec![],
            },
            cached: false,
            wall: Duration::from_millis(1500),
            queued: Duration::from_millis(250),
            worker: 3,
        };
        let ledger = Ledger::open(&path);
        ledger.append(&spec, &outcome);
        ledger.clone().append(&spec, &outcome);
        drop(ledger);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert_eq!(
                v.field("workload").unwrap().as_str().unwrap(),
                "gzip-twolf-ammp-lucas"
            );
            assert_eq!(v.field("mix").unwrap().as_str().unwrap(), "IIFF");
            assert_eq!(
                v.field("policy").unwrap().as_str().unwrap(),
                "Dist. stop-go"
            );
            assert_eq!(v.field("variant").unwrap().as_str().unwrap(), "base");
            assert_eq!(v.field("cached").unwrap(), &Json::Bool(false));
            assert_eq!(v.field("worker").unwrap().as_usize().unwrap(), 3);
            assert!((v.field("wall_s").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-9);
            assert!((v.field("queue_s").unwrap().as_f64().unwrap() - 0.25).abs() < 1e-9);
            let r = crate::codec::result_from_json(v.field("result").unwrap()).unwrap();
            assert_eq!(r, outcome.result);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unopenable_ledger_is_inert() {
        // A directory path can't be opened as a file; appends must be
        // silently dropped, not panic.
        let dir = std::env::temp_dir();
        let ledger = Ledger::open(&dir);
        let spec = SweepSpec::standard(0.05).policies([PolicySpec::baseline()]);
        let outcome = CellOutcome {
            index: CellIndex {
                variant: 0,
                policy: 0,
                workload: 0,
            },
            key: "0".repeat(32),
            result: RunResult {
                duration: 0.05,
                cores: 4,
                instructions: 0.0,
                duty_cycle: 0.0,
                max_temp: 0.0,
                emergency_time: 0.0,
                migrations: 0,
                dvfs_transitions: 0,
                stalls: 0,
                energy: 0.0,
                robustness: Robustness::default(),
                steady: None,
                phases: None,
                gain_stats: None,
                threads: vec![],
            },
            cached: true,
            wall: Duration::ZERO,
            queued: Duration::ZERO,
            worker: 0,
        };
        ledger.append(&spec, &outcome);
    }
}
