//! The parallel sweep executor: a worker pool over the cells of a
//! [`SweepSpec`], fed by the content-addressed [`ResultCache`] and
//! observed through the run [`Ledger`] and a progress reporter.
//!
//! Execution is delegated to a [`Backend`]: the built-in
//! [`LocalBackend`] is the classic in-process worker pool, while
//! `dtm-dist` provides a remote backend that dispatches cells to a
//! fleet of `dtm-serve` workers over TCP (and can mix in local
//! threads). The runner itself owns everything backend-independent —
//! the cache pass, the ledger, progress reporting, and outcome
//! collection — so every backend produces byte-identical bookkeeping.

use crate::cache::{cell_key, CellKey, ResultCache};
use crate::json::Json;
use crate::ledger::Ledger;
use crate::progress::Progress;
use crate::sweep::{CellIndex, CellOutcome, SweepResults, SweepSpec};
use dtm_core::{Experiment, LockstepBatch, ObsHandle, SimError, SolverBackend};
use dtm_workloads::{Benchmark, TraceGenConfig, TraceLibrary};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count.
pub const WORKERS_ENV: &str = "DTM_WORKERS";

/// Environment variable overriding the lockstep lane-batch width.
pub const LANES_ENV: &str = "DTM_LANES";

/// Default lockstep lane-batch width: cells whose variants share a
/// thermal configuration are simulated up to this many at a time with
/// one batched thermal phase per step (see [`dtm_core::LockstepBatch`]).
/// Matches the batched kernel's internal lane block, so full batches
/// are exactly one block wide.
pub const DEFAULT_LANES: usize = 8;

/// Everything a [`Backend`] needs to execute the missed cells of one
/// sweep: the spec and its flattened cells/keys, which cells missed the
/// cache, and the shared infrastructure handles.
pub struct BackendCtx<'a> {
    /// The sweep being executed.
    pub spec: &'a SweepSpec,
    /// All cells of the spec, in canonical order.
    pub cells: &'a [CellIndex],
    /// Content address of each cell (parallel to `cells`).
    pub keys: &'a [CellKey],
    /// Indexes into `cells` that missed the cache and must be executed.
    pub misses: &'a [usize],
    /// The shared trace library.
    pub lib: &'a Arc<TraceLibrary>,
    /// The result cache to publish fresh results into (if any).
    pub cache: Option<&'a ResultCache>,
    /// Observability handle (disabled by default).
    pub obs: &'a ObsHandle,
    /// When the sweep started (queue-wait baseline).
    pub sweep_start: Instant,
    /// The runner's resolved worker count.
    pub workers: usize,
    /// The runner's resolved lane-batch width (1 = no batching).
    pub lanes: usize,
}

impl BackendCtx<'_> {
    /// Publishes a finished cell's result into the sweep's cache (if
    /// one is attached), with the same canonical describe record
    /// regardless of which backend produced the result — so cache
    /// contents are bit-identical across local and remote execution.
    pub fn publish(&self, i: usize, result: &dtm_core::RunResult) {
        let Some(cache) = self.cache else { return };
        let cell = self.cells[i];
        let workload = &self.spec.workload_axis()[cell.workload];
        let policy = self.spec.policy_axis()[cell.policy];
        let variant = &self.spec.variant_axis()[cell.variant];
        let mut fields = vec![
            ("workload".into(), Json::str(workload.display_name())),
            ("mix".into(), Json::str(workload.mix_label())),
            ("policy".into(), Json::str(policy.name())),
            ("variant".into(), Json::str(&variant.name)),
            ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
        ];
        if !variant.faults.is_ideal() {
            fields.push(("faults".into(), Json::str(&variant.faults.scenario.name)));
        }
        cache.store(self.keys[i], &Json::Obj(fields), result);
    }

    /// Generates (or disk-loads) the traces every benchmark in `subset`
    /// (indexes into `cells`) needs, across `workers` threads — so
    /// executors replay traces instead of racing to generate them.
    pub fn prewarm(&self, subset: &[usize], workers: usize) {
        let mut benches: Vec<Benchmark> = Vec::new();
        for &i in subset {
            for b in self.spec.workload_axis()[self.cells[i].workload].resolve() {
                if !benches.iter().any(|x| x.name == b.name) {
                    benches.push(b);
                }
            }
        }
        let next = AtomicUsize::new(0);
        let lib = self.lib;
        std::thread::scope(|s| {
            for _ in 0..workers.min(benches.len()).max(1) {
                s.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::SeqCst);
                    let Some(b) = benches.get(j) else { break };
                    let _ = lib.trace(b);
                });
            }
        });
    }
}

/// Executes one cell at a time, in-process — the shared machinery
/// behind [`LocalBackend`] and any mixed/fallback local execution a
/// remote backend performs. Holds one [`Experiment`] per config
/// variant over the shared trace library, so repeated cells of one
/// variant reuse prewarmed solver state.
pub struct LocalExec {
    experiments: Vec<Experiment>,
}

impl LocalExec {
    /// Builds the per-variant experiments (instrumented when the
    /// context's obs handle is enabled).
    pub fn new(ctx: &BackendCtx<'_>) -> Self {
        let experiments = ctx
            .spec
            .variant_axis()
            .iter()
            .map(|v| {
                Experiment::new_shared(Arc::clone(ctx.lib), v.sim.clone(), v.dtm)
                    .with_faults(v.faults.clone())
                    .with_obs(ctx.obs)
            })
            .collect();
        LocalExec { experiments }
    }

    /// Simulates cell `i` (an index into `ctx.cells`) as worker `wid`,
    /// publishes the result to the cache, and records the runner's
    /// per-cell observability (span, wall/queue histograms, worker-busy
    /// counter).
    ///
    /// # Errors
    ///
    /// Propagates the simulation failure.
    pub fn run_cell(
        &self,
        ctx: &BackendCtx<'_>,
        i: usize,
        wid: usize,
    ) -> Result<CellOutcome, SimError> {
        let cell = ctx.cells[i];
        let spec = ctx.spec;
        let workload = &spec.workload_axis()[cell.workload];
        let policy = spec.policy_axis()[cell.policy];
        let obs = ctx.obs;
        let t0 = Instant::now();
        let queued = t0.duration_since(ctx.sweep_start);
        let cell_start_ns = obs.now_ns();
        let result = self.experiments[cell.variant].run(workload, policy)?;
        ctx.publish(i, &result);
        let wall = t0.elapsed();
        if obs.is_enabled() {
            let wall_ns = wall.as_nanos() as u64;
            obs.record_span(
                "harness",
                format!("{}/{}", workload.display_name(), policy.name()),
                cell_start_ns,
                wall_ns,
            );
            obs.histogram("dtm_cell_wall_ns").record(wall_ns);
            obs.histogram("dtm_cell_queue_ns")
                .record(queued.as_nanos() as u64);
            obs.counter("dtm_cells_executed_total").inc();
            obs.counter(&format!("dtm_worker_{wid}_busy_ns_total"))
                .add(wall_ns);
        }
        Ok(CellOutcome {
            index: cell,
            key: ctx.keys[i].hex(),
            result,
            cached: false,
            wall,
            queued,
            worker: wid,
        })
    }

    /// Simulates a lane batch (indexes into `ctx.cells` whose variants
    /// share a thermal configuration) in lockstep as worker `wid`,
    /// publishing each lane's result and per-cell observability exactly
    /// as [`LocalExec::run_cell`] would. Each distinct workload's
    /// traces are resolved once for the whole batch; every lane that
    /// replays that workload shares the `Arc`s.
    ///
    /// Wall time is the batch's (the lanes ran fused, so per-lane wall
    /// is not separable); results are bit-identical to per-cell runs.
    ///
    /// # Errors
    ///
    /// Propagates the first lane's simulation failure.
    pub fn run_lane_batch(
        &self,
        ctx: &BackendCtx<'_>,
        batch: &[usize],
        wid: usize,
    ) -> Result<Vec<CellOutcome>, SimError> {
        if batch.len() == 1 {
            return Ok(vec![self.run_cell(ctx, batch[0], wid)?]);
        }
        let spec = ctx.spec;
        let obs = ctx.obs;
        let t0 = Instant::now();
        let queued = t0.duration_since(ctx.sweep_start);
        let batch_start_ns = obs.now_ns();

        // One trace resolution per distinct workload in the batch.
        let mut trace_sets: Vec<(usize, Vec<_>)> = Vec::new();
        let mut sims = Vec::with_capacity(batch.len());
        for &i in batch {
            let cell = ctx.cells[i];
            let traces = match trace_sets.iter().find(|(w, _)| *w == cell.workload) {
                Some((_, t)) => t.clone(),
                None => {
                    let t: Vec<_> = spec.workload_axis()[cell.workload]
                        .resolve()
                        .iter()
                        .map(|b| ctx.lib.trace(b))
                        .collect();
                    trace_sets.push((cell.workload, t.clone()));
                    t
                }
            };
            let policy = spec.policy_axis()[cell.policy];
            sims.push(self.experiments[cell.variant].build_with_traces(traces, policy)?);
        }

        let results = LockstepBatch::new(sims).run()?;
        let wall = t0.elapsed();
        let wall_ns = wall.as_nanos() as u64;
        if obs.is_enabled() {
            obs.histogram("dtm_batch_lanes").record(batch.len() as u64);
            obs.counter("dtm_batches_executed_total").inc();
            obs.counter("dtm_batch_lanes_total").add(batch.len() as u64);
            obs.counter("dtm_batch_lane_slots_total")
                .add(ctx.lanes as u64);
            obs.counter(&format!("dtm_worker_{wid}_busy_ns_total"))
                .add(wall_ns);
        }
        let mut out = Vec::with_capacity(batch.len());
        for (&i, result) in batch.iter().zip(results) {
            let cell = ctx.cells[i];
            ctx.publish(i, &result);
            if obs.is_enabled() {
                let workload = &spec.workload_axis()[cell.workload];
                let policy = spec.policy_axis()[cell.policy];
                obs.record_span(
                    "harness",
                    format!("{}/{}", workload.display_name(), policy.name()),
                    batch_start_ns,
                    wall_ns,
                );
                obs.histogram("dtm_cell_wall_ns").record(wall_ns);
                obs.histogram("dtm_cell_queue_ns")
                    .record(queued.as_nanos() as u64);
                obs.counter("dtm_cells_executed_total").inc();
            }
            out.push(CellOutcome {
                index: cell,
                key: ctx.keys[i].hex(),
                result,
                cached: false,
                wall,
                queued,
                worker: wid,
            });
        }
        Ok(out)
    }
}

/// Partitions the missed cells into worker tasks: cells whose variants
/// share a thermal configuration (same floorplan/package, substep, and
/// propagator backend) are grouped — preserving miss order within each
/// group — and chunked into `ctx.lanes`-wide lockstep batches; the rest
/// (non-propagator backends, or `lanes == 1`) stay one cell per task.
///
/// Grouping is a scheduling hint, not a correctness requirement:
/// [`LockstepBatch`] re-checks at run time that its lanes really share
/// one propagator and steps them scalar otherwise, so an over-broad
/// group still produces bit-identical results.
fn lane_batches(ctx: &BackendCtx<'_>) -> Vec<Vec<usize>> {
    let lanes = ctx.lanes.max(1);
    if lanes == 1 {
        return ctx.misses.iter().map(|&i| vec![i]).collect();
    }
    let variants = ctx.spec.variant_axis();
    let variant_key: Vec<Option<String>> = variants
        .iter()
        .map(|v| {
            (v.sim.thermal_solver == SolverBackend::Propagator).then(|| {
                format!(
                    "{}|{:?}|{:?}|{:?}",
                    v.sim.cores, v.sim.package, v.sim.thermal_substep, v.sim.thermal_solver
                )
            })
        })
        .collect();
    let mut tasks: Vec<Vec<usize>> = Vec::new();
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for &i in ctx.misses {
        match &variant_key[ctx.cells[i].variant] {
            Some(key) => match groups.iter_mut().find(|(k, _)| k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            },
            None => tasks.push(vec![i]),
        }
    }
    for (_, members) in groups {
        for chunk in members.chunks(lanes) {
            tasks.push(chunk.to_vec());
        }
    }
    tasks
}

/// A sweep execution strategy: given the missed cells of one sweep,
/// produce one [`CellOutcome`] per cell (in any order) on `tx`.
///
/// Contract: exactly one `Ok(outcome)` per entry of `ctx.misses`
/// (duplicates from speculative execution must be reconciled away by
/// the backend), or at least one `Err` after which remaining cells may
/// be abandoned. `run_cells` blocks until done; the runner collects
/// outcomes concurrently from its own thread.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Executes the missed cells, sending outcomes over `tx`.
    fn run_cells(&self, ctx: &BackendCtx<'_>, tx: &mpsc::Sender<Result<CellOutcome, SimError>>);

    /// One-line description for progress/log output.
    fn label(&self) -> String;
}

/// The classic in-process worker pool: `ctx.workers` threads pulling
/// lane batches (or single cells) off a shared task list, one
/// prewarmed [`Experiment`] per config variant.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalBackend;

impl Backend for LocalBackend {
    fn run_cells(&self, ctx: &BackendCtx<'_>, tx: &mpsc::Sender<Result<CellOutcome, SimError>>) {
        let tasks = lane_batches(ctx);
        let workers = ctx.workers.min(tasks.len().max(1));
        ctx.prewarm(ctx.misses, workers);
        let exec = LocalExec::new(ctx);
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        std::thread::scope(|s| {
            for wid in 1..=workers {
                let tx = tx.clone();
                let exec = &exec;
                let next = &next;
                let abort = &abort;
                let tasks = &tasks;
                s.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let j = next.fetch_add(1, Ordering::SeqCst);
                    let Some(batch) = tasks.get(j) else { break };
                    match exec.run_lane_batch(ctx, batch, wid) {
                        Ok(outcomes) => {
                            if outcomes.into_iter().any(|o| tx.send(Ok(o)).is_err()) {
                                break;
                            }
                        }
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                });
            }
        });
    }

    fn label(&self) -> String {
        "local".into()
    }
}

/// Executes sweep grids in parallel with caching and a run ledger.
///
/// # Examples
///
/// ```no_run
/// use dtm_core::PolicySpec;
/// use dtm_harness::{SweepRunner, SweepSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = SweepSpec::standard(0.5).policies(PolicySpec::all());
/// let results = SweepRunner::paper_defaults().run(spec)?;
/// eprintln!("{}", results.summary());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SweepRunner {
    lib: Arc<TraceLibrary>,
    workers: Option<usize>,
    lanes: Option<usize>,
    cache: Option<ResultCache>,
    ledger: Option<Ledger>,
    progress: bool,
    obs: ObsHandle,
    backend: Arc<dyn Backend>,
}

impl SweepRunner {
    /// A runner over an explicit trace library, with no cache, no
    /// ledger, and no progress output — the unit-test configuration.
    pub fn bare(lib: TraceLibrary) -> Self {
        SweepRunner::bare_shared(Arc::new(lib))
    }

    /// Like [`SweepRunner::bare`], but over an already-shared trace
    /// library — several runners (e.g. the repeated timing passes of
    /// `exp_profile`) can then reuse one set of pre-warmed traces.
    pub fn bare_shared(lib: Arc<TraceLibrary>) -> Self {
        SweepRunner {
            lib,
            workers: None,
            lanes: None,
            cache: None,
            ledger: None,
            progress: false,
            obs: ObsHandle::disabled(),
            backend: Arc::new(LocalBackend),
        }
    }

    /// The standard experiment configuration: paper-default traces with
    /// the on-disk trace cache, the result cache under `results/cache/`,
    /// the ledger at `results/ledger.jsonl`, and progress reporting on
    /// stderr.
    pub fn paper_defaults() -> Self {
        SweepRunner {
            lib: Arc::new(TraceLibrary::default().with_disk_cache("target/trace-cache")),
            workers: None,
            lanes: None,
            cache: Some(ResultCache::default_location()),
            ledger: Some(Ledger::default_location()),
            progress: true,
            obs: ObsHandle::disabled(),
            backend: Arc::new(LocalBackend),
        }
    }

    /// Overrides the worker count (otherwise `DTM_WORKERS`, otherwise
    /// the machine's available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Overrides the lockstep lane-batch width (otherwise `DTM_LANES`,
    /// otherwise [`DEFAULT_LANES`]). `1` disables batching: every cell
    /// runs through the classic scalar path. Batching is an execution
    /// strategy only — results, cache contents, and ledger rows are
    /// byte-identical at every width.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes.max(1));
        self
    }

    /// Replaces the result cache (e.g. a per-test temp directory), or
    /// disables caching with `None`.
    pub fn with_cache(mut self, cache: Option<ResultCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the ledger, or disables it with `None`.
    pub fn with_ledger(mut self, ledger: Option<Ledger>) -> Self {
        self.ledger = ledger;
        self
    }

    /// Disables progress reporting.
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Replaces the execution backend (default: [`LocalBackend`]).
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches an observability handle. The runner then records
    /// per-cell spans, wall/queue-wait histograms, and worker-busy
    /// counters, binds the result cache's traffic counters for the
    /// Prometheus export, and instruments every simulation it launches
    /// (so results carry [`dtm_core::PhaseProfile`]s).
    pub fn with_obs(mut self, obs: &ObsHandle) -> Self {
        self.obs = obs.clone();
        self
    }

    /// The shared trace library.
    pub fn library(&self) -> Arc<TraceLibrary> {
        Arc::clone(&self.lib)
    }

    /// The effective worker count: explicit override, then the
    /// `DTM_WORKERS` environment variable, then available parallelism.
    pub fn worker_count(&self) -> usize {
        if let Some(n) = self.workers {
            return n;
        }
        if let Some(n) = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The effective lane-batch width: explicit override, then the
    /// `DTM_LANES` environment variable, then [`DEFAULT_LANES`].
    pub fn lane_count(&self) -> usize {
        if let Some(n) = self.lanes {
            return n;
        }
        if let Some(n) = std::env::var(LANES_ENV)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            return n.max(1);
        }
        DEFAULT_LANES
    }

    /// Executes every cell of `spec` — cache hits served without
    /// simulation, misses handed to the backend — and returns the
    /// indexed results. The runner is reusable: callers that evaluate
    /// many generated specs (the `dtm-explore` search loop) share one
    /// runner, its trace library, and its cache across calls.
    ///
    /// # Errors
    ///
    /// Returns the first simulation failure; remaining in-flight cells
    /// are abandoned.
    pub fn run(&self, spec: SweepSpec) -> Result<SweepResults, SimError> {
        let sweep_start = Instant::now();
        let obs = self.obs.clone();
        if let Some(cache) = &self.cache {
            if obs.is_enabled() {
                cache.bind_obs(&obs);
            }
        }
        let cells = spec.cells();
        let version = env!("CARGO_PKG_VERSION");
        let tracegen: &TraceGenConfig = self.lib.config();
        let keys: Vec<CellKey> = cells
            .iter()
            .map(|c| {
                cell_key(
                    &spec.workload_axis()[c.workload],
                    spec.policy_axis()[c.policy],
                    &spec.variant_axis()[c.variant].sim,
                    &spec.variant_axis()[c.variant].dtm,
                    &spec.variant_axis()[c.variant].faults,
                    tracegen,
                    version,
                )
            })
            .collect();

        // Cache pass: serve whatever is already computed.
        let mut outcomes: Vec<Option<CellOutcome>> = vec![None; cells.len()];
        if let Some(cache) = &self.cache {
            for (i, &key) in keys.iter().enumerate() {
                let t0 = Instant::now();
                if let Some(result) = cache.load(key) {
                    outcomes[i] = Some(CellOutcome {
                        index: cells[i],
                        key: key.hex(),
                        result,
                        cached: true,
                        wall: t0.elapsed(),
                        queued: Duration::ZERO,
                        worker: 0,
                    });
                }
            }
        }
        let misses: Vec<usize> = (0..cells.len())
            .filter(|&i| outcomes[i].is_none())
            .collect();

        let mut progress = Progress::new(cells.len(), self.progress);
        for o in outcomes.iter().flatten() {
            progress.record_hit();
            if let Some(ledger) = self.ledger.as_ref() {
                ledger.append(&spec, o);
            }
        }

        if !misses.is_empty() {
            let ctx = BackendCtx {
                spec: &spec,
                cells: &cells,
                keys: &keys,
                misses: &misses,
                lib: &self.lib,
                cache: self.cache.as_ref(),
                obs: &obs,
                sweep_start,
                workers: self.worker_count(),
                lanes: self.lane_count(),
            };
            let (tx, rx) = mpsc::channel::<Result<CellOutcome, SimError>>();
            let mut first_error: Option<SimError> = None;
            let backend = &self.backend;
            std::thread::scope(|s| {
                s.spawn(move || backend.run_cells(&ctx, &tx));
                // `tx` is moved into (and dropped by) the backend
                // thread, so this loop ends exactly when the backend
                // returns.
                for msg in rx {
                    match msg {
                        Ok(outcome) => {
                            progress.record_executed(outcome.wall);
                            if let Some(ledger) = self.ledger.as_ref() {
                                ledger.append(&spec, &outcome);
                            }
                            let i = outcome.index.workload
                                + spec.workload_axis().len()
                                    * (outcome.index.policy
                                        + spec.policy_axis().len() * outcome.index.variant);
                            outcomes[i] = Some(outcome);
                        }
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                    }
                }
            });

            if let Some(e) = first_error {
                progress.finish();
                return Err(e);
            }
        }
        progress.finish();

        let outcomes: Vec<CellOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every cell resolved"))
            .collect();
        let mut results = SweepResults::new(spec, outcomes);
        if let Some(cache) = &self.cache {
            results = results.with_cache_stats(cache.stats());
        }
        Ok(results)
    }

    /// Executes several sweeps back-to-back on this runner, returning
    /// one [`SweepResults`] per spec in order. This is the
    /// batch-evaluate seam for search engines: each generation of
    /// candidate configs becomes one batch, every spec still flows
    /// through the same cache pass, ledger, and backend as a standalone
    /// run, and cache hits across batches (or across a resume) cost no
    /// simulation.
    ///
    /// # Errors
    ///
    /// Stops at the first failing sweep and returns its error; earlier
    /// specs' results are discarded.
    pub fn run_batch(
        &self,
        specs: impl IntoIterator<Item = SweepSpec>,
    ) -> Result<Vec<SweepResults>, SimError> {
        specs.into_iter().map(|spec| self.run(spec)).collect()
    }
}

/// Convenience: run `spec` with the standard experiment configuration
/// (see [`SweepRunner::paper_defaults`]) and the worker-count/output
/// flags from [`crate::cli::SweepArgs`].
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run_standard(
    spec: SweepSpec,
    args: &crate::cli::SweepArgs,
) -> Result<SweepResults, SimError> {
    let mut runner = SweepRunner::paper_defaults();
    if let Some(n) = args.workers {
        runner = runner.with_workers(n);
    }
    if let Some(n) = args.lanes {
        runner = runner.with_lanes(n);
    }
    if args.no_cache {
        runner = runner.with_cache(None);
    }
    runner.run(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_core::PolicySpec;
    use dtm_workloads::Workload;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dtm-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tiny_spec() -> SweepSpec {
        // Two workloads × two policies on the fast-test configuration:
        // four cells, each ~100 ms of simulation.
        let spec = SweepSpec::new(vec![
            Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
            Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
        ]);
        let sim = dtm_core::SimConfig::fast_test();
        let dtm = dtm_core::DtmConfig::default();
        spec.variant(crate::ConfigVariant::new("base", sim, dtm))
            .policies([PolicySpec::baseline(), PolicySpec::best()])
    }

    fn fast_lib() -> TraceLibrary {
        TraceLibrary::new(TraceGenConfig::fast_test())
    }

    #[test]
    fn parallel_results_match_serial_results() {
        let spec = tiny_spec();
        let parallel = SweepRunner::bare(fast_lib())
            .with_workers(4)
            .run(spec.clone())
            .expect("parallel run");

        // Serial reference through the plain Experiment API.
        let exp = Experiment::new(
            fast_lib(),
            dtm_core::SimConfig::fast_test(),
            dtm_core::DtmConfig::default(),
        );
        for (pi, &policy) in spec.policy_axis().iter().enumerate() {
            for (wi, workload) in spec.workload_axis().iter().enumerate() {
                let serial = exp.run(workload, policy).expect("serial run");
                let from_sweep = parallel.get(policy, wi);
                assert_eq!(
                    &serial, from_sweep,
                    "cell (policy {pi}, workload {wi}) diverged between serial and parallel"
                );
            }
        }
        assert_eq!(parallel.executed(), 4);
        assert_eq!(parallel.cache_hits(), 0);
    }

    #[test]
    fn warm_cache_executes_zero_simulations() {
        let dir = tmpdir("warm");
        let cold = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir)))
            .with_workers(2)
            .run(tiny_spec())
            .expect("cold run");
        assert_eq!(cold.executed(), 4);

        let warm = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir)))
            .with_workers(2)
            .run(tiny_spec())
            .expect("warm run");
        assert_eq!(warm.executed(), 0, "warm cache must serve every cell");
        assert_eq!(warm.cache_hits(), 4);
        for (o_cold, o_warm) in cold.outcomes().iter().zip(warm.outcomes()) {
            assert_eq!(o_cold.result, o_warm.result);
            assert_eq!(
                o_cold.result.duty_cycle.to_bits(),
                o_warm.result.duty_cycle.to_bits(),
                "cache hit must be bit-identical"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_experiment_cells_are_shared() {
        // A one-policy sweep is a subset of a two-policy sweep (as
        // Table 5 is of Table 8): its cells must all be cache hits.
        let dir = tmpdir("subset");
        let full = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir)))
            .run(tiny_spec())
            .expect("full run");
        assert_eq!(full.executed(), 4);

        let subset_spec = tiny_spec();
        let subset = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir)))
            .run(subset_spec.policies([])) // same two policies; dedup keeps axes equal
            .expect("subset run");
        assert_eq!(subset.executed(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_records_every_cell() {
        let dir = tmpdir("ledger");
        let ledger_path = dir.join("ledger.jsonl");
        let results = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(dir.join("cache"))))
            .with_ledger(Some(Ledger::open(&ledger_path)))
            .run(tiny_spec())
            .expect("run");
        assert_eq!(results.outcomes().len(), 4);
        let text = std::fs::read_to_string(&ledger_path).unwrap();
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            let v = crate::json::Json::parse(line).expect("ledger line parses");
            assert_eq!(v.field("cached").unwrap(), &crate::json::Json::Bool(false));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_sweep_records_cells_and_cache_traffic() {
        let dir = tmpdir("obs");
        let obs = dtm_core::ObsHandle::enabled_default();
        let results = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir)))
            .with_workers(2)
            .with_obs(&obs)
            .run(tiny_spec())
            .expect("run");
        assert_eq!(results.executed(), 4);

        // Cache traffic surfaces both in the results and the footer.
        let stats = results.cache_stats().expect("a cache was attached");
        assert_eq!(stats.probes, 4);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 0);
        assert!(stats.bytes_written > 0);
        assert!(results.summary().contains("cache: 4 probes"));

        // Instrumented runs carry per-phase engine timings.
        for o in results.outcomes() {
            assert!(o.result.phases.is_some(), "profiled run has phase timings");
        }

        // Harness-side metrics landed on the shared handle.
        assert_eq!(obs.counter("dtm_cells_executed_total").get(), 4);
        assert_eq!(obs.histogram("dtm_cell_wall_ns").count(), 4);
        assert_eq!(obs.histogram("dtm_cell_queue_ns").count(), 4);
        assert!(obs.spans_recorded() > 0, "cell + engine spans recorded");
        let prom = obs.prometheus();
        assert!(prom.contains("dtm_cache_probes_total 4"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unobserved_sweep_results_stay_unprofiled() {
        let results = SweepRunner::bare(fast_lib())
            .with_workers(2)
            .run(tiny_spec())
            .expect("run");
        assert!(results.cache_stats().is_none(), "no cache attached");
        for o in results.outcomes() {
            assert!(o.result.phases.is_none());
        }
    }

    #[test]
    fn worker_count_resolution_prefers_explicit() {
        let r = SweepRunner::bare(fast_lib()).with_workers(3);
        assert_eq!(r.worker_count(), 3);
        let r0 = SweepRunner::bare(fast_lib()).with_workers(0);
        assert_eq!(r0.worker_count(), 1, "zero clamps to one");
    }

    #[test]
    fn lane_count_resolution_prefers_explicit() {
        let r = SweepRunner::bare(fast_lib()).with_lanes(3);
        assert_eq!(r.lane_count(), 3);
        let r0 = SweepRunner::bare(fast_lib()).with_lanes(0);
        assert_eq!(r0.lane_count(), 1, "zero clamps to one");
        // No override and (in the test environment) no DTM_LANES: the
        // default width applies.
        if std::env::var(LANES_ENV).is_err() {
            assert_eq!(SweepRunner::bare(fast_lib()).lane_count(), DEFAULT_LANES);
        }
    }

    #[test]
    fn lane_batches_group_by_thermal_config_and_respect_width() {
        // Two variants sharing one thermal config plus a backward-Euler
        // variant: the first two variants' cells coalesce into common
        // batches, the Euler cells stay singletons.
        let sim = dtm_core::SimConfig::fast_test();
        let mut hot_dtm = dtm_core::DtmConfig::default();
        hot_dtm.threshold += 5.0;
        let mut euler_sim = sim.clone();
        euler_sim.thermal_solver = SolverBackend::BackwardEuler;
        let spec = SweepSpec::new(vec![
            Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
            Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
        ])
        .variant(crate::ConfigVariant::new(
            "base",
            sim.clone(),
            dtm_core::DtmConfig::default(),
        ))
        .add_variant(crate::ConfigVariant::new("hot", sim, hot_dtm))
        .add_variant(crate::ConfigVariant::new(
            "euler",
            euler_sim,
            dtm_core::DtmConfig::default(),
        ))
        .policies([PolicySpec::baseline()]);
        let cells = spec.cells();
        let keys = vec![CellKey(0); cells.len()];
        let misses: Vec<usize> = (0..cells.len()).collect();
        let lib = Arc::new(fast_lib());
        let obs = dtm_core::ObsHandle::disabled();
        let ctx = BackendCtx {
            spec: &spec,
            cells: &cells,
            keys: &keys,
            misses: &misses,
            lib: &lib,
            cache: None,
            obs: &obs,
            sweep_start: Instant::now(),
            workers: 1,
            lanes: 3,
        };
        let tasks = lane_batches(&ctx);
        // 4 propagator cells in one thermal group (3+1 at width 3) plus
        // 2 backward-Euler singletons: 6 cells over 4 tasks.
        assert_eq!(tasks.iter().map(Vec::len).sum::<usize>(), 6);
        assert_eq!(
            tasks.iter().filter(|t| t.len() == 3).count(),
            1,
            "propagator cells chunk into one full width-3 batch: {tasks:?}"
        );
        assert_eq!(
            tasks.iter().filter(|t| t.len() == 1).count(),
            3,
            "one ragged lane plus two Euler singletons: {tasks:?}"
        );
        for t in &tasks {
            assert!(t.len() <= 3, "batch wider than the lane width");
        }
        // Every miss appears exactly once.
        let mut seen: Vec<usize> = tasks.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, misses);
    }

    #[test]
    fn lane_width_does_not_change_results_or_cache_bytes() {
        // The core bit-identity claim at the sweep level: a batched run
        // and a scalar run produce identical outcomes and byte-identical
        // cache directories.
        let spec = tiny_spec();
        let dir1 = tmpdir("lanes1");
        let dir8 = tmpdir("lanes8");
        let scalar = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir1)))
            .with_workers(2)
            .with_lanes(1)
            .run(spec.clone())
            .expect("scalar run");
        let batched = SweepRunner::bare(fast_lib())
            .with_cache(Some(ResultCache::new(&dir8)))
            .with_workers(2)
            .with_lanes(8)
            .run(spec)
            .expect("batched run");
        assert_eq!(scalar.executed(), 4);
        assert_eq!(batched.executed(), 4);
        for (a, b) in scalar.outcomes().iter().zip(batched.outcomes()) {
            assert_eq!(a.result, b.result, "lane width changed a result");
            assert_eq!(a.result.duty_cycle.to_bits(), b.result.duty_cycle.to_bits());
            assert_eq!(a.key, b.key, "lane width changed a cache key");
        }
        let read_dir = |d: &PathBuf| -> Vec<(String, Vec<u8>)> {
            let mut entries: Vec<_> = std::fs::read_dir(d)
                .expect("cache dir")
                .map(|e| {
                    let e = e.unwrap();
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            entries.sort();
            entries
        };
        assert_eq!(
            read_dir(&dir1),
            read_dir(&dir8),
            "cache bytes differ between lane widths"
        );
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir8);
    }

    #[test]
    fn batched_sweep_records_lane_metrics() {
        let obs = dtm_core::ObsHandle::enabled_default();
        let results = SweepRunner::bare(fast_lib())
            .with_workers(1)
            .with_lanes(4)
            .with_obs(&obs)
            .run(tiny_spec())
            .expect("run");
        assert_eq!(results.executed(), 4);
        // 4 cells of one thermal group at width 4: one full batch.
        assert_eq!(obs.histogram("dtm_batch_lanes").count(), 1);
        assert_eq!(obs.counter("dtm_batches_executed_total").get(), 1);
        assert_eq!(obs.counter("dtm_batch_lanes_total").get(), 4);
        assert_eq!(obs.counter("dtm_batch_lane_slots_total").get(), 4);
        // Per-cell accounting is preserved through the batched path.
        assert_eq!(obs.counter("dtm_cells_executed_total").get(), 4);
        assert_eq!(obs.histogram("dtm_cell_wall_ns").count(), 4);
    }

    #[test]
    fn lane_batches_decode_each_workload_trace_once() {
        // The trace-hoisting fix: a lane batch resolves each distinct
        // benchmark at most once (via the prewarm pass plus the
        // per-batch trace map), never once per cell.
        let lib = Arc::new(fast_lib());
        let runner = SweepRunner::bare_shared(Arc::clone(&lib))
            .with_workers(1)
            .with_lanes(8);
        let results = runner.run(tiny_spec()).expect("run");
        assert_eq!(results.executed(), 4);
        // tiny_spec uses 4 distinct benchmarks across its workloads.
        let distinct = 4;
        assert!(
            lib.decode_count() <= distinct,
            "traces decoded {} times for {} distinct benchmarks",
            lib.decode_count(),
            distinct
        );
    }

    #[test]
    fn multiple_workers_are_actually_used() {
        // 12 cells across 4 workers: with seconds-scale cells the pool
        // essentially always spreads; tolerate the theoretical 1-worker
        // degenerate schedule by requiring >1 only.
        let spec = SweepSpec::new(vec![
            Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
            Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
            Workload::new("wc", ["art", "swim", "art", "swim"]),
        ])
        .variant(crate::ConfigVariant::new(
            "base",
            dtm_core::SimConfig::fast_test(),
            dtm_core::DtmConfig::default(),
        ))
        .policies([
            PolicySpec::baseline(),
            PolicySpec::best(),
            PolicySpec::new(
                dtm_core::ThrottleKind::Dvfs,
                dtm_core::Scope::Global,
                dtm_core::MigrationKind::None,
            ),
            PolicySpec::new(
                dtm_core::ThrottleKind::StopGo,
                dtm_core::Scope::Global,
                dtm_core::MigrationKind::None,
            ),
        ]);
        let results = SweepRunner::bare(fast_lib())
            .with_workers(4)
            .run(spec)
            .expect("run");
        assert_eq!(results.executed(), 12);
        assert!(
            results.workers_used() > 1,
            "expected >1 worker on 12 cells, saw {}",
            results.workers_used()
        );
    }

    /// A backend that serves every missed cell through [`LocalExec`]
    /// one at a time — exercises the Backend seam itself.
    #[derive(Debug)]
    struct SerialBackend;

    impl Backend for SerialBackend {
        fn run_cells(
            &self,
            ctx: &BackendCtx<'_>,
            tx: &mpsc::Sender<Result<CellOutcome, SimError>>,
        ) {
            ctx.prewarm(ctx.misses, 1);
            let exec = LocalExec::new(ctx);
            for &i in ctx.misses {
                let r = exec.run_cell(ctx, i, 7);
                let failed = r.is_err();
                let _ = tx.send(r);
                if failed {
                    break;
                }
            }
        }

        fn label(&self) -> String {
            "serial-test".into()
        }
    }

    #[test]
    fn batch_runs_share_runner_and_cache() {
        let dir = tmpdir("batch");
        let runner = SweepRunner::bare(fast_lib()).with_cache(Some(ResultCache::new(&dir)));
        let batch = runner.run_batch([tiny_spec(), tiny_spec()]).expect("batch");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].executed(), 4);
        assert_eq!(batch[1].executed(), 0, "second spec served from cache");
        assert_eq!(batch[1].cache_hits(), 4);
        // The runner survives the batch: a later standalone call reuses
        // the same library and cache.
        let again = runner.run(tiny_spec()).expect("reuse");
        assert_eq!(again.executed(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_backend_produces_identical_results() {
        let spec = tiny_spec();
        let local = SweepRunner::bare(fast_lib())
            .with_workers(2)
            .run(spec.clone())
            .expect("local run");
        let custom = SweepRunner::bare(fast_lib())
            .with_backend(Arc::new(SerialBackend))
            .run(spec)
            .expect("custom-backend run");
        assert_eq!(custom.executed(), 4);
        for (a, b) in local.outcomes().iter().zip(custom.outcomes()) {
            assert_eq!(a.result, b.result, "backend changed a result");
            assert_eq!(a.result.duty_cycle.to_bits(), b.result.duty_cycle.to_bits());
            assert_eq!(b.worker, 7, "custom backend's worker id is preserved");
        }
    }
}
