//! Hand-written JSON codec for [`RunResult`] (the workspace serde is a
//! marker-trait stub; see `vendor/README.md`). Floats use
//! shortest-round-trip formatting, so decode(encode(r)) is
//! bit-identical to `r` — the property the result cache relies on.

use crate::json::{Json, JsonError};
use dtm_core::{RunResult, ThreadStats};

/// Encodes a run result as a JSON object.
pub fn result_to_json(r: &RunResult) -> Json {
    Json::Obj(vec![
        ("duration".into(), Json::f64(r.duration)),
        ("cores".into(), Json::usize(r.cores)),
        ("instructions".into(), Json::f64(r.instructions)),
        ("duty_cycle".into(), Json::f64(r.duty_cycle)),
        ("max_temp".into(), Json::f64(r.max_temp)),
        ("emergency_time".into(), Json::f64(r.emergency_time)),
        ("migrations".into(), Json::u64(r.migrations)),
        ("dvfs_transitions".into(), Json::u64(r.dvfs_transitions)),
        ("stalls".into(), Json::u64(r.stalls)),
        ("energy".into(), Json::f64(r.energy)),
        (
            "threads".into(),
            Json::Arr(
                r.threads
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("instructions".into(), Json::f64(t.instructions)),
                            ("scaled_work".into(), Json::f64(t.scaled_work)),
                            ("migrations".into(), Json::u64(t.migrations)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a run result from [`result_to_json`]'s layout.
///
/// # Errors
///
/// Fails on missing fields or type mismatches (e.g. a corrupt or
/// foreign cache file).
pub fn result_from_json(v: &Json) -> Result<RunResult, JsonError> {
    let threads = v
        .field("threads")?
        .as_arr()?
        .iter()
        .map(|t| {
            Ok(ThreadStats {
                instructions: t.field("instructions")?.as_f64()?,
                scaled_work: t.field("scaled_work")?.as_f64()?,
                migrations: t.field("migrations")?.as_u64()?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok(RunResult {
        duration: v.field("duration")?.as_f64()?,
        cores: v.field("cores")?.as_usize()?,
        instructions: v.field("instructions")?.as_f64()?,
        duty_cycle: v.field("duty_cycle")?.as_f64()?,
        max_temp: v.field("max_temp")?.as_f64()?,
        emergency_time: v.field("emergency_time")?.as_f64()?,
        migrations: v.field("migrations")?.as_u64()?,
        dvfs_transitions: v.field("dvfs_transitions")?.as_u64()?,
        stalls: v.field("stalls")?.as_u64()?,
        energy: v.field("energy")?.as_f64()?,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        RunResult {
            duration: 0.5,
            cores: 4,
            instructions: 5.678e9 + 1.0 / 3.0,
            duty_cycle: 0.815_372_910_4,
            max_temp: 84.199_999_999_9,
            emergency_time: 0.0,
            migrations: 17,
            dvfs_transitions: 12_345,
            stalls: 3,
            energy: 22.25,
            threads: vec![
                ThreadStats {
                    instructions: 1.5e9,
                    scaled_work: 0.41,
                    migrations: 5,
                },
                ThreadStats::default(),
            ],
        }
    }

    #[test]
    fn round_trip_is_equal() {
        let r = sample();
        let back = result_from_json(&Json::parse(&result_to_json(&r).emit()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let r = sample();
        let back = result_from_json(&Json::parse(&result_to_json(&r).emit()).unwrap()).unwrap();
        for (a, b) in [
            (r.instructions, back.instructions),
            (r.duty_cycle, back.duty_cycle),
            (r.max_temp, back.max_temp),
            (r.energy, back.energy),
            (r.threads[0].scaled_work, back.threads[0].scaled_work),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corrupt_layouts_are_errors() {
        assert!(result_from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(result_from_json(&Json::parse("{\"duration\":\"x\"}").unwrap()).is_err());
    }
}
