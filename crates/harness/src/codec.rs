//! Hand-written JSON codec for [`RunResult`] (the workspace serde is a
//! marker-trait stub; see `vendor/README.md`). Floats use
//! shortest-round-trip formatting, so decode(encode(r)) is
//! bit-identical to `r` — the property the result cache relies on.

use crate::json::{Json, JsonError};
use dtm_core::{
    GainStats, PhaseNs, PhaseProfile, Robustness, RunResult, SteadyTempSummary, ThreadStats,
};

/// Encodes a run result as a JSON object.
pub fn result_to_json(r: &RunResult) -> Json {
    let mut fields = vec![
        ("duration".into(), Json::f64(r.duration)),
        ("cores".into(), Json::usize(r.cores)),
        ("instructions".into(), Json::f64(r.instructions)),
        ("duty_cycle".into(), Json::f64(r.duty_cycle)),
        ("max_temp".into(), Json::f64(r.max_temp)),
        ("emergency_time".into(), Json::f64(r.emergency_time)),
        ("migrations".into(), Json::u64(r.migrations)),
        ("dvfs_transitions".into(), Json::u64(r.dvfs_transitions)),
        ("stalls".into(), Json::u64(r.stalls)),
        ("energy".into(), Json::f64(r.energy)),
        (
            "robustness".into(),
            Json::Obj(vec![
                (
                    "violation_time".into(),
                    Json::f64(r.robustness.violation_time),
                ),
                (
                    "peak_overshoot".into(),
                    Json::f64(r.robustness.peak_overshoot),
                ),
                (
                    "false_throttle_time".into(),
                    Json::f64(r.robustness.false_throttle_time),
                ),
                (
                    "fallback_time".into(),
                    Json::f64(r.robustness.fallback_time),
                ),
                (
                    "fallback_entries".into(),
                    Json::u64(r.robustness.fallback_entries),
                ),
                (
                    "fallback_exits".into(),
                    Json::u64(r.robustness.fallback_exits),
                ),
                (
                    "watchdog_flags".into(),
                    Json::u64(r.robustness.watchdog_flags),
                ),
            ]),
        ),
        (
            "threads".into(),
            Json::Arr(
                r.threads
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("instructions".into(), Json::f64(t.instructions)),
                            ("scaled_work".into(), Json::f64(t.scaled_work)),
                            ("migrations".into(), Json::u64(t.migrations)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    // Optional fields are appended only when present, mirroring the
    // robustness discipline: entries written by older builds simply
    // lack them and decode to `None`.
    if let Some(s) = &r.steady {
        fields.push((
            "steady".into(),
            Json::Obj(vec![
                ("mean".into(), Json::f64(s.mean)),
                ("min".into(), Json::f64(s.min)),
                ("max".into(), Json::f64(s.max)),
            ]),
        ));
    }
    if let Some(p) = &r.phases {
        fields.push((
            "phases".into(),
            Json::Obj(vec![
                ("steps".into(), Json::u64(p.steps)),
                (
                    "phases".into(),
                    Json::Arr(
                        p.phases
                            .iter()
                            .map(|ph| {
                                Json::Obj(vec![
                                    ("name".into(), Json::str(&ph.name)),
                                    ("ns".into(), Json::u64(ph.ns)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(g) = &r.gain_stats {
        fields.push((
            "gain_stats".into(),
            Json::Obj(vec![
                ("kp_min".into(), Json::f64(g.kp_min)),
                ("kp_max".into(), Json::f64(g.kp_max)),
                ("ki_min".into(), Json::f64(g.ki_min)),
                ("ki_max".into(), Json::f64(g.ki_max)),
                ("adaptations".into(), Json::u64(g.adaptations)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// Decodes a run result from [`result_to_json`]'s layout.
///
/// # Errors
///
/// Fails on missing fields or type mismatches (e.g. a corrupt or
/// foreign cache file).
pub fn result_from_json(v: &Json) -> Result<RunResult, JsonError> {
    let threads = v
        .field("threads")?
        .as_arr()?
        .iter()
        .map(|t| {
            Ok(ThreadStats {
                instructions: t.field("instructions")?.as_f64()?,
                scaled_work: t.field("scaled_work")?.as_f64()?,
                migrations: t.field("migrations")?.as_u64()?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    // Entries written before the fault subsystem existed have no
    // robustness object; they decode to the all-zero default so the
    // whole pre-existing cache stays loadable (and fault-free cells are
    // all-zero anyway).
    let robustness = match v.field("robustness") {
        Ok(rv) => Robustness {
            violation_time: rv.field("violation_time")?.as_f64()?,
            peak_overshoot: rv.field("peak_overshoot")?.as_f64()?,
            false_throttle_time: rv.field("false_throttle_time")?.as_f64()?,
            fallback_time: rv.field("fallback_time")?.as_f64()?,
            fallback_entries: rv.field("fallback_entries")?.as_u64()?,
            fallback_exits: rv.field("fallback_exits")?.as_u64()?,
            watchdog_flags: rv.field("watchdog_flags")?.as_u64()?,
        },
        Err(_) => Robustness::default(),
    };
    // Same back-compat discipline for the observability-era fields:
    // absent means the entry predates them (or the run was unprofiled).
    let steady = match v.field("steady") {
        Ok(sv) => Some(SteadyTempSummary {
            mean: sv.field("mean")?.as_f64()?,
            min: sv.field("min")?.as_f64()?,
            max: sv.field("max")?.as_f64()?,
        }),
        Err(_) => None,
    };
    let phases = match v.field("phases") {
        Ok(pv) => Some(PhaseProfile {
            steps: pv.field("steps")?.as_u64()?,
            phases: pv
                .field("phases")?
                .as_arr()?
                .iter()
                .map(|ph| {
                    Ok(PhaseNs {
                        name: ph.field("name")?.as_str()?.to_string(),
                        ns: ph.field("ns")?.as_u64()?,
                    })
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
        }),
        Err(_) => None,
    };
    // Entries written before the adaptive gain schedule existed (PR 8
    // and earlier) have no gain_stats object — as do fixed-gain runs on
    // current builds; both decode to `None`.
    let gain_stats = match v.field("gain_stats") {
        Ok(gv) => Some(GainStats {
            kp_min: gv.field("kp_min")?.as_f64()?,
            kp_max: gv.field("kp_max")?.as_f64()?,
            ki_min: gv.field("ki_min")?.as_f64()?,
            ki_max: gv.field("ki_max")?.as_f64()?,
            adaptations: gv.field("adaptations")?.as_u64()?,
        }),
        Err(_) => None,
    };
    Ok(RunResult {
        duration: v.field("duration")?.as_f64()?,
        cores: v.field("cores")?.as_usize()?,
        instructions: v.field("instructions")?.as_f64()?,
        duty_cycle: v.field("duty_cycle")?.as_f64()?,
        max_temp: v.field("max_temp")?.as_f64()?,
        emergency_time: v.field("emergency_time")?.as_f64()?,
        migrations: v.field("migrations")?.as_u64()?,
        dvfs_transitions: v.field("dvfs_transitions")?.as_u64()?,
        stalls: v.field("stalls")?.as_u64()?,
        energy: v.field("energy")?.as_f64()?,
        robustness,
        steady,
        phases,
        gain_stats,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        RunResult {
            duration: 0.5,
            cores: 4,
            instructions: 5.678e9 + 1.0 / 3.0,
            duty_cycle: 0.815_372_910_4,
            max_temp: 84.199_999_999_9,
            emergency_time: 0.0,
            migrations: 17,
            dvfs_transitions: 12_345,
            stalls: 3,
            energy: 22.25,
            robustness: Robustness {
                violation_time: 0.012_5,
                peak_overshoot: 1.375 + 1.0 / 9.0,
                false_throttle_time: 0.031,
                fallback_time: 0.25,
                fallback_entries: 2,
                fallback_exits: 1,
                watchdog_flags: 4_321,
            },
            steady: Some(SteadyTempSummary {
                mean: 83.337_5 + 1.0 / 7.0,
                min: 82.9,
                max: 84.125,
            }),
            phases: Some(PhaseProfile {
                steps: 18_000,
                phases: vec![
                    PhaseNs {
                        name: "microarch".into(),
                        ns: 123_456_789,
                    },
                    PhaseNs {
                        name: "thermal".into(),
                        ns: 987_654_321,
                    },
                ],
            }),
            gain_stats: Some(GainStats {
                kp_min: 0.0107 * 0.75,
                kp_max: 0.0107 * (1.0 + 1.0 / 3.0),
                ki_min: 248.5 * 0.75,
                ki_max: 248.5 * (1.0 + 1.0 / 3.0),
                adaptations: 7_654,
            }),
            threads: vec![
                ThreadStats {
                    instructions: 1.5e9,
                    scaled_work: 0.41,
                    migrations: 5,
                },
                ThreadStats::default(),
            ],
        }
    }

    #[test]
    fn round_trip_is_equal() {
        let r = sample();
        let back = result_from_json(&Json::parse(&result_to_json(&r).emit()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let r = sample();
        let back = result_from_json(&Json::parse(&result_to_json(&r).emit()).unwrap()).unwrap();
        for (a, b) in [
            (r.instructions, back.instructions),
            (r.duty_cycle, back.duty_cycle),
            (r.max_temp, back.max_temp),
            (r.energy, back.energy),
            (r.threads[0].scaled_work, back.threads[0].scaled_work),
            (r.robustness.peak_overshoot, back.robustness.peak_overshoot),
            (r.robustness.violation_time, back.robustness.violation_time),
            (r.steady.unwrap().mean, back.steady.unwrap().mean),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.robustness, back.robustness);
        assert_eq!(r.steady, back.steady);
        assert_eq!(r.phases, back.phases);
        assert_eq!(r.gain_stats, back.gain_stats);
        let (g, bg) = (r.gain_stats.unwrap(), back.gain_stats.unwrap());
        assert_eq!(g.kp_max.to_bits(), bg.kp_max.to_bits());
        assert_eq!(g.ki_max.to_bits(), bg.ki_max.to_bits());
    }

    #[test]
    fn pre_fault_entries_decode_with_default_robustness() {
        // An entry written before the fault subsystem existed: strip the
        // robustness object and check the decode still succeeds with the
        // all-zero default (old cache entries must stay warm).
        let mut encoded = result_to_json(&sample());
        if let Json::Obj(fields) = &mut encoded {
            fields.retain(|(k, _)| k != "robustness");
        }
        let back = result_from_json(&Json::parse(&encoded.emit()).unwrap()).unwrap();
        assert_eq!(back.robustness, Robustness::default());
        assert_eq!(back.duration, sample().duration);
        assert_eq!(back.threads.len(), 2);
    }

    #[test]
    fn pre_observability_entries_decode_without_steady_or_phases() {
        // An entry written before the observability subsystem existed:
        // strip both new objects and check the decode yields `None`s.
        let mut encoded = result_to_json(&sample());
        if let Json::Obj(fields) = &mut encoded {
            fields.retain(|(k, _)| k != "steady" && k != "phases");
        }
        let back = result_from_json(&Json::parse(&encoded.emit()).unwrap()).unwrap();
        assert_eq!(back.steady, None);
        assert_eq!(back.phases, None);
        assert_eq!(back.robustness, sample().robustness);
    }

    #[test]
    fn unprofiled_results_encode_without_optional_objects() {
        let r = RunResult {
            steady: None,
            phases: None,
            gain_stats: None,
            ..sample()
        };
        let text = result_to_json(&r).emit();
        assert!(!text.contains("\"steady\""));
        assert!(!text.contains("\"phases\""));
        assert!(!text.contains("\"gain_stats\""));
        let back = result_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn pre_adaptive_entries_decode_without_gain_stats() {
        // An entry written before the gain schedule existed (PR 8 era):
        // strip the object and check the decode yields `None`.
        let mut encoded = result_to_json(&sample());
        if let Json::Obj(fields) = &mut encoded {
            fields.retain(|(k, _)| k != "gain_stats");
        }
        let back = result_from_json(&Json::parse(&encoded.emit()).unwrap()).unwrap();
        assert_eq!(back.gain_stats, None);
        assert_eq!(back.robustness, sample().robustness);
        assert_eq!(back.steady, sample().steady);
    }

    #[test]
    fn corrupt_layouts_are_errors() {
        assert!(result_from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(result_from_json(&Json::parse("{\"duration\":\"x\"}").unwrap()).is_err());
    }
}
