//! A minimal JSON value model with lossless number round-tripping.
//!
//! The harness persists cache entries and ledger records as JSON. The
//! workspace's serde is a marker-trait stub (vendor/README.md), so the
//! codec is hand-written in the same spirit as the trace codec in
//! `dtm-power::serialize` — small, dependency-free, and exactly as
//! general as the data it carries.
//!
//! Numbers are stored as their source text: floats are emitted with
//! Rust's shortest-round-trip `{:?}` formatting, so a parsed value is
//! **bit-identical** to the one written (the property the result cache
//! tests pin down). Non-finite floats, which JSON proper cannot
//! express, are emitted as the tokens `inf`, `-inf`, and `nan`; the
//! parser accepts them back.

use std::fmt::Write as _;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text for lossless round-trips.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Errors from [`Json::parse`] or typed accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds a number from an `f64` (shortest round-trip formatting).
    pub fn f64(v: f64) -> Json {
        if v.is_nan() {
            Json::Num("nan".into())
        } else if v == f64::INFINITY {
            Json::Num("inf".into())
        } else if v == f64::NEG_INFINITY {
            Json::Num("-inf".into())
        } else {
            Json::Num(format!("{v:?}"))
        }
    }

    /// Builds a number from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a number from a `usize`.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Reads this value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => s
                    .parse()
                    .map_err(|e| JsonError(format!("bad f64 {s}: {e}"))),
            },
            other => err(format!("expected number, found {other:?}")),
        }
    }

    /// Reads this value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(s) => s
                .parse()
                .map_err(|e| JsonError(format!("bad u64 {s}: {e}"))),
            other => err(format!("expected number, found {other:?}")),
        }
    }

    /// Reads this value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// Reads this value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {other:?}")),
        }
    }

    /// Reads this value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(format!("expected array, found {other:?}")),
        }
    }

    /// Looks up a required object field.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError(format!("missing field `{name}`"))),
            other => err(format!("expected object, found {other:?}")),
        }
    }

    /// Serializes to compact JSON text (single line).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b'n') if self.literal("nan") => Ok(Json::Num("nan".into())),
            Some(b'i') if self.literal("inf") => Ok(Json::Num("inf".into())),
            Some(_) => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad \\u code point".into()))?,
                            );
                        }
                        other => return err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: back up and
                    // take the full code point.
                    self.pos -= 1;
                    let tail = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("invalid UTF-8 in string".into()))?;
                    let c = tail.chars().next().expect("nonempty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.literal("inf") {
                return Ok(Json::Num("-inf".into()));
            }
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return err(format!("expected number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Validate the literal now so accessors can't fail later.
        text.parse::<f64>()
            .map_err(|e| JsonError(format!("bad number `{text}`: {e}")))?;
        Ok(Json::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("dist. DVFS + \"best\"")),
            ("bips".into(), Json::f64(11.3625)),
            ("cells".into(), Json::u64(144)),
            (
                "threads".into(),
                Json::Arr(vec![Json::f64(0.25), Json::Null, Json::Bool(true)]),
            ),
        ]);
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_round_trip_is_bit_identical() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            84.2,
            6.02214076e23,
            5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let text = Json::f64(v).emit();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} → {text} → {back}");
        }
        let nan = Json::parse(&Json::f64(f64::NAN).emit()).unwrap();
        assert!(nan.as_f64().unwrap().is_nan());
    }

    #[test]
    fn u64_round_trip_is_exact_beyond_f64() {
        let v = u64::MAX - 1;
        let text = Json::u64(v).emit();
        assert_eq!(Json::parse(&text).unwrap().as_u64().unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash \u{1}control ünïcode";
        let text = Json::str(s).emit();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\":}",
            "12 34",
            "{\"a\":1}extra",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn field_access_and_type_errors() {
        let v = Json::parse("{\"a\":3,\"b\":\"x\"}").unwrap();
        assert_eq!(v.field("a").unwrap().as_u64().unwrap(), 3);
        assert!(v.field("missing").is_err());
        assert!(v.field("b").unwrap().as_u64().is_err());
    }
}
