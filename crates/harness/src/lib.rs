//! `dtm-harness`: the parallel sweep engine behind the experiment
//! binaries.
//!
//! Every table and figure in the paper is a grid of independent
//! simulations — workloads × policies × configuration variants. This
//! crate turns that observation into infrastructure:
//!
//! - [`SweepSpec`] declares the grid (and [`ConfigVariant`] names points
//!   on the configuration axis: threshold, core count, migration
//!   interval, sensor noise, …).
//! - [`SweepRunner`] executes the cells on a worker pool (size =
//!   available parallelism, overridable via `--workers` or the
//!   `DTM_WORKERS` environment variable), sharing one read-only
//!   [`dtm_workloads::TraceLibrary`] across workers behind an `Arc`.
//! - [`ResultCache`] is a content-addressed on-disk store under
//!   `results/cache/`: each cell is keyed by a stable hash of its
//!   complete inputs, so re-runs skip finished cells and experiments
//!   share overlapping cells (Table 5's grid is a subset of Table 8's).
//! - [`Ledger`] appends one structured JSON record per cell to
//!   `results/ledger.jsonl` — inputs hash, metrics, wall-clock, worker —
//!   a provenance trail for every number that reaches a table.
//! - [`report::Table`] renders the aligned-column text tables (or, with
//!   `--json`, machine-readable dumps) the binaries print.
//!
//! The typical experiment binary is now three steps:
//!
//! ```no_run
//! use dtm_core::PolicySpec;
//! use dtm_harness::{run_standard, SweepArgs, SweepSpec};
//!
//! let args = SweepArgs::from_env();
//! let spec = SweepSpec::standard(args.duration).policies(PolicySpec::all());
//! let results = run_standard(spec, &args).expect("sweep");
//! // …render tables from `results` via dtm_harness::report…
//! ```

pub mod appender;
pub mod cache;
pub mod cli;
pub mod codec;
pub mod json;
pub mod ledger;
pub mod progress;
pub mod report;
pub mod runner;
pub mod sweep;

pub use appender::LineAppender;
pub use cache::{cell_key, CacheStats, CellKey, ResultCache, DEFAULT_CACHE_DIR};
pub use cli::SweepArgs;
pub use ledger::{Ledger, DEFAULT_LEDGER_PATH};
pub use progress::Progress;
pub use report::Table;
pub use runner::{
    run_standard, Backend, BackendCtx, LocalBackend, LocalExec, SweepRunner, DEFAULT_LANES,
    LANES_ENV, WORKERS_ENV,
};
pub use sweep::{CellIndex, CellOutcome, ConfigVariant, SweepResults, SweepSpec};
