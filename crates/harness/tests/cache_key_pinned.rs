//! Cache-address stability, pinned by literal key values.
//!
//! The content address of a cell hashes the `Debug` representations of
//! its configuration inputs, so *any* change to those representations
//! — a new field, a reordered field, a different float spelling —
//! silently orphans every existing cache entry and wire memo. The
//! values below were printed by the pre-knob-search build (the
//! dtm-serve/dtm-dist era): fault-free cells at paper-default gains
//! must hash to exactly these forever. The tuned-gains keys assert the
//! converse: a config that *does* override the PI gains must rekey.

use dtm_core::{
    DtmConfig, FaultConfig, GainScheduleConfig, PolicySpec, SimConfig, PAPER_PI_KI, PAPER_PI_KP,
};
use dtm_harness::{cell_key, CellKey};
use dtm_workloads::{standard_workloads, TraceGenConfig};

#[test]
fn default_config_cells_keep_their_pre_knob_search_addresses() {
    let ws = standard_workloads();
    let tg = TraceGenConfig::default();
    let ideal = FaultConfig::ideal();

    let k = cell_key(
        &ws[0],
        PolicySpec::baseline(),
        &SimConfig::default(),
        &DtmConfig::default(),
        &ideal,
        &tg,
        "0.2.0",
    );
    assert_eq!(
        k,
        CellKey(286485080971197456135770222951572129358),
        "w0/baseline/default rekeyed — warm caches are orphaned"
    );

    let k = cell_key(
        &ws[6],
        PolicySpec::best(),
        &SimConfig::default(),
        &DtmConfig::default(),
        &ideal,
        &tg,
        "0.2.0",
    );
    assert_eq!(
        k,
        CellKey(243390995572883683193519167678741119987),
        "w6/best/default rekeyed — warm caches are orphaned"
    );

    let k = cell_key(
        &ws[0],
        PolicySpec::best(),
        &SimConfig::fast_test(),
        &DtmConfig {
            threshold: 100.0,
            ..DtmConfig::default()
        },
        &ideal,
        &tg,
        "0.2.0",
    );
    assert_eq!(
        k,
        CellKey(258481276746113442909836979057755626813),
        "w0/best/fast+threshold100 rekeyed — warm caches are orphaned"
    );
}

#[test]
fn paper_default_gains_spelled_explicitly_do_not_rekey() {
    // A config that sets the gains to their paper values is the *same*
    // config — it must share the legacy address bit for bit.
    let explicit = DtmConfig {
        pi_kp: PAPER_PI_KP,
        pi_ki: PAPER_PI_KI,
        ..DtmConfig::default()
    };
    let k = |d: &DtmConfig| {
        cell_key(
            &standard_workloads()[0],
            PolicySpec::baseline(),
            &SimConfig::default(),
            d,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.2.0",
        )
    };
    assert_eq!(k(&explicit), k(&DtmConfig::default()));
    assert_eq!(
        k(&explicit),
        CellKey(286485080971197456135770222951572129358)
    );
}

#[test]
fn gain_schedules_rekey_only_when_adaptive() {
    // The gain-schedule field rides the cache key only when a
    // non-fixed schedule is selected: an explicit `Fixed` spelling is
    // the default config and must keep the pre-adaptive address, while
    // each adaptive schedule (and each parameterization of one) gets a
    // distinct cell.
    let k = |d: &DtmConfig| {
        cell_key(
            &standard_workloads()[0],
            PolicySpec::baseline(),
            &SimConfig::default(),
            d,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.2.0",
        )
    };
    let with = |schedule: GainScheduleConfig| DtmConfig {
        gain_schedule: schedule,
        ..DtmConfig::default()
    };

    assert_eq!(
        k(&with(GainScheduleConfig::Fixed)),
        CellKey(286485080971197456135770222951572129358),
        "explicit Fixed must share the pre-adaptive address"
    );
    let rao = k(&with(GainScheduleConfig::rao_default()));
    let selftune = k(&with(GainScheduleConfig::selftune_default()));
    let rao_tuned = k(&with(GainScheduleConfig::Rao {
        alpha: 0.5,
        tau_s: 2e-3,
    }));
    assert_ne!(rao, k(&DtmConfig::default()));
    assert_ne!(selftune, k(&DtmConfig::default()));
    assert_ne!(rao, selftune, "schedules must not collide");
    assert_ne!(rao, rao_tuned, "schedule parameters are part of the key");
}

#[test]
fn tuned_gains_rekey_the_cell() {
    let tuned = DtmConfig {
        pi_kp: 0.02,
        ..DtmConfig::default()
    };
    let k = |d: &DtmConfig| {
        cell_key(
            &standard_workloads()[0],
            PolicySpec::baseline(),
            &SimConfig::default(),
            d,
            &FaultConfig::ideal(),
            &TraceGenConfig::default(),
            "0.2.0",
        )
    };
    assert_ne!(
        k(&tuned),
        k(&DtmConfig::default()),
        "tuned gains must produce a distinct content address"
    );
}
