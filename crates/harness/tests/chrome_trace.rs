//! The exporter contract: the chrome-trace document must be loadable by
//! a JSON parser (the harness's own codec parser stands in for Perfetto
//! here, since the workspace has no external JSON dependency), and the
//! Prometheus dump must list every registered metric.

use dtm_core::ObsHandle;
use dtm_harness::json::Json;

#[test]
fn chrome_trace_round_trips_through_a_json_parser() {
    let obs = ObsHandle::enabled_default();
    let t0 = obs.now_ns();
    obs.record_span("engine", "thermal", t0, 1_250);
    obs.record_span(
        "harness",
        "gzip-twolf-ammp-lucas/Dist. DVFS".to_string(),
        t0 + 2_000,
        40_000,
    );

    let doc = obs.chrome_trace();
    let v = Json::parse(&doc).expect("chrome trace parses as JSON");
    assert_eq!(v.field("displayTimeUnit").unwrap().as_str().unwrap(), "ns");
    let events = v.field("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), 2);
    for e in events {
        assert_eq!(e.field("ph").unwrap().as_str().unwrap(), "X");
        assert!(e.field("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.field("dur").unwrap().as_f64().unwrap() > 0.0);
        e.field("pid").unwrap().as_u64().unwrap();
        e.field("tid").unwrap().as_u64().unwrap();
        assert!(!e.field("name").unwrap().as_str().unwrap().is_empty());
        assert!(!e.field("cat").unwrap().as_str().unwrap().is_empty());
    }
    // Slice events survive with their durations intact.
    let durs: Vec<f64> = events
        .iter()
        .map(|e| e.field("dur").unwrap().as_f64().unwrap())
        .collect();
    assert!((durs[0] - 1.25).abs() < 1e-9, "1250 ns is 1.25 µs");
    assert!((durs[1] - 40.0).abs() < 1e-9, "40000 ns is 40 µs");
}

#[test]
fn prometheus_dump_lists_registered_metrics() {
    let obs = ObsHandle::enabled_default();
    obs.counter("dtm_cells_executed_total").add(3);
    obs.histogram("dtm_cell_wall_ns").record(1_000);
    let text = obs.prometheus();
    assert!(text.contains("dtm_cells_executed_total 3"));
    assert!(text.contains("dtm_cell_wall_ns_count 1"));
    assert!(text.contains("dtm_cell_wall_ns_sum 1000"));
}
