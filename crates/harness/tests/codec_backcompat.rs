//! Ledger/codec back-compatibility, pinned by literal fixture rows.
//!
//! The ledger is append-only history spanning every era of the schema:
//! rows written by the PR 2 (robustness) build have no `queue_s` field
//! and no `steady`/`phases` objects in their result; PR 3 rows carry
//! all of them. These fixtures are copies of real rows from those
//! builds (doctored only in digits) — if either stops decoding, old
//! ledgers and warm cache entries silently die, so the strings are
//! pinned here verbatim.

use dtm_harness::codec::{result_from_json, result_to_json};
use dtm_harness::json::Json;

/// A ledger row as the PR 2 (fault-subsystem era) binaries wrote it:
/// robustness present, no `queue_s`, no `steady`/`phases`.
const PR2_ROW: &str = r#"{"ts":1738000123,"key":"9c41b7f02ad65e83d1f4a6b8c0e2d493","workload":"gzip-twolf-ammp-lucas","mix":"IIFF","policy":"Dist. DVFS + sensor-based migration","variant":"base","cached":false,"wall_s":2.3125,"worker":3,"result":{"duration":0.5,"cores":4,"instructions":5471250000.0,"duty_cycle":0.9278515625,"max_temp":84.19921875,"emergency_time":0.0,"migrations":14,"dvfs_transitions":8532,"stalls":0,"energy":31.40625,"robustness":{"violation_time":0.0125,"peak_overshoot":1.375,"false_throttle_time":0.03125,"fallback_time":0.25,"fallback_entries":2,"fallback_exits":1,"watchdog_flags":4321},"threads":[{"instructions":1367812500.0,"scaled_work":0.23046875,"migrations":4},{"instructions":1367812500.0,"scaled_work":0.25,"migrations":3},{"instructions":1367812500.0,"scaled_work":0.26953125,"migrations":4},{"instructions":1367812500.0,"scaled_work":0.25,"migrations":3}]}}"#;

/// A ledger row as the PR 3 (observability era) binaries wrote it:
/// `queue_s` in the row, `steady` and `phases` in the result.
const PR3_ROW: &str = r#"{"ts":1741000456,"key":"04d9e2c7b1f83a65092c4de6f7a8b501","workload":"mcf-ammp-art-mesa","mix":"IIFF","policy":"Global stop-go","variant":"threshold=100","cached":false,"wall_s":1.84375,"queue_s":0.109375,"worker":1,"result":{"duration":0.5,"cores":4,"instructions":4218750000.0,"duty_cycle":0.814453125,"max_temp":99.599609375,"emergency_time":0.001953125,"migrations":0,"dvfs_transitions":0,"stalls":27,"energy":28.578125,"robustness":{"violation_time":0.0,"peak_overshoot":0.0,"false_throttle_time":0.0,"fallback_time":0.0,"fallback_entries":0,"fallback_exits":0,"watchdog_flags":0},"threads":[{"instructions":1054687500.0,"scaled_work":0.203125,"migrations":0},{"instructions":1054687500.0,"scaled_work":0.203125,"migrations":0},{"instructions":1054687500.0,"scaled_work":0.296875,"migrations":0},{"instructions":1054687500.0,"scaled_work":0.296875,"migrations":0}],"steady":{"mean":83.3376953125,"min":82.900390625,"max":84.125},"phases":{"steps":17857,"phases":[{"name":"microarch","ns":123456789},{"name":"thermal","ns":53571000}]}}}"#;

#[test]
fn pr2_era_row_decodes_and_round_trips() {
    let row = Json::parse(PR2_ROW).expect("fixture parses");
    // Row-level schema of the era: queue_s had not been added yet.
    assert!(row.field("queue_s").is_err(), "PR2 rows predate queue_s");
    assert_eq!(row.field("worker").unwrap().as_usize().unwrap(), 3);
    assert_eq!(
        row.field("policy").unwrap().as_str().unwrap(),
        "Dist. DVFS + sensor-based migration"
    );

    let r = result_from_json(row.field("result").unwrap()).expect("PR2 result decodes");
    assert_eq!(r.cores, 4);
    assert_eq!(r.migrations, 14);
    assert!((r.robustness.violation_time - 0.0125).abs() < 1e-15);
    assert_eq!(r.robustness.watchdog_flags, 4321);
    assert_eq!(r.steady, None, "PR2 results predate steady summaries");
    assert_eq!(r.phases, None, "PR2 results predate phase profiles");
    assert_eq!(r.threads.len(), 4);

    // Round-trip through today's encoder: bit-identical floats, equal
    // struct, and no spurious optional objects materialized.
    let re = result_to_json(&r);
    let back = result_from_json(&Json::parse(&re.emit()).unwrap()).unwrap();
    assert_eq!(r, back);
    assert_eq!(r.duty_cycle.to_bits(), back.duty_cycle.to_bits());
    assert_eq!(r.instructions.to_bits(), back.instructions.to_bits());
    assert!(!re.emit().contains("\"steady\""));
    assert!(!re.emit().contains("\"phases\""));
}

#[test]
fn pr3_era_row_decodes_and_round_trips() {
    let row = Json::parse(PR3_ROW).expect("fixture parses");
    assert!((row.field("queue_s").unwrap().as_f64().unwrap() - 0.109375).abs() < 1e-15);
    assert_eq!(
        row.field("variant").unwrap().as_str().unwrap(),
        "threshold=100"
    );

    let r = result_from_json(row.field("result").unwrap()).expect("PR3 result decodes");
    let steady = r.steady.expect("PR3 results carry steady summaries");
    assert!((steady.mean - 83.3376953125).abs() < 1e-15);
    let phases = r.phases.as_ref().expect("PR3 results carry phase profiles");
    assert_eq!(phases.steps, 17857);
    assert_eq!(phases.phases[1].name, "thermal");
    assert_eq!(phases.phases[1].ns, 53_571_000);

    let re = result_to_json(&r);
    let back = result_from_json(&Json::parse(&re.emit()).unwrap()).unwrap();
    assert_eq!(r, back);
    assert_eq!(r.max_temp.to_bits(), back.max_temp.to_bits());
    assert_eq!(
        r.steady.unwrap().mean.to_bits(),
        back.steady.unwrap().mean.to_bits()
    );
    assert_eq!(r.phases, back.phases);
}

/// A ledger row as the distributed-execution era (dtm-serve/dtm-dist
/// builds, immediately before the knob-search work) wrote it: same
/// result schema as PR 3, fault-scenario variant names, cache-served.
/// Knob-search builds read these rows back for resume and cache
/// attribution, so this is the blob format that must keep decoding.
const PR7_ROW: &str = r#"{"ts":1754000789,"key":"6f2a8c4d91e05b37a1c8d2e4f6071935","workload":"gzip-gcc-crafty-wupwise","mix":"IIII","policy":"Dist. stop-go","variant":"stuck-hot+floor","cached":true,"wall_s":0.015625,"queue_s":0.0,"worker":0,"result":{"duration":0.5,"cores":4,"instructions":3906250000.0,"duty_cycle":0.787109375,"max_temp":85.8125,"emergency_time":0.02734375,"migrations":0,"dvfs_transitions":0,"stalls":64,"energy":27.15625,"robustness":{"violation_time":0.0234375,"peak_overshoot":1.609375,"false_throttle_time":0.046875,"fallback_time":0.3125,"fallback_entries":1,"fallback_exits":1,"watchdog_flags":17},"threads":[{"instructions":976562500.0,"scaled_work":0.1953125,"migrations":0},{"instructions":976562500.0,"scaled_work":0.203125,"migrations":0},{"instructions":976562500.0,"scaled_work":0.296875,"migrations":0},{"instructions":976562500.0,"scaled_work":0.3046875,"migrations":0}],"steady":{"mean":84.05078125,"min":83.2421875,"max":85.8125},"phases":{"steps":15625,"phases":[{"name":"microarch","ns":98765432},{"name":"thermal","ns":45678901}]}}}"#;

#[test]
fn pr7_era_row_decodes_and_round_trips() {
    let row = Json::parse(PR7_ROW).expect("fixture parses");
    assert!(row.field("cached").is_ok(), "dist-era rows mark cache hits");
    assert_eq!(
        row.field("variant").unwrap().as_str().unwrap(),
        "stuck-hot+floor"
    );

    let r = result_from_json(row.field("result").unwrap()).expect("PR7 result decodes");
    assert_eq!(r.stalls, 64);
    assert!((r.robustness.fallback_time - 0.3125).abs() < 1e-15);
    assert_eq!(r.robustness.watchdog_flags, 17);
    assert!((r.steady.as_ref().unwrap().max - 85.8125).abs() < 1e-15);

    // Today's encoder reproduces the struct bit for bit, and encoding
    // is deterministic (two emits, identical bytes) — the property the
    // exploration journal's byte-identity contract leans on.
    let re = result_to_json(&r);
    assert_eq!(re.emit(), result_to_json(&r).emit());
    let back = result_from_json(&Json::parse(&re.emit()).unwrap()).unwrap();
    assert_eq!(r, back);
    assert_eq!(r.energy.to_bits(), back.energy.to_bits());
}

/// A ledger row as the PR 8 (knob-search era, immediately before the
/// adaptive gain schedule) build wrote it: knob-string variant names,
/// full PR 3 result schema, and — the point — no `gain_stats` object.
/// Adaptive-era builds replay these rows for cache resume, so they
/// must keep decoding (to a `None` gain-stats field) forever.
const PR8_ROW: &str = r#"{"ts":1752500321,"key":"3b7e19c4f6a2d85017e3c9b2a4d6f180","workload":"gzip-twolf-ammp-lucas","mix":"IIFF","policy":"Dist. DVFS + sensor-based migration","variant":"pi_kp=0.0130198|pi_ki=16.7746","cached":false,"wall_s":1.203125,"queue_s":0.015625,"worker":2,"result":{"duration":0.5,"cores":4,"instructions":5625000000.0,"duty_cycle":0.943359375,"max_temp":83.7578125,"emergency_time":0.0,"migrations":11,"dvfs_transitions":9216,"stalls":0,"energy":30.21875,"robustness":{"violation_time":0.0,"peak_overshoot":0.0,"false_throttle_time":0.0,"fallback_time":0.0,"fallback_entries":0,"fallback_exits":0,"watchdog_flags":0},"threads":[{"instructions":1406250000.0,"scaled_work":0.234375,"migrations":3},{"instructions":1406250000.0,"scaled_work":0.25,"migrations":3},{"instructions":1406250000.0,"scaled_work":0.265625,"migrations":3},{"instructions":1406250000.0,"scaled_work":0.25,"migrations":2}],"steady":{"mean":82.951171875,"min":82.4140625,"max":83.7578125},"phases":{"steps":18000,"phases":[{"name":"microarch","ns":112233445},{"name":"thermal","ns":51122334}]}}}"#;

#[test]
fn pr8_era_row_decodes_without_gain_stats() {
    let row = Json::parse(PR8_ROW).expect("fixture parses");
    assert_eq!(
        row.field("variant").unwrap().as_str().unwrap(),
        "pi_kp=0.0130198|pi_ki=16.7746",
        "knob-search era rows name variants by knob string"
    );

    let r = result_from_json(row.field("result").unwrap()).expect("PR8 result decodes");
    assert_eq!(
        r.gain_stats, None,
        "PR8 results predate the adaptive gain schedule"
    );
    assert_eq!(r.migrations, 11);
    assert!((r.duty_cycle - 0.943359375).abs() < 1e-15);
    assert!((r.steady.as_ref().unwrap().mean - 82.951171875).abs() < 1e-15);

    // Today's encoder reproduces the struct bit for bit and does not
    // materialize a gain_stats object for a fixed-gain result — the
    // cache entry a PR 8 build wrote and the one an adaptive-era build
    // rewrites are the same bytes.
    let re = result_to_json(&r);
    assert!(!re.emit().contains("\"gain_stats\""));
    let back = result_from_json(&Json::parse(&re.emit()).unwrap()).unwrap();
    assert_eq!(r, back);
    assert_eq!(r.max_temp.to_bits(), back.max_temp.to_bits());
}

#[test]
fn all_eras_coexist_in_one_ledger_file() {
    // A ledger that lived through every era: every line must parse and
    // every embedded result must decode, whichever era wrote it.
    let text = format!("{PR2_ROW}\n{PR3_ROW}\n{PR7_ROW}\n{PR8_ROW}\n");
    let mut decoded = 0;
    for line in text.lines() {
        let row = Json::parse(line).expect("row parses");
        let r = result_from_json(row.field("result").unwrap()).expect("result decodes");
        assert!(r.duration > 0.0);
        decoded += 1;
    }
    assert_eq!(decoded, 4);
}
