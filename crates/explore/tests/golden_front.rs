//! Golden-band regression pin for the CI smoke search.
//!
//! `exp_explore --smoke` (seed 42, budget 96) found a
//! `dvfs/dist/sensor` retuning that strictly dominates the fixed-grid
//! incumbent on the headline plane: 14.02 BIPS at zero violation and
//! 1.69 J, against the incumbent's 13.94 BIPS / 1.79 J. This test
//! replays the exact same search through the shared
//! [`standard_roster`] and pins both scores inside a tight band, so a
//! change anywhere in the stack — controller, engine, strategies,
//! scoring — that silently shifts the search's outcome fails loudly
//! here rather than in a downstream experiment.

use dtm_core::{MigrationKind, ObsHandle, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_explore::{standard_roster, ExploreReport, Explorer, SearchSpace};
use dtm_harness::SweepRunner;
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary, Workload};

/// The smoke search's incumbent-dominating front point (policy
/// `dvfs/dist/sensor`, generation 1) and the fixed-grid baseline it
/// beats, as measured at the pin revision.
const GOLDEN_KEY: &str = "dvfs/dist/sensor|pi_kp=0.0130198|pi_ki=16.7746|\
                          setpoint_margin_c=3.74946|trip_margin_c=0.112355|\
                          stall_s=0.0268502|migration_interval_s=0.0305746|\
                          os_tick_s=0.00194046";
const GOLDEN_BIPS: f64 = 14.02389039104203;
const GOLDEN_ENERGY: f64 = 1.6923208316849276;
const BASELINE_BIPS: f64 = 13.939951446766244;
const BASELINE_ENERGY: f64 = 1.7947680181964074;

/// Relative half-width of the acceptance band. The simulation is
/// deterministic, so drift inside the band can only come from an
/// intentional numeric change — keep it tight.
const BAND: f64 = 5e-3;

fn within_band(got: f64, pinned: f64) -> bool {
    (got - pinned).abs() <= BAND * pinned.abs()
}

/// Replays `exp_explore --smoke`'s search: same space, seed, budget,
/// and roster, against a bare (cache-less) runner and a throwaway
/// journal so the run is hermetic.
fn smoke_search() -> (ExploreReport, usize) {
    let seed = 42;
    let budget = 96;
    let n0 = (budget / 4).clamp(8, 64);
    let workloads: Vec<Workload> = standard_workloads().into_iter().take(2).collect();
    let policies = vec![
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::best(),
    ];
    let space = SearchSpace::paper(SimConfig::fast_test(), policies);
    let runner = SweepRunner::bare(TraceLibrary::new(TraceGenConfig::fast_test())).quiet();

    let journal = std::env::temp_dir().join(format!(
        "dtm-explore-golden-front-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal);
    let obs = ObsHandle::disabled();
    let mut explorer =
        Explorer::new(&runner, space, workloads, &journal, seed, &obs).expect("journal");
    explorer.evaluate_anchors().expect("anchor sweep");
    let mut strategies = standard_roster(seed, explorer.space(), n0, 4);
    explorer.run(&mut strategies, budget).expect("search");
    let report = explorer.report();
    let rows = std::fs::read_to_string(&journal)
        .expect("journal exists")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    let _ = std::fs::remove_file(&journal);
    (report, rows)
}

#[test]
fn smoke_front_still_dominates_the_incumbent_at_the_pinned_point() {
    let (report, journal_rows) = smoke_search();

    // The resume invariant the binary also self-checks.
    assert_eq!(journal_rows, report.evaluations);
    assert!(
        report.baseline_dominated,
        "the front no longer dominates the fixed-knob incumbent"
    );

    // The baseline is the best fixed-grid policy at Table 3 defaults;
    // its score is pure simulation (no search involved), so it pins
    // the engine + scoring stack.
    let (_, baseline) = report.baseline.as_ref().expect("baseline anchor");
    assert!(
        within_band(baseline.bips, BASELINE_BIPS),
        "baseline BIPS drifted: {} vs pinned {BASELINE_BIPS}",
        baseline.bips
    );
    assert_eq!(baseline.violation, 0.0, "baseline violates the threshold");
    assert!(
        within_band(baseline.energy, BASELINE_ENERGY),
        "baseline energy drifted: {} vs pinned {BASELINE_ENERGY}",
        baseline.energy
    );

    // The exact dominating point is still on the front (the search
    // trajectory is deterministic, so its identity — not just its
    // existence — is pinned), at its pinned score.
    let row = report
        .front
        .iter()
        .find(|r| r.key == GOLDEN_KEY)
        .unwrap_or_else(|| {
            panic!(
                "pinned front point missing; front keys: {:?}",
                report.front.iter().map(|r| &r.key).collect::<Vec<_>>()
            )
        });
    assert!(
        within_band(row.score.bips, GOLDEN_BIPS),
        "front BIPS drifted: {} vs pinned {GOLDEN_BIPS}",
        row.score.bips
    );
    assert_eq!(row.score.violation, 0.0, "pinned point now violates");
    assert!(
        within_band(row.score.energy, GOLDEN_ENERGY),
        "front energy drifted: {} vs pinned {GOLDEN_ENERGY}",
        row.score.energy
    );
    // And it strictly dominates the baseline on the headline plane.
    assert!(row.score.bips > baseline.bips && row.score.energy < baseline.energy);
}
