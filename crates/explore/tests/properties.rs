//! Property-based tests for the Pareto dominance archive.

use dtm_explore::{Entry, ParetoFront, Point, Score};
use proptest::prelude::*;

/// Decodes one packed byte into an archive entry. Two bits per
/// objective gives a small discrete value palette, keeping collisions
/// (equal and mutually dominating scores) frequent enough to actually
/// exercise the tie-breaking and eviction paths.
fn entry(id: usize, packed: u32) -> Entry {
    Entry {
        point: Point {
            policy: id % 3,
            schedule: 0,
            values: vec![id as f64],
        },
        score: Score {
            bips: f64::from(packed & 3),
            violation: f64::from((packed >> 2) & 3) * 0.5,
            energy: f64::from((packed >> 4) & 3) * 2.0,
            penalty: f64::from((packed >> 6) & 3) * 0.25,
        },
        gen: 0,
    }
}

fn build(raw: &[u32]) -> Vec<Entry> {
    raw.iter().enumerate().map(|(i, &x)| entry(i, x)).collect()
}

proptest! {
    /// After any insertion sequence, no archived entry dominates
    /// another — the defining invariant of a Pareto archive.
    #[test]
    fn archive_never_holds_a_dominated_point(
        raw in proptest::collection::vec(0u32..256, 1..24),
    ) {
        let mut f = ParetoFront::new();
        for e in build(&raw) {
            f.insert(e);
        }
        prop_assert!(!f.is_empty(), "something always survives");
        for a in f.entries() {
            for b in f.entries() {
                prop_assert!(
                    !a.score.dominates(&b.score),
                    "{:?} dominates {:?}",
                    a.score,
                    b.score
                );
            }
        }
    }

    /// Every non-dominated score survives and every dominated score is
    /// kept out, regardless of insertion order — the final *score set*
    /// is permutation-independent.
    #[test]
    fn final_front_is_insertion_order_independent(
        raw in proptest::collection::vec(0u32..256, 1..24),
        rotation in 0usize..24,
    ) {
        let mut forward = ParetoFront::new();
        for e in build(&raw) {
            forward.insert(e);
        }
        let mut rotated_raw = raw.clone();
        rotated_raw.rotate_left(rotation % raw.len());
        let mut rotated = ParetoFront::new();
        for e in build(&rotated_raw) {
            rotated.insert(e);
        }

        let canonical = |f: &ParetoFront| {
            let mut v: Vec<(u64, u64, u64, u64)> = f
                .entries()
                .iter()
                .map(|e| {
                    (
                        e.score.bips.to_bits(),
                        e.score.violation.to_bits(),
                        e.score.energy.to_bits(),
                        e.score.penalty.to_bits(),
                    )
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        prop_assert_eq!(canonical(&forward), canonical(&rotated));
    }

    /// Re-inserting everything the archive already holds changes
    /// nothing: re-insertion is idempotent.
    #[test]
    fn reinsertion_is_idempotent(
        raw in proptest::collection::vec(0u32..256, 1..24),
    ) {
        let mut f = ParetoFront::new();
        for e in build(&raw) {
            f.insert(e);
        }
        let snapshot = |f: &ParetoFront| -> Vec<(usize, Vec<f64>)> {
            f.entries()
                .iter()
                .map(|e| (e.point.policy, e.point.values.clone()))
                .collect()
        };
        let before = snapshot(&f);
        let archived: Vec<Entry> = f.entries().to_vec();
        for e in archived {
            prop_assert!(!f.insert(e), "re-inserting an archived entry must be a no-op");
        }
        prop_assert_eq!(before, snapshot(&f));
    }
}
