//! End-to-end determinism and resume contracts of the exploration
//! engine, driven against the real sweep harness on test-length
//! traces.

use dtm_core::{ObsHandle, PolicySpec, SimConfig};
use dtm_explore::{CoordinateDescent, Explorer, LhsHalving, SearchSpace, Strategy};
use dtm_harness::SweepRunner;
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary, Workload};
use std::path::PathBuf;

fn workloads() -> Vec<Workload> {
    standard_workloads().into_iter().take(2).collect()
}

fn space() -> SearchSpace {
    SearchSpace::paper(
        SimConfig::fast_test(),
        vec![PolicySpec::baseline(), PolicySpec::best()],
    )
}

fn runner() -> SweepRunner {
    SweepRunner::bare(TraceLibrary::new(TraceGenConfig::fast_test())).quiet()
}

fn roster(seed: u64, space: &SearchSpace) -> Vec<Box<dyn Strategy>> {
    let start: Vec<f64> = {
        let defaults = space.default_values();
        space
            .knobs
            .iter()
            .zip(&defaults)
            .map(|(k, &v)| k.t_of(v))
            .collect()
    };
    vec![
        Box::new(LhsHalving::new(seed, space.dims(), vec![0, 1], 6, 2)),
        Box::new(CoordinateDescent::new(start, vec![1], 3, 1)),
    ]
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dtm-explore-e2e-{}-{name}", std::process::id()))
}

/// One full search; returns (report JSON, fresh count, memo hits).
fn search(journal: &PathBuf, seed: u64, budget: usize) -> (String, usize, usize) {
    let runner = runner();
    let obs = ObsHandle::disabled();
    let mut explorer =
        Explorer::new(&runner, space(), workloads(), journal, seed, &obs).expect("journal loads");
    explorer.evaluate_anchors().expect("anchors");
    let mut strategies = roster(seed, explorer.space());
    explorer.run(&mut strategies, budget).expect("search");
    let report = explorer.report();
    (
        report.to_json().emit(),
        explorer.fresh(),
        explorer.memo_hits(),
    )
}

#[test]
fn same_seed_is_byte_identical_and_resume_simulates_nothing() {
    let j1 = tmp("a.jsonl");
    let j2 = tmp("b.jsonl");
    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j2);

    // Two independent fresh runs: byte-identical artifacts and
    // journals.
    let (r1, fresh1, _) = search(&j1, 42, 30);
    let (r2, fresh2, _) = search(&j2, 42, 30);
    assert!(fresh1 > 0, "a fresh run simulates something");
    assert_eq!(fresh1, fresh2);
    assert_eq!(r1, r2, "same seed must emit byte-identical reports");
    let journal_bytes = std::fs::read(&j1).unwrap();
    assert_eq!(journal_bytes, std::fs::read(&j2).unwrap());

    // Resume from the journal: same artifact, zero simulation, journal
    // untouched.
    let (r3, fresh3, memo3) = search(&j1, 42, 30);
    assert_eq!(fresh3, 0, "resume must re-simulate nothing");
    assert!(memo3 >= fresh1, "every journaled evaluation is replayed");
    assert_eq!(r3, r1, "resume must emit the same bytes");
    assert_eq!(std::fs::read(&j1).unwrap(), journal_bytes);

    // A different seed takes a different trajectory.
    let j3 = tmp("c.jsonl");
    let _ = std::fs::remove_file(&j3);
    let (r4, _, _) = search(&j3, 43, 30);
    assert_ne!(r4, r1, "different seeds must explore differently");

    for p in [j1, j2, j3] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn front_holds_only_full_fidelity_entries_and_beats_nothing_dominated() {
    let j = tmp("front.jsonl");
    let _ = std::fs::remove_file(&j);
    let runner = runner();
    let obs = ObsHandle::disabled();
    let mut explorer =
        Explorer::new(&runner, space(), workloads(), &j, 7, &obs).expect("journal loads");
    explorer.evaluate_anchors().expect("anchors");
    let mut strategies = roster(7, explorer.space());
    explorer.run(&mut strategies, 25).expect("search");

    assert!(!explorer.front().is_empty());
    for a in explorer.front().entries() {
        for b in explorer.front().entries() {
            assert!(
                !a.score.dominates(&b.score),
                "archive holds a dominated point"
            );
        }
    }
    // The report's evaluation count equals the journal length — the
    // resume invariant the CI smoke also checks.
    let rows = std::fs::read_to_string(&j)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    assert_eq!(rows, explorer.evaluations());
    let _ = std::fs::remove_file(&j);
}
