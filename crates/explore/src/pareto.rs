//! The dominance archive: the non-dominated set of everything the
//! search has fully evaluated.
//!
//! Invariants (property-tested in `tests/properties.rs`):
//!
//! - no entry dominates another entry,
//! - the final set is independent of insertion order,
//! - re-inserting an archived point is a no-op.

use crate::score::Score;
use crate::space::Point;

/// One archived evaluation.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The candidate configuration.
    pub point: Point,
    /// Its objective vector.
    pub score: Score,
    /// Generation at which it was first archived.
    pub gen: u32,
}

/// A Pareto (non-dominated) archive.
#[derive(Debug, Default)]
pub struct ParetoFront {
    entries: Vec<Entry>,
}

impl ParetoFront {
    /// An empty archive.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Offers an evaluation to the archive. Returns `true` if it was
    /// admitted (it is not dominated by, nor identical to, any archived
    /// entry); admission evicts every entry the newcomer dominates.
    pub fn insert(&mut self, e: Entry) -> bool {
        for existing in &self.entries {
            if existing.score.dominates(&e.score) {
                return false;
            }
            if existing.point == e.point && existing.score == e.score {
                return false;
            }
        }
        self.entries.retain(|x| !e.score.dominates(&x.score));
        self.entries.push(e);
        true
    }

    /// The archived entries (insertion order).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Entries in canonical order — by policy index, then knob values
    /// lexicographically — the order the deterministic artifact uses.
    pub fn sorted(&self) -> Vec<&Entry> {
        let mut v: Vec<&Entry> = self.entries.iter().collect();
        v.sort_by(|a, b| {
            a.point
                .policy
                .cmp(&b.point.policy)
                .then_with(|| a.point.values.partial_cmp(&b.point.values).expect("finite"))
        });
        v
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether some archived entry dominates `score` on the headline
    /// (throughput, violation) plane.
    pub fn dominates_on_headline(&self, score: &Score) -> bool {
        self.entries
            .iter()
            .any(|e| e.score.dominates_on_bips_violation(score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bips: f64, violation: f64, policy: usize) -> Entry {
        Entry {
            point: Point {
                policy,
                schedule: 0,
                values: vec![bips],
            },
            score: Score {
                bips,
                violation,
                energy: 1.0,
                penalty: 0.0,
            },
            gen: 0,
        }
    }

    #[test]
    fn dominated_inserts_are_rejected_and_evicted() {
        let mut f = ParetoFront::new();
        assert!(f.insert(entry(5.0, 0.1, 0)));
        assert!(!f.insert(entry(4.0, 0.2, 0)), "dominated: rejected");
        assert!(f.insert(entry(6.0, 0.0, 1)), "dominates: admitted");
        assert_eq!(f.len(), 1, "the dominated incumbent was evicted");
        assert_eq!(f.entries()[0].point.policy, 1);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f = ParetoFront::new();
        assert!(f.insert(entry(5.0, 0.0, 0)));
        assert!(f.insert(entry(6.0, 0.5, 0)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn reinsertion_is_a_noop() {
        let mut f = ParetoFront::new();
        assert!(f.insert(entry(5.0, 0.0, 0)));
        assert!(!f.insert(entry(5.0, 0.0, 0)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn sorted_is_canonical() {
        let mut f = ParetoFront::new();
        f.insert(entry(6.0, 0.5, 1));
        f.insert(entry(5.0, 0.0, 0));
        let order: Vec<usize> = f.sorted().iter().map(|e| e.point.policy).collect();
        assert_eq!(order, vec![0, 1]);
    }
}
