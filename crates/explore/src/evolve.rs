//! A (μ+λ) evolutionary strategy over the mixed policy × knob space.
//!
//! Parents and children compete in one pool ranked by the guidance
//! scalar; the policy index is just another gene, so the search can
//! discover that a different DTM mechanism wins once its knobs are
//! retuned. All evaluations run at full fidelity — evolutionary
//! selection is noisy enough without fidelity noise on top.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::score::Score;
use crate::strategy::{Ask, Strategy};

/// (μ+λ) evolution with uniform crossover and bounded Gaussian-ish
/// (uniform-window) mutation.
#[derive(Debug)]
pub struct Evolve {
    rng: StdRng,
    dims: usize,
    policies: Vec<usize>,
    mu: usize,
    lambda: usize,
    gens_left: u32,
    pop: Vec<(Ask, f64)>,
    seeds: Vec<Ask>,
}

impl Evolve {
    /// μ parents, λ children per generation, for `gens` generations.
    /// `seeds` (e.g. the anchor defaults) join the random initial
    /// population so evolution starts no worse than the incumbents.
    pub fn new(
        seed: u64,
        dims: usize,
        policies: Vec<usize>,
        mu: usize,
        lambda: usize,
        gens: u32,
        seeds: Vec<Ask>,
    ) -> Self {
        assert!(mu >= 1 && lambda >= 1, "degenerate population");
        assert!(!policies.is_empty(), "need at least one policy");
        Evolve {
            rng: StdRng::seed_from_u64(seed),
            dims,
            policies,
            mu,
            lambda,
            gens_left: gens,
            pop: Vec::new(),
            seeds,
        }
    }

    fn random_individual(&mut self) -> Ask {
        let policy = self.policies[self.rng.random_range(0..self.policies.len())];
        let t = (0..self.dims).map(|_| self.rng.random::<f64>()).collect();
        Ask {
            policy,
            t,
            fidelity: None,
        }
    }

    fn child(&mut self) -> Ask {
        let a = self.rng.random_range(0..self.pop.len());
        let b = self.rng.random_range(0..self.pop.len());
        let (pa, pb) = (&self.pop[a].0.clone(), &self.pop[b].0.clone());
        // Uniform crossover…
        let mut t: Vec<f64> = (0..self.dims)
            .map(|d| {
                if self.rng.random_bool(0.5) {
                    pa.t[d]
                } else {
                    pb.t[d]
                }
            })
            .collect();
        let mut policy = if self.rng.random_bool(0.5) {
            pa.policy
        } else {
            pb.policy
        };
        // …then per-gene mutation.
        for td in t.iter_mut() {
            if self.rng.random_bool(0.35) {
                *td = (*td + (self.rng.random::<f64>() - 0.5) * 0.4).clamp(0.0, 1.0);
            }
        }
        if self.rng.random_bool(0.1) {
            policy = self.policies[self.rng.random_range(0..self.policies.len())];
        }
        Ask {
            policy,
            t,
            fidelity: None,
        }
    }
}

impl Strategy for Evolve {
    fn name(&self) -> &'static str {
        "evolve"
    }

    fn ask(&mut self) -> Vec<Ask> {
        if self.gens_left == 0 {
            return Vec::new();
        }
        if self.pop.is_empty() {
            // Generation 0: seeds plus random fill to μ+λ.
            let mut init = std::mem::take(&mut self.seeds);
            init.truncate(self.mu + self.lambda);
            while init.len() < self.mu + self.lambda {
                let ind = self.random_individual();
                init.push(ind);
            }
            init
        } else {
            (0..self.lambda).map(|_| self.child()).collect()
        }
    }

    fn tell(&mut self, results: &[(Ask, Score)]) {
        self.pop
            .extend(results.iter().map(|(a, s)| (a.clone(), s.scalar())));
        // (μ+λ): parents and offspring compete; stable sort keeps the
        // incumbent on ties, so a generation of clones cannot churn.
        self.pop
            .sort_by(|(_, sa), (_, sb)| sb.partial_cmp(sa).expect("finite scalars"));
        self.pop.truncate(self.mu);
        self.gens_left -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(bips: f64) -> Score {
        Score {
            bips,
            violation: 0.0,
            energy: 0.0,
            penalty: 0.0,
        }
    }

    fn drive(seed: u64) -> Vec<(usize, Vec<f64>)> {
        let mut s = Evolve::new(seed, 3, vec![0, 2, 4], 4, 6, 3, Vec::new());
        let mut trail = Vec::new();
        loop {
            let asks = s.ask();
            if asks.is_empty() {
                break;
            }
            trail.extend(asks.iter().map(|a| (a.policy, a.t.clone())));
            let results: Vec<(Ask, Score)> = asks
                .into_iter()
                .map(|a| {
                    let v = a.t.iter().sum::<f64>();
                    (a, score(v))
                })
                .collect();
            s.tell(&results);
        }
        trail
    }

    #[test]
    fn evolution_is_seed_deterministic() {
        assert_eq!(drive(9), drive(9));
        assert_ne!(drive(9), drive(10));
    }

    #[test]
    fn selection_improves_the_population() {
        let mut s = Evolve::new(3, 2, vec![0], 3, 8, 4, Vec::new());
        let mut last_best = f64::NEG_INFINITY;
        loop {
            let asks = s.ask();
            if asks.is_empty() {
                break;
            }
            let results: Vec<(Ask, Score)> = asks
                .into_iter()
                .map(|a| {
                    let v = a.t.iter().sum::<f64>();
                    (a, score(v))
                })
                .collect();
            s.tell(&results);
            let best = s.pop[0].1;
            assert!(
                best >= last_best,
                "elitism never regresses: {best} < {last_best}"
            );
            last_best = best;
        }
        assert!(last_best > 1.0, "selection climbed toward the top corner");
    }

    #[test]
    fn seeds_enter_the_initial_generation() {
        let anchor = Ask {
            policy: 2,
            t: vec![0.25, 0.75],
            fidelity: None,
        };
        let mut s = Evolve::new(0, 2, vec![0, 2], 2, 3, 1, vec![anchor.clone()]);
        let asks = s.ask();
        assert_eq!(asks.len(), 5);
        assert_eq!(asks[0].policy, anchor.policy);
        assert_eq!(asks[0].t, anchor.t);
        // Children always request full fidelity.
        assert!(asks.iter().all(|a| a.fidelity.is_none()));
    }
}
