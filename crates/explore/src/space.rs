//! The search space: continuous DTM knobs × discrete policies, and the
//! mapping from abstract points to the concrete [`ConfigVariant`]s the
//! sweep harness executes.
//!
//! Strategies navigate in *normalized* coordinates — every knob is a
//! `t ∈ [0, 1]` mapped onto its engineering range (linearly or
//! log-linearly). Concrete values are snapped to six significant
//! digits, so two strategies that land on nearly the same point share
//! one memo entry, one journal row, and one cache cell.

use dtm_core::{DtmConfig, PolicySpec, SimConfig};
use dtm_harness::json::Json;
use dtm_harness::ConfigVariant;

/// One tunable dimension of the search space.
#[derive(Debug, Clone)]
pub struct Knob {
    /// Stable name, matching the wire/journal spelling.
    pub name: &'static str,
    /// Lower bound of the engineering range.
    pub min: f64,
    /// Upper bound of the engineering range.
    pub max: f64,
    /// Sample log-linearly (for ranges spanning decades).
    pub log: bool,
}

impl Knob {
    /// Maps a normalized coordinate `t ∈ [0, 1]` onto the range.
    pub fn value_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        let v = if self.log {
            (self.min.ln() + t * (self.max.ln() - self.min.ln())).exp()
        } else {
            self.min + t * (self.max - self.min)
        };
        snap(v.clamp(self.min, self.max))
    }

    /// The normalized coordinate of an engineering value (inverse of
    /// [`Knob::value_at`], up to snapping).
    pub fn t_of(&self, v: f64) -> f64 {
        let v = v.clamp(self.min, self.max);
        if self.log {
            (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / (self.max - self.min)
        }
    }
}

/// Rounds to six significant digits through the decimal spelling —
/// deterministic, platform-independent, and short in JSON.
pub fn snap(v: f64) -> f64 {
    format!("{v:.5e}").parse().expect("snapped float re-parses")
}

/// One candidate configuration: a policy plus concrete knob values
/// (parallel to [`SearchSpace::knobs`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Index into [`SearchSpace::policies`].
    pub policy: usize,
    /// Snapped engineering values, one per knob.
    pub values: Vec<f64>,
}

/// The exploration domain: knobs, candidate policies, and the base
/// simulation configuration every point shares.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Tunable dimensions.
    pub knobs: Vec<Knob>,
    /// The policy axis (a subset of the paper's 12-policy grid).
    pub policies: Vec<PolicySpec>,
    /// Base simulation configuration (duration, cores, seed, solver).
    pub base_sim: SimConfig,
}

impl SearchSpace {
    /// The paper's knob set: PI gains, trigger/setpoint margins,
    /// stop-go gate duration, migration interval, and control period,
    /// each spanning the plausible engineering range around the Table 3
    /// defaults.
    pub fn paper(base_sim: SimConfig, policies: Vec<PolicySpec>) -> Self {
        SearchSpace {
            knobs: vec![
                Knob {
                    name: "pi_kp",
                    min: 1e-3,
                    max: 0.1,
                    log: true,
                },
                Knob {
                    name: "pi_ki",
                    min: 10.0,
                    max: 2000.0,
                    log: true,
                },
                Knob {
                    name: "setpoint_margin_c",
                    min: 0.5,
                    max: 8.0,
                    log: false,
                },
                Knob {
                    name: "trip_margin_c",
                    min: 0.05,
                    max: 2.0,
                    log: true,
                },
                Knob {
                    name: "stall_s",
                    min: 1e-3,
                    max: 0.1,
                    log: true,
                },
                Knob {
                    name: "migration_interval_s",
                    min: 2e-3,
                    max: 0.1,
                    log: true,
                },
                Knob {
                    name: "os_tick_s",
                    min: 5e-4,
                    max: 0.01,
                    log: true,
                },
            ],
            policies,
            base_sim,
        }
    }

    /// Dimensionality of the continuous part.
    pub fn dims(&self) -> usize {
        self.knobs.len()
    }

    /// The Table 3 default value of each knob, snapped — the anchor
    /// coordinates every search starts from.
    pub fn default_values(&self) -> Vec<f64> {
        let d = DtmConfig::default();
        self.knobs
            .iter()
            .map(|k| {
                let v = match k.name {
                    "pi_kp" => d.pi_kp,
                    "pi_ki" => d.pi_ki,
                    "setpoint_margin_c" => d.dvfs_setpoint_margin,
                    "trip_margin_c" => d.stopgo_trip_margin,
                    "stall_s" => d.stopgo_stall,
                    "migration_interval_s" => d.migration_interval,
                    "os_tick_s" => d.os_tick,
                    other => unreachable!("unknown knob {other}"),
                };
                snap(v.clamp(k.min, k.max))
            })
            .collect()
    }

    /// Builds a concrete point from normalized coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `t` has the wrong dimensionality or `policy` is out of
    /// range.
    pub fn point(&self, policy: usize, t: &[f64]) -> Point {
        assert_eq!(t.len(), self.dims(), "wrong dimensionality");
        assert!(policy < self.policies.len(), "policy index out of range");
        Point {
            policy,
            values: self
                .knobs
                .iter()
                .zip(t)
                .map(|(k, &ti)| k.value_at(ti))
                .collect(),
        }
    }

    /// The normalized coordinates of a concrete point.
    pub fn normalize(&self, p: &Point) -> Vec<f64> {
        self.knobs
            .iter()
            .zip(&p.values)
            .map(|(k, &v)| k.t_of(v))
            .collect()
    }

    /// The [`DtmConfig`] a point denotes. The migration interval is
    /// clamped up to the control period (the engine requires at least
    /// one OS tick between migration decisions), deterministically, so
    /// every point in the box is feasible.
    pub fn dtm_for(&self, p: &Point) -> DtmConfig {
        let mut dtm = DtmConfig::default();
        for (k, &v) in self.knobs.iter().zip(&p.values) {
            match k.name {
                "pi_kp" => dtm.pi_kp = v,
                "pi_ki" => dtm.pi_ki = v,
                "setpoint_margin_c" => dtm.dvfs_setpoint_margin = v,
                "trip_margin_c" => dtm.stopgo_trip_margin = v,
                "stall_s" => dtm.stopgo_stall = v,
                "migration_interval_s" => dtm.migration_interval = v,
                "os_tick_s" => dtm.os_tick = v,
                other => unreachable!("unknown knob {other}"),
            }
        }
        if dtm.migration_interval < dtm.os_tick {
            dtm.migration_interval = dtm.os_tick;
        }
        dtm
    }

    /// The sweep-harness variant a point denotes. The variant name is
    /// the point's memo key, so ledger and cache describe records stay
    /// attributable to exploration coordinates.
    pub fn variant_for(&self, p: &Point) -> ConfigVariant {
        ConfigVariant::new(self.memo_key(p), self.base_sim.clone(), self.dtm_for(p))
    }

    /// A deterministic, human-readable identity for a point:
    /// `policy|knob=value|…` with shortest-round-trip float spellings.
    /// Equal keys ⇔ equal simulated configurations.
    pub fn memo_key(&self, p: &Point) -> String {
        let mut s = self.policies[p.policy].wire_name();
        for (k, &v) in self.knobs.iter().zip(&p.values) {
            s.push('|');
            s.push_str(k.name);
            s.push('=');
            s.push_str(&Json::f64(v).emit());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::paper(SimConfig::fast_test(), PolicySpec::all())
    }

    #[test]
    fn knob_mapping_round_trips() {
        for k in &space().knobs {
            for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let v = k.value_at(t);
                assert!((k.min..=k.max).contains(&v), "{}: {v}", k.name);
                let back = k.value_at(k.t_of(v));
                assert!(
                    (back - v).abs() <= 1e-9 * v.abs().max(1.0),
                    "{}: {v} vs {back}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn default_point_is_the_paper_config() {
        let s = space();
        let p = Point {
            policy: 0,
            values: s.default_values(),
        };
        let dtm = s.dtm_for(&p);
        // Snapping must not perturb the Table 3 defaults (they are all
        // short decimals), so the anchor still hits pre-PR-8 cache keys.
        assert_eq!(dtm, DtmConfig::default());
        assert!(!dtm.has_tuned_gains());
    }

    #[test]
    fn memo_keys_identify_configs() {
        let s = space();
        let a = s.point(0, &vec![0.5; s.dims()]);
        let b = s.point(0, &vec![0.5; s.dims()]);
        let c = s.point(1, &vec![0.5; s.dims()]);
        assert_eq!(s.memo_key(&a), s.memo_key(&b));
        assert_ne!(s.memo_key(&a), s.memo_key(&c));
        assert!(s.memo_key(&a).starts_with(&s.policies[0].wire_name()));
    }

    #[test]
    fn infeasible_migration_interval_is_clamped() {
        let s = space();
        let mut t = vec![0.5; s.dims()];
        // migration interval at its minimum, os tick at its maximum.
        t[5] = 0.0;
        t[6] = 1.0;
        let dtm = s.dtm_for(&s.point(0, &t));
        assert!(dtm.migration_interval >= dtm.os_tick);
        dtm.validate();
    }

    #[test]
    fn snap_is_idempotent_and_stable() {
        for v in [0.0107, 248.5, 1.0 / 3.0, 2.399999999] {
            let s1 = snap(v);
            assert_eq!(s1, snap(s1));
            assert_eq!(Json::f64(s1).emit(), Json::f64(snap(s1)).emit());
        }
        assert_eq!(snap(0.0107), 0.0107);
        assert_eq!(snap(248.5), 248.5);
    }
}
