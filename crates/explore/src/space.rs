//! The search space: continuous DTM knobs × discrete policies, and the
//! mapping from abstract points to the concrete [`ConfigVariant`]s the
//! sweep harness executes.
//!
//! Strategies navigate in *normalized* coordinates — every knob is a
//! `t ∈ [0, 1]` mapped onto its engineering range (linearly or
//! log-linearly). Concrete values are snapped to six significant
//! digits, so two strategies that land on nearly the same point share
//! one memo entry, one journal row, and one cache cell.

use dtm_core::{DtmConfig, GainScheduleConfig, PolicySpec, SimConfig};
use dtm_harness::json::Json;
use dtm_harness::ConfigVariant;

/// One gain-schedule arm of the search: which DVFS controller family a
/// point runs. `Fixed` is the paper's clipped PI; the adaptive arms
/// give the schedule's parameters to the `adapt_*` knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleChoice {
    /// The paper's fixed-gain clipped PI.
    Fixed,
    /// Rao-style adjustable-gain law (knobs: `adapt_rate` → `alpha`,
    /// `adapt_window_s` → `tau_s`).
    Rao,
    /// Windowed self-tuning (knobs: `adapt_rate` → `rate` via
    /// `v/(1+v)`, `adapt_window_s` → `window_s`).
    SelfTune,
}

impl ScheduleChoice {
    /// Stable wire spelling, matching the serve protocol.
    pub fn wire_name(self) -> &'static str {
        match self {
            ScheduleChoice::Fixed => "fixed",
            ScheduleChoice::Rao => "rao",
            ScheduleChoice::SelfTune => "selftune",
        }
    }
}

/// Whether a knob only parameterizes adaptive gain schedules (and so
/// is inert — and elided from memo keys — on the `Fixed` arm).
pub fn is_adaptive_knob(name: &str) -> bool {
    matches!(name, "adapt_rate" | "adapt_window_s")
}

/// One tunable dimension of the search space.
#[derive(Debug, Clone)]
pub struct Knob {
    /// Stable name, matching the wire/journal spelling.
    pub name: &'static str,
    /// Lower bound of the engineering range.
    pub min: f64,
    /// Upper bound of the engineering range.
    pub max: f64,
    /// Sample log-linearly (for ranges spanning decades).
    pub log: bool,
}

impl Knob {
    /// Maps a normalized coordinate `t ∈ [0, 1]` onto the range.
    pub fn value_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        let v = if self.log {
            (self.min.ln() + t * (self.max.ln() - self.min.ln())).exp()
        } else {
            self.min + t * (self.max - self.min)
        };
        snap(v.clamp(self.min, self.max))
    }

    /// The normalized coordinate of an engineering value (inverse of
    /// [`Knob::value_at`], up to snapping).
    pub fn t_of(&self, v: f64) -> f64 {
        let v = v.clamp(self.min, self.max);
        if self.log {
            (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / (self.max - self.min)
        }
    }
}

/// Rounds to six significant digits through the decimal spelling —
/// deterministic, platform-independent, and short in JSON.
pub fn snap(v: f64) -> f64 {
    format!("{v:.5e}").parse().expect("snapped float re-parses")
}

/// One candidate configuration: a policy plus concrete knob values
/// (parallel to [`SearchSpace::knobs`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Index into [`SearchSpace::policies`].
    pub policy: usize,
    /// Index into [`SearchSpace::schedules`].
    pub schedule: usize,
    /// Snapped engineering values, one per knob.
    pub values: Vec<f64>,
}

/// The exploration domain: knobs, candidate policies, and the base
/// simulation configuration every point shares.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Tunable dimensions.
    pub knobs: Vec<Knob>,
    /// The policy axis (a subset of the paper's 12-policy grid).
    pub policies: Vec<PolicySpec>,
    /// The gain-schedule axis (`Fixed` first, so arm indices below
    /// `policies.len()` reproduce the pre-adaptive search verbatim).
    pub schedules: Vec<ScheduleChoice>,
    /// Base simulation configuration (duration, cores, seed, solver).
    pub base_sim: SimConfig,
}

impl SearchSpace {
    /// The paper's knob set: PI gains, trigger/setpoint margins,
    /// stop-go gate duration, migration interval, and control period,
    /// each spanning the plausible engineering range around the Table 3
    /// defaults.
    pub fn paper(base_sim: SimConfig, policies: Vec<PolicySpec>) -> Self {
        SearchSpace {
            knobs: vec![
                Knob {
                    name: "pi_kp",
                    min: 1e-3,
                    max: 0.1,
                    log: true,
                },
                Knob {
                    name: "pi_ki",
                    min: 10.0,
                    max: 2000.0,
                    log: true,
                },
                Knob {
                    name: "setpoint_margin_c",
                    min: 0.5,
                    max: 8.0,
                    log: false,
                },
                Knob {
                    name: "trip_margin_c",
                    min: 0.05,
                    max: 2.0,
                    log: true,
                },
                Knob {
                    name: "stall_s",
                    min: 1e-3,
                    max: 0.1,
                    log: true,
                },
                Knob {
                    name: "migration_interval_s",
                    min: 2e-3,
                    max: 0.1,
                    log: true,
                },
                Knob {
                    name: "os_tick_s",
                    min: 5e-4,
                    max: 0.01,
                    log: true,
                },
            ],
            policies,
            schedules: vec![ScheduleChoice::Fixed],
            base_sim,
        }
    }

    /// The paper space widened with the adaptive-controller arms: every
    /// gain schedule becomes a discrete axis and two knobs parameterize
    /// the adaptation (strength and window). The `Fixed` arm ignores
    /// both knobs, so its points — and their memo keys, journal rows,
    /// and cache cells — are exactly the ones [`SearchSpace::paper`]
    /// produces.
    pub fn paper_adaptive(base_sim: SimConfig, policies: Vec<PolicySpec>) -> Self {
        let mut s = SearchSpace::paper(base_sim, policies);
        s.schedules = vec![
            ScheduleChoice::Fixed,
            ScheduleChoice::Rao,
            ScheduleChoice::SelfTune,
        ];
        s.knobs.push(Knob {
            name: "adapt_rate",
            min: 0.05,
            max: 2.0,
            log: true,
        });
        s.knobs.push(Knob {
            name: "adapt_window_s",
            min: 2e-4,
            max: 2e-2,
            log: true,
        });
        s
    }

    /// Dimensionality of the continuous part.
    pub fn dims(&self) -> usize {
        self.knobs.len()
    }

    /// Number of discrete arms: every (schedule, policy) pair. Arm `a`
    /// decodes as schedule `a / policies.len()`, policy
    /// `a % policies.len()`, so arms below `policies.len()` are the
    /// fixed-gain policies in order — strategies written against the
    /// pre-adaptive policy axis keep their exact meaning.
    pub fn arms(&self) -> usize {
        self.schedules.len() * self.policies.len()
    }

    /// The Table 3 default value of each knob, snapped — the anchor
    /// coordinates every search starts from.
    pub fn default_values(&self) -> Vec<f64> {
        let d = DtmConfig::default();
        self.knobs
            .iter()
            .map(|k| {
                let v = match k.name {
                    "pi_kp" => d.pi_kp,
                    "pi_ki" => d.pi_ki,
                    "setpoint_margin_c" => d.dvfs_setpoint_margin,
                    "trip_margin_c" => d.stopgo_trip_margin,
                    "stall_s" => d.stopgo_stall,
                    "migration_interval_s" => d.migration_interval,
                    "os_tick_s" => d.os_tick,
                    // Adaptation anchors: unit strength, one control
                    // window of the paper's outer loop.
                    "adapt_rate" => 1.0,
                    "adapt_window_s" => 2e-3,
                    other => unreachable!("unknown knob {other}"),
                };
                snap(v.clamp(k.min, k.max))
            })
            .collect()
    }

    /// Builds a concrete point from normalized coordinates. `arm`
    /// indexes the flattened (schedule, policy) grid (see
    /// [`SearchSpace::arms`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` has the wrong dimensionality or `arm` is out of
    /// range.
    pub fn point(&self, arm: usize, t: &[f64]) -> Point {
        assert_eq!(t.len(), self.dims(), "wrong dimensionality");
        assert!(arm < self.arms(), "arm index out of range");
        Point {
            policy: arm % self.policies.len(),
            schedule: arm / self.policies.len(),
            values: self
                .knobs
                .iter()
                .zip(t)
                .map(|(k, &ti)| k.value_at(ti))
                .collect(),
        }
    }

    /// The normalized coordinates of a concrete point.
    pub fn normalize(&self, p: &Point) -> Vec<f64> {
        self.knobs
            .iter()
            .zip(&p.values)
            .map(|(k, &v)| k.t_of(v))
            .collect()
    }

    /// The [`DtmConfig`] a point denotes. The migration interval is
    /// clamped up to the control period (the engine requires at least
    /// one OS tick between migration decisions), deterministically, so
    /// every point in the box is feasible.
    pub fn dtm_for(&self, p: &Point) -> DtmConfig {
        let mut dtm = DtmConfig::default();
        let mut adapt_rate = 1.0;
        let mut adapt_window_s = 2e-3;
        for (k, &v) in self.knobs.iter().zip(&p.values) {
            match k.name {
                "pi_kp" => dtm.pi_kp = v,
                "pi_ki" => dtm.pi_ki = v,
                "setpoint_margin_c" => dtm.dvfs_setpoint_margin = v,
                "trip_margin_c" => dtm.stopgo_trip_margin = v,
                "stall_s" => dtm.stopgo_stall = v,
                "migration_interval_s" => dtm.migration_interval = v,
                "os_tick_s" => dtm.os_tick = v,
                "adapt_rate" => adapt_rate = v,
                "adapt_window_s" => adapt_window_s = v,
                other => unreachable!("unknown knob {other}"),
            }
        }
        if dtm.migration_interval < dtm.os_tick {
            dtm.migration_interval = dtm.os_tick;
        }
        dtm.gain_schedule = match self.schedules[p.schedule] {
            ScheduleChoice::Fixed => GainScheduleConfig::Fixed,
            ScheduleChoice::Rao => GainScheduleConfig::Rao {
                alpha: adapt_rate,
                tau_s: adapt_window_s,
            },
            // The knob spans (0, 2]; the self-tuning rate must sit in
            // [0, 1), so squash through v/(1+v) (snapped, to keep the
            // wire spelling short and the dist round-trip exact).
            ScheduleChoice::SelfTune => GainScheduleConfig::SelfTuning {
                rate: snap(adapt_rate / (1.0 + adapt_rate)),
                window_s: adapt_window_s,
            },
        };
        dtm
    }

    /// The sweep-harness variant a point denotes. The variant name is
    /// the point's memo key, so ledger and cache describe records stay
    /// attributable to exploration coordinates.
    pub fn variant_for(&self, p: &Point) -> ConfigVariant {
        ConfigVariant::new(self.memo_key(p), self.base_sim.clone(), self.dtm_for(p))
    }

    /// A deterministic, human-readable identity for a point:
    /// `policy|knob=value|…` with shortest-round-trip float spellings,
    /// plus a trailing `|schedule=<name>` on adaptive arms. Fixed-arm
    /// points elide the (inert) adaptation knobs, so two points that
    /// simulate identically share one key — and fixed-arm keys are
    /// byte-identical to the pre-adaptive spelling.
    /// Equal keys ⇔ equal simulated configurations.
    pub fn memo_key(&self, p: &Point) -> String {
        let fixed = self.schedules[p.schedule] == ScheduleChoice::Fixed;
        let mut s = self.policies[p.policy].wire_name();
        for (k, &v) in self.knobs.iter().zip(&p.values) {
            if fixed && is_adaptive_knob(k.name) {
                continue;
            }
            s.push('|');
            s.push_str(k.name);
            s.push('=');
            s.push_str(&Json::f64(v).emit());
        }
        if !fixed {
            s.push_str("|schedule=");
            s.push_str(self.schedules[p.schedule].wire_name());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::paper(SimConfig::fast_test(), PolicySpec::all())
    }

    #[test]
    fn knob_mapping_round_trips() {
        for k in &space().knobs {
            for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let v = k.value_at(t);
                assert!((k.min..=k.max).contains(&v), "{}: {v}", k.name);
                let back = k.value_at(k.t_of(v));
                assert!(
                    (back - v).abs() <= 1e-9 * v.abs().max(1.0),
                    "{}: {v} vs {back}",
                    k.name
                );
            }
        }
    }

    #[test]
    fn default_point_is_the_paper_config() {
        let s = space();
        let p = Point {
            policy: 0,
            schedule: 0,
            values: s.default_values(),
        };
        let dtm = s.dtm_for(&p);
        // Snapping must not perturb the Table 3 defaults (they are all
        // short decimals), so the anchor still hits pre-PR-8 cache keys.
        assert_eq!(dtm, DtmConfig::default());
        assert!(!dtm.has_tuned_gains());
    }

    #[test]
    fn memo_keys_identify_configs() {
        let s = space();
        let a = s.point(0, &vec![0.5; s.dims()]);
        let b = s.point(0, &vec![0.5; s.dims()]);
        let c = s.point(1, &vec![0.5; s.dims()]);
        assert_eq!(s.memo_key(&a), s.memo_key(&b));
        assert_ne!(s.memo_key(&a), s.memo_key(&c));
        assert!(s.memo_key(&a).starts_with(&s.policies[0].wire_name()));
    }

    #[test]
    fn infeasible_migration_interval_is_clamped() {
        let s = space();
        let mut t = vec![0.5; s.dims()];
        // migration interval at its minimum, os tick at its maximum.
        t[5] = 0.0;
        t[6] = 1.0;
        let dtm = s.dtm_for(&s.point(0, &t));
        assert!(dtm.migration_interval >= dtm.os_tick);
        dtm.validate();
    }

    fn adaptive_space() -> SearchSpace {
        SearchSpace::paper_adaptive(SimConfig::fast_test(), PolicySpec::all())
    }

    #[test]
    fn adaptive_space_extends_without_perturbing_fixed_arms() {
        let s = space();
        let a = adaptive_space();
        assert_eq!(a.arms(), 3 * a.policies.len());
        assert_eq!(a.dims(), s.dims() + 2);

        // A fixed-arm point in the adaptive space keys and resolves
        // exactly like the paper space (adaptation knobs inert).
        let fixed = Point {
            policy: 2,
            schedule: 0,
            values: a.default_values(),
        };
        let paper = Point {
            policy: 2,
            schedule: 0,
            values: s.default_values(),
        };
        assert_eq!(a.memo_key(&fixed), s.memo_key(&paper));
        assert_eq!(a.dtm_for(&fixed), s.dtm_for(&paper));
        assert_eq!(a.dtm_for(&fixed), DtmConfig::default());

        // Varying only an adaptation knob on the fixed arm changes
        // neither the key nor the config — one memo entry per distinct
        // simulation.
        let mut t = a.normalize(&fixed);
        let rate_dim = a.knobs.iter().position(|k| k.name == "adapt_rate").unwrap();
        t[rate_dim] = 1.0;
        let moved = a.point(2, &t);
        assert_eq!(a.memo_key(&moved), a.memo_key(&fixed));
        assert_eq!(a.dtm_for(&moved), a.dtm_for(&fixed));
    }

    #[test]
    fn adaptive_arms_decode_and_resolve_schedules() {
        let a = adaptive_space();
        let np = a.policies.len();
        let t = a.normalize(&Point {
            policy: 0,
            schedule: 0,
            values: a.default_values(),
        });

        // Arm np + 1 is (Rao, policy 1); the default adaptation knobs
        // land on the Rao defaults.
        let rao = a.point(np + 1, &t);
        assert_eq!((rao.schedule, rao.policy), (1, 1));
        let dtm = a.dtm_for(&rao);
        assert_eq!(dtm.gain_schedule, GainScheduleConfig::rao_default());
        assert!(a.memo_key(&rao).ends_with("|schedule=rao"));
        assert!(a.memo_key(&rao).contains("|adapt_rate="));
        dtm.validate();

        // Arm 2·np is (SelfTune, policy 0); the rate knob squashes into
        // [0, 1).
        let st = a.point(2 * np, &t);
        assert_eq!((st.schedule, st.policy), (2, 0));
        let dtm = a.dtm_for(&st);
        match dtm.gain_schedule {
            GainScheduleConfig::SelfTuning { rate, window_s } => {
                assert!((rate - 0.5).abs() < 1e-12);
                assert!((window_s - 2e-3).abs() < 1e-15);
            }
            other => panic!("expected SelfTuning, got {other:?}"),
        }
        assert!(a.memo_key(&st).ends_with("|schedule=selftune"));
        dtm.validate();

        // Every arm across the whole grid yields a valid config.
        for arm in 0..a.arms() {
            a.dtm_for(&a.point(arm, &t)).validate();
        }
    }

    #[test]
    fn snap_is_idempotent_and_stable() {
        for v in [0.0107, 248.5, 1.0 / 3.0, 2.399999999] {
            let s1 = snap(v);
            assert_eq!(s1, snap(s1));
            assert_eq!(Json::f64(s1).emit(), Json::f64(snap(s1)).emit());
        }
        assert_eq!(snap(0.0107), 0.0107);
        assert_eq!(snap(248.5), 248.5);
    }
}
