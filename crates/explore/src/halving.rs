//! Latin-hypercube seeding with successive halving.
//!
//! Round 0 covers the box with a Latin-hypercube sample evaluated at
//! the cheapest fidelity (a single workload). Each subsequent round
//! keeps the scalar-best `1/η` of the survivors and doubles the
//! fidelity, until the final round runs the remaining elite on the full
//! workload set. Classic successive halving: breadth where evaluations
//! are cheap, depth only where the evidence warrants it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::score::Score;
use crate::strategy::{Ask, Strategy};

/// Successive-halving over a Latin-hypercube seed sample.
#[derive(Debug)]
pub struct LhsHalving {
    rng: StdRng,
    dims: usize,
    policies: Vec<usize>,
    rounds: u32,
    round: u32,
    eta: usize,
    n0: usize,
    survivors: Vec<Ask>,
    asked: bool,
}

impl LhsHalving {
    /// `n0` initial samples over `dims` knobs, spread round-robin over
    /// `policies`, halved (`eta = 2`) for `rounds` rounds. Fidelity for
    /// round `r` is `2^r` workloads; the last round always runs full
    /// fidelity.
    pub fn new(seed: u64, dims: usize, policies: Vec<usize>, n0: usize, rounds: u32) -> Self {
        assert!(n0 >= 1, "need at least one sample");
        assert!(rounds >= 1, "need at least one round");
        assert!(!policies.is_empty(), "need at least one policy");
        LhsHalving {
            rng: StdRng::seed_from_u64(seed),
            dims,
            policies,
            rounds,
            round: 0,
            eta: 2,
            n0,
            survivors: Vec::new(),
            asked: false,
        }
    }

    fn fidelity_for(&self, round: u32) -> Option<usize> {
        if round + 1 >= self.rounds {
            None // full workload set
        } else {
            Some(1usize << round)
        }
    }

    /// A stratified sample: each dimension is a random permutation of
    /// the `n0` strata, each coordinate uniform within its stratum.
    fn lhs(&mut self) -> Vec<Vec<f64>> {
        let n = self.n0;
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(self.dims);
        for _ in 0..self.dims {
            let mut strata: Vec<usize> = (0..n).collect();
            // Fisher–Yates, driven by the seeded generator.
            for i in (1..n).rev() {
                let j = self.rng.random_range(0..i + 1);
                strata.swap(i, j);
            }
            columns.push(
                strata
                    .into_iter()
                    .map(|s| (s as f64 + self.rng.random::<f64>()) / n as f64)
                    .collect(),
            );
        }
        (0..n)
            .map(|i| columns.iter().map(|c| c[i]).collect())
            .collect()
    }
}

impl Strategy for LhsHalving {
    fn name(&self) -> &'static str {
        "lhs-halving"
    }

    fn ask(&mut self) -> Vec<Ask> {
        if self.round >= self.rounds {
            return Vec::new();
        }
        let asks = if self.round == 0 {
            let fidelity = self.fidelity_for(0);
            self.lhs()
                .into_iter()
                .enumerate()
                .map(|(i, t)| Ask {
                    policy: self.policies[i % self.policies.len()],
                    t,
                    fidelity,
                })
                .collect()
        } else {
            // Survivors re-evaluated at this round's higher fidelity.
            let fidelity = self.fidelity_for(self.round);
            self.survivors
                .iter()
                .map(|a| Ask {
                    policy: a.policy,
                    t: a.t.clone(),
                    fidelity,
                })
                .collect()
        };
        self.asked = true;
        asks
    }

    fn tell(&mut self, results: &[(Ask, Score)]) {
        assert!(self.asked, "tell without ask");
        self.asked = false;
        let mut ranked: Vec<(usize, f64)> = results
            .iter()
            .enumerate()
            .map(|(i, (_, s))| (i, s.scalar()))
            .collect();
        // Descending by scalar; index breaks ties deterministically.
        ranked.sort_by(|(ia, sa), (ib, sb)| {
            sb.partial_cmp(sa).expect("finite scalars").then(ia.cmp(ib))
        });
        let keep = results.len().div_ceil(self.eta).max(1);
        self.survivors = ranked
            .into_iter()
            .take(keep)
            .map(|(i, _)| results[i].0.clone())
            .collect();
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(bips: f64) -> Score {
        Score {
            bips,
            violation: 0.0,
            energy: 0.0,
            penalty: 0.0,
        }
    }

    #[test]
    fn lhs_is_stratified_per_dimension() {
        let mut s = LhsHalving::new(7, 3, vec![0], 8, 1);
        let asks = s.ask();
        assert_eq!(asks.len(), 8);
        for d in 0..3 {
            let mut strata: Vec<usize> = asks.iter().map(|a| (a.t[d] * 8.0) as usize).collect();
            strata.sort_unstable();
            assert_eq!(strata, (0..8).collect::<Vec<_>>(), "dim {d} not stratified");
        }
        // A single round runs straight at full fidelity.
        assert!(asks.iter().all(|a| a.fidelity.is_none()));
    }

    #[test]
    fn halving_keeps_the_best_and_escalates_fidelity() {
        let mut s = LhsHalving::new(1, 2, vec![0, 1], 8, 3);
        let round0 = s.ask();
        assert_eq!(round0.len(), 8);
        assert!(round0.iter().all(|a| a.fidelity == Some(1)));
        // Score by first coordinate, so survivors are the top-t half.
        let results: Vec<(Ask, Score)> = round0
            .into_iter()
            .map(|a| {
                let v = a.t[0];
                (a, score(v))
            })
            .collect();
        let mut best: Vec<f64> = results.iter().map(|(a, _)| a.t[0]).collect();
        best.sort_by(|a, b| b.partial_cmp(a).unwrap());
        s.tell(&results);

        let round1 = s.ask();
        assert_eq!(round1.len(), 4);
        assert!(round1.iter().all(|a| a.fidelity == Some(2)));
        let mut kept: Vec<f64> = round1.iter().map(|a| a.t[0]).collect();
        kept.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(kept, best[..4].to_vec());

        let results: Vec<(Ask, Score)> = round1
            .into_iter()
            .map(|a| {
                let v = a.t[0];
                (a, score(v))
            })
            .collect();
        s.tell(&results);

        let round2 = s.ask();
        assert_eq!(round2.len(), 2);
        assert!(round2.iter().all(|a| a.fidelity.is_none()), "final = full");
        let results: Vec<(Ask, Score)> = round2
            .into_iter()
            .map(|a| {
                let v = a.t[0];
                (a, score(v))
            })
            .collect();
        s.tell(&results);
        assert!(s.ask().is_empty(), "exhausted after the last round");
    }

    #[test]
    fn same_seed_same_sample() {
        let asks = |seed| {
            let mut s = LhsHalving::new(seed, 4, vec![0, 5], 6, 2);
            s.ask()
                .into_iter()
                .map(|a| (a.policy, a.t))
                .collect::<Vec<_>>()
        };
        assert_eq!(asks(42), asks(42));
        assert_ne!(asks(42), asks(43));
    }
}
