//! # dtm-explore — deterministic policy-space exploration
//!
//! The paper fixes its DTM control parameters (Table 3) and compares
//! twelve policies on that single operating point. This crate asks the
//! follow-up question the paper leaves open: *how much of the ranking
//! is an artifact of the chosen knobs?* It searches the joint space of
//! policy × control parameters — PI gains, DVFS setpoint and stop-go
//! trip margins, gate duration, migration interval, control period —
//! and maintains the Pareto front over throughput, thermal violation,
//! energy, and fault-robustness.
//!
//! ## Architecture
//!
//! ```text
//! Strategy (ask/tell)  ──►  Explorer  ──►  SweepRunner backend seam
//!   coordinate descent        │  memo          (local or --dist)
//!   LHS + halving             │  journal  results/explore.jsonl
//!   (μ+λ) evolution           ▼
//!                        ParetoFront  ──►  results/EXPLORE_pareto.json
//! ```
//!
//! - [`SearchSpace`] maps normalized points to [`ConfigVariant`]s, so
//!   every evaluation flows through the ordinary sweep harness and its
//!   content-addressed result cache.
//! - [`Strategy`] implementations are pure, seeded state machines:
//!   same seed, same proposals, bit for bit.
//! - The [`Explorer`] memoizes evaluations by snapped identity and
//!   journals fresh scores; re-running an interrupted search replays
//!   the journal without re-simulating a single cell.
//! - Only full-fidelity evaluations (the whole workload set) enter the
//!   [`ParetoFront`]; halving rungs are guidance only.
//!
//! [`ConfigVariant`]: dtm_harness::ConfigVariant

pub mod engine;
pub mod evolve;
pub mod halving;
pub mod journal;
pub mod pareto;
pub mod roster;
pub mod score;
pub mod space;
pub mod strategy;

pub use engine::{Anchor, ExploreReport, Explorer, FrontRow, GenSummary};
pub use evolve::Evolve;
pub use halving::LhsHalving;
pub use journal::{eval_key, Journal};
pub use pareto::{Entry, ParetoFront};
pub use roster::standard_roster;
pub use score::Score;
pub use space::{is_adaptive_knob, snap, Knob, Point, ScheduleChoice, SearchSpace};
pub use strategy::{Ask, CoordinateDescent, Strategy};
