//! The standard strategy roster the exploration binaries (and the
//! golden-front regression test) share: breadth (Latin-hypercube +
//! successive halving) seeds the box, coordinate descent polishes the
//! headline policies, and (μ+λ) evolution hunts cross-arm trades.
//!
//! Keeping the roster in the library — rather than copied into each
//! binary — is what lets a test pin the exact search trajectory a
//! binary runs: same space, seed, and budget ⇒ same roster ⇒ same
//! asks, bit for bit.

use dtm_core::PolicySpec;

use crate::evolve::Evolve;
use crate::halving::LhsHalving;
use crate::space::SearchSpace;
use crate::strategy::{Ask, CoordinateDescent, Strategy};

/// Builds the standard roster over `space`. Seeds are derived from the
/// base seed so the roster stays jointly deterministic; discrete
/// choices range over every (schedule, policy) arm, which for a
/// single-schedule space is exactly the pre-adaptive policy axis.
pub fn standard_roster(
    seed: u64,
    space: &SearchSpace,
    n0: usize,
    gens: u32,
) -> Vec<Box<dyn Strategy>> {
    let dims = space.dims();
    let all: Vec<usize> = (0..space.arms()).collect();
    let start: Vec<f64> = {
        let defaults = space.default_values();
        space
            .knobs
            .iter()
            .zip(&defaults)
            .map(|(k, &v)| k.t_of(v))
            .collect()
    };
    // Polish the paper's headline policies on the fixed-gain arm — the
    // best two-loop design first (it sets the fixed-grid incumbent the
    // front is measured against), then the stop-go baseline — if they
    // are on the axis. Fixed-arm indices equal policy indices because
    // the schedule axis keeps `Fixed` first.
    let polish: Vec<usize> = {
        let mut v = Vec::new();
        for wanted in [PolicySpec::best(), PolicySpec::baseline()] {
            if let Some(i) = space.policies.iter().position(|p| *p == wanted) {
                v.push(i);
            }
        }
        if v.is_empty() {
            v.push(0);
        }
        v
    };
    let anchor_seeds: Vec<Ask> = all
        .iter()
        .map(|&policy| Ask {
            policy,
            t: start.clone(),
            fidelity: None,
        })
        .collect();
    vec![
        Box::new(LhsHalving::new(seed ^ 1, dims, all.clone(), n0, 3)),
        Box::new(CoordinateDescent::new(start, polish, 3, 1)),
        Box::new(Evolve::new(seed ^ 2, dims, all, 4, 8, gens, anchor_seeds)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_core::SimConfig;

    #[test]
    fn roster_is_deterministic_and_spans_every_arm() {
        let space = SearchSpace::paper_adaptive(SimConfig::fast_test(), PolicySpec::all());
        let run = || {
            let mut asked = Vec::new();
            for s in &mut standard_roster(7, &space, 8, 2) {
                let g = s.ask();
                asked.extend(g.iter().map(|a| (a.policy, a.t.clone())));
                // One generation per strategy is enough to fingerprint
                // the trajectory (tell() feedback is score-driven).
            }
            asked
        };
        let a = run();
        assert_eq!(a, run());
        assert!(
            a.iter()
                .all(|(arm, t)| *arm < space.arms() && t.len() == space.dims()),
            "every ask stays inside the arm grid and dimensionality"
        );
    }

    #[test]
    fn single_schedule_roster_matches_the_policy_axis() {
        // For the paper space the arm grid *is* the policy axis, so the
        // roster reproduces the pre-adaptive search shape exactly.
        let space = SearchSpace::paper(SimConfig::fast_test(), PolicySpec::all());
        assert_eq!(space.arms(), space.policies.len());
        for s in &mut standard_roster(42, &space, 8, 2) {
            for a in s.ask() {
                assert!(a.policy < space.policies.len());
            }
        }
    }
}
