//! Multi-objective scoring of one evaluated point.
//!
//! Four objectives, aggregated over the workloads a point was
//! evaluated on: throughput (maximize), thermal violation (minimize,
//! in second·degrees against the configured threshold), energy
//! (minimize), and a fault-robustness penalty (minimize; zero for
//! ideal-sensor runs). Scores are pure functions of `RunResult`s, so a
//! journal row replays to the bit.

use dtm_core::RunResult;
use dtm_harness::json::Json;

/// The objective vector of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Mean instruction throughput across workloads (BIPS; maximize).
    pub bips: f64,
    /// Summed thermal-violation exposure (s·°C; minimize): sensor
    /// emergency time weighted by peak excess over the threshold, plus
    /// the true-temperature violation the robustness metrics expose
    /// under faults.
    pub violation: f64,
    /// Mean chip energy per workload run (J; minimize).
    pub energy: f64,
    /// Fault-robustness penalty (s; minimize): time burned throttling
    /// on lies plus time parked in watchdog fallback.
    pub penalty: f64,
}

impl Score {
    /// Scores a point from its per-workload runs, against the thermal
    /// threshold the point's config used.
    ///
    /// # Panics
    ///
    /// Panics on an empty run set.
    pub fn of_runs(runs: &[RunResult], threshold: f64) -> Score {
        assert!(!runs.is_empty(), "cannot score zero runs");
        let n = runs.len() as f64;
        let mut bips = 0.0;
        let mut violation = 0.0;
        let mut energy = 0.0;
        let mut penalty = 0.0;
        for r in runs {
            bips += r.bips();
            let excess = (r.max_temp - threshold).max(0.0);
            violation += r.emergency_time * excess
                + r.robustness.violation_time * r.robustness.peak_overshoot;
            energy += r.energy;
            penalty += r.robustness.false_throttle_time + r.robustness.fallback_time;
        }
        Score {
            bips: bips / n,
            violation,
            energy: energy / n,
            penalty,
        }
    }

    /// Pareto dominance over all four objectives: at least as good in
    /// every one, strictly better in at least one.
    pub fn dominates(&self, other: &Score) -> bool {
        let ge = self.bips >= other.bips
            && self.violation <= other.violation
            && self.energy <= other.energy
            && self.penalty <= other.penalty;
        let gt = self.bips > other.bips
            || self.violation < other.violation
            || self.energy < other.energy
            || self.penalty < other.penalty;
        ge && gt
    }

    /// Dominance restricted to the paper's headline plane
    /// (throughput, violation) — the axis pair the acceptance
    /// comparison against the fixed 12-policy grid uses.
    pub fn dominates_on_bips_violation(&self, other: &Score) -> bool {
        (self.bips >= other.bips && self.violation <= other.violation)
            && (self.bips > other.bips || self.violation < other.violation)
    }

    /// Scalarization for search *guidance* only (archive membership is
    /// decided by dominance, never by this number): throughput minus
    /// weighted violation/energy/penalty terms scaled to comparable
    /// magnitudes.
    pub fn scalar(&self) -> f64 {
        self.bips - 50.0 * self.violation - 0.02 * self.energy - 10.0 * self.penalty
    }

    /// Journal encoding (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bips".into(), Json::f64(self.bips)),
            ("violation".into(), Json::f64(self.violation)),
            ("energy".into(), Json::f64(self.energy)),
            ("penalty".into(), Json::f64(self.penalty)),
        ])
    }

    /// Journal decoding.
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Score, String> {
        let f = |name: &str| -> Result<f64, String> {
            v.field(name)
                .and_then(|x| x.as_f64())
                .map_err(|e| format!("bad score field `{name}`: {e}"))
        };
        Ok(Score {
            bips: f("bips")?,
            violation: f("violation")?,
            energy: f("energy")?,
            penalty: f("penalty")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bips: f64, violation: f64, energy: f64, penalty: f64) -> Score {
        Score {
            bips,
            violation,
            energy,
            penalty,
        }
    }

    #[test]
    fn dominance_requires_strictness_somewhere() {
        let a = s(5.0, 0.0, 10.0, 0.0);
        assert!(!a.dominates(&a), "nothing dominates itself");
        assert!(s(6.0, 0.0, 10.0, 0.0).dominates(&a));
        assert!(a.dominates(&s(5.0, 0.1, 10.0, 0.0)));
        // Trade-offs are incomparable.
        let b = s(6.0, 0.5, 10.0, 0.0);
        assert!(!a.dominates(&b) && !b.dominates(&a));
    }

    #[test]
    fn headline_plane_ignores_energy() {
        let a = s(5.0, 0.0, 10.0, 0.0);
        let b = s(5.5, 0.0, 99.0, 0.0);
        assert!(b.dominates_on_bips_violation(&a));
        assert!(!b.dominates(&a), "full dominance sees the energy cost");
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let a = s(5.123456789, 1.0 / 3.0, 12.75, 0.0);
        let parsed = Json::parse(&a.to_json().emit()).unwrap();
        let back = Score::from_json(&parsed).unwrap();
        assert_eq!(a.bips.to_bits(), back.bips.to_bits());
        assert_eq!(a.violation.to_bits(), back.violation.to_bits());
        assert_eq!(a.energy.to_bits(), back.energy.to_bits());
        assert_eq!(a.penalty.to_bits(), back.penalty.to_bits());
    }
}
