//! The exploration journal: one JSONL row per *fresh* evaluation,
//! appended to `results/explore.jsonl`.
//!
//! Schema (one object per line; field order as written):
//!
//! ```text
//! {
//!   "gen":      engine generation counter when the evaluation ran,
//!   "strategy": strategy name that asked for it,
//!   "schedule": gain-schedule wire name ("fixed"/"rao"/"selftune");
//!               rows written before the adaptive controller existed
//!               lack the field, which reads as "fixed",
//!   "key":      point memo key plus "#f<n>" fidelity suffix,
//!   "fidelity": workload count evaluated (the full set spelled out),
//!   "score":    {"bips": …, "violation": …, "energy": …, "penalty": …}
//! }
//! ```
//!
//! Rows are appended only for memo *misses*, so a resumed run that
//! replays to the same trajectory appends nothing — the journal length
//! equals the number of distinct evaluations ever scored, and doubles
//! as the resume memo: loading it seeds the in-memory memo table and
//! every journaled evaluation is served without touching a backend.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use dtm_harness::json::{Json, JsonError};
use dtm_harness::LineAppender;

use crate::score::Score;

/// Composes the memo/journal identity of an evaluation: the point's
/// memo key qualified by the workload count it was scored over.
pub fn eval_key(memo_key: &str, fidelity: usize) -> String {
    format!("{memo_key}#f{fidelity}")
}

/// The append-only exploration journal.
#[derive(Debug)]
pub struct Journal {
    appender: LineAppender,
}

impl Journal {
    /// Opens (creating directories as needed) a journal at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        Journal {
            appender: LineAppender::open(path),
        }
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        self.appender.path()
    }

    /// Appends one fresh evaluation. `schedule` is the gain-schedule
    /// wire name; `"fixed"` rows keep the field for uniformity, and
    /// loading treats a missing field (pre-adaptive journals) as fixed.
    pub fn append(
        &self,
        gen: u32,
        strategy: &str,
        schedule: &str,
        key: &str,
        fidelity: usize,
        score: &Score,
    ) {
        let rec = Json::Obj(vec![
            ("gen".into(), Json::u64(u64::from(gen))),
            ("strategy".into(), Json::str(strategy)),
            ("schedule".into(), Json::str(schedule)),
            ("key".into(), Json::str(key)),
            ("fidelity".into(), Json::usize(fidelity)),
            ("score".into(), score.to_json()),
        ]);
        self.appender.append_line(&rec.emit());
    }

    /// Loads a journal into a memo table (`eval key → score`),
    /// tolerating a missing file (fresh start). Later rows win, so a
    /// journal with duplicate keys (hand-concatenated histories) still
    /// loads deterministically.
    ///
    /// # Errors
    ///
    /// Fails with a line-numbered description of the first malformed
    /// row — a corrupt journal should stop a resume loudly, not
    /// silently re-simulate half the history.
    pub fn load(path: &Path) -> Result<HashMap<String, Score>, String> {
        let mut memo = HashMap::new();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(memo),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let row =
                Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
            let key = row
                .field("key")
                .and_then(|k| k.as_str().map(str::to_owned))
                .map_err(|e| format!("{}:{}: bad key: {e}", path.display(), i + 1))?;
            let score = row
                .field("score")
                .and_then(|s| Score::from_json(s).map_err(JsonError))
                .map_err(|e| format!("{}:{}: bad score: {e}", path.display(), i + 1))?;
            memo.insert(key, score);
        }
        Ok(memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dtm-explore-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn journal_round_trips_and_later_rows_win() {
        let path = tmp("rt.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path);
        let s1 = Score {
            bips: 5.25,
            violation: 0.125,
            energy: 40.5,
            penalty: 0.0,
        };
        let s2 = Score { bips: 6.5, ..s1 };
        j.append(0, "lhs-halving", "fixed", "dvfs|pi_kp=0.0107#f1", 1, &s1);
        j.append(1, "evolve", "rao", "dvfs|pi_kp=0.0107#f4", 4, &s2);
        j.append(1, "evolve", "fixed", "dvfs|pi_kp=0.0107#f1", 1, &s2);
        let memo = Journal::load(&path).unwrap();
        assert_eq!(memo.len(), 2);
        assert_eq!(memo["dvfs|pi_kp=0.0107#f1"], s2, "later row wins");
        assert_eq!(memo["dvfs|pi_kp=0.0107#f4"], s2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_a_fresh_start() {
        let memo = Journal::load(Path::new("/nonexistent/explore.jsonl")).unwrap();
        assert!(memo.is_empty());
    }

    #[test]
    fn corrupt_rows_fail_with_line_numbers() {
        let path = tmp("bad.jsonl");
        std::fs::write(&path, "{\"key\": \"a\"}\n").unwrap();
        let err = Journal::load(&path).unwrap_err();
        assert!(err.contains(":1:"), "line-numbered: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_adaptive_rows_load_without_a_schedule_field() {
        // A verbatim row from a journal written before the adaptive
        // controller existed: no "schedule" field. It must load (as an
        // implicitly fixed-gain evaluation) so old journals resume
        // byte-identically.
        let path = tmp("preadaptive.jsonl");
        std::fs::write(
            &path,
            "{\"gen\": 0, \"strategy\": \"anchor\", \"key\": \"stopgo|pi_kp=0.0107#f2\", \
             \"fidelity\": 2, \"score\": {\"bips\": 12.5, \"violation\": 0, \
             \"energy\": 2.25, \"penalty\": 0}}\n",
        )
        .unwrap();
        let memo = Journal::load(&path).unwrap();
        assert_eq!(memo.len(), 1);
        let s = memo["stopgo|pi_kp=0.0107#f2"];
        assert_eq!(s.bips, 12.5);
        assert_eq!(s.energy, 2.25);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eval_keys_carry_fidelity() {
        assert_eq!(eval_key("dvfs|pi_kp=0.01", 4), "dvfs|pi_kp=0.01#f4");
        assert_ne!(eval_key("k", 1), eval_key("k", 2));
    }
}
