//! The exploration engine: drives strategies against the sweep
//! harness, memoizes every evaluation, journals fresh ones, and
//! maintains the Pareto archive.
//!
//! Determinism contract: given the same seed, space, workloads, and
//! strategy roster, the engine asks for the same evaluations in the
//! same order and produces a byte-identical report artifact — whether
//! the scores come from live simulation, the harness result cache, or
//! a journal left by an interrupted run. Resume is therefore just
//! "run it again": journaled evaluations are served from the memo
//! without touching a backend, and the journal grows only by whatever
//! the interrupted run never reached.

use std::collections::HashMap;
use std::path::Path;

use dtm_core::{PolicySpec, SimError};
use dtm_harness::json::Json;
use dtm_harness::{SweepRunner, SweepSpec, Table};
use dtm_obs::ObsHandle;
use dtm_workloads::Workload;

use crate::journal::{eval_key, Journal};
use crate::pareto::{Entry, ParetoFront};
use crate::score::Score;
use crate::space::{Point, SearchSpace};
use crate::strategy::{Ask, Strategy};

/// One evaluated anchor: a policy at the paper-default knob values —
/// the fixed-grid incumbent exploration has to beat.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// The anchored policy.
    pub policy: PolicySpec,
    /// The anchor's point (default knob values).
    pub point: Point,
    /// Its full-fidelity score.
    pub score: Score,
}

/// Per-generation accounting for console reporting. Fresh/memo splits
/// depend on what a previous run already journaled, so none of this
/// enters the deterministic artifact.
#[derive(Debug, Clone)]
pub struct GenSummary {
    /// Engine generation counter.
    pub gen: u32,
    /// Strategy that drove the generation.
    pub strategy: &'static str,
    /// Candidates asked.
    pub asks: usize,
    /// Evaluations simulated (or cache-served) this run.
    pub fresh: usize,
    /// Evaluations served from the journal/memo.
    pub memo_hits: usize,
    /// Archive size after the generation.
    pub front_len: usize,
    /// Best guidance scalar seen in the generation.
    pub best_scalar: f64,
}

/// The exploration engine.
pub struct Explorer<'a> {
    runner: &'a SweepRunner,
    space: SearchSpace,
    workloads: Vec<Workload>,
    journal: Journal,
    memo: HashMap<String, Score>,
    front: ParetoFront,
    anchors: Vec<Anchor>,
    summaries: Vec<GenSummary>,
    seed: u64,
    generation: u32,
    asks_processed: usize,
    fresh: usize,
    memo_hits: usize,
    obs: ObsHandle,
}

impl<'a> Explorer<'a> {
    /// Builds an engine over `runner`, resuming from whatever journal
    /// already exists at `journal_path`.
    ///
    /// # Errors
    ///
    /// Fails if an existing journal is unreadable or corrupt (a resume
    /// should stop loudly, not silently re-simulate history).
    pub fn new(
        runner: &'a SweepRunner,
        space: SearchSpace,
        workloads: Vec<Workload>,
        journal_path: impl AsRef<Path>,
        seed: u64,
        obs: &ObsHandle,
    ) -> Result<Self, SimError> {
        assert!(!workloads.is_empty(), "need at least one workload");
        let memo = Journal::load(journal_path.as_ref()).map_err(SimError::BadInput)?;
        Ok(Explorer {
            runner,
            space,
            workloads,
            journal: Journal::open(journal_path.as_ref()),
            memo,
            front: ParetoFront::new(),
            anchors: Vec::new(),
            summaries: Vec::new(),
            seed,
            generation: 0,
            asks_processed: 0,
            fresh: 0,
            memo_hits: 0,
            obs: obs.clone(),
        })
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of distinct evaluations ever scored (journal + this run).
    pub fn evaluations(&self) -> usize {
        self.memo.len()
    }

    /// Evaluations simulated (or cache-served) by this run.
    pub fn fresh(&self) -> usize {
        self.fresh
    }

    /// Evaluations served from the journal/memo by this run.
    pub fn memo_hits(&self) -> usize {
        self.memo_hits
    }

    /// The Pareto archive.
    pub fn front(&self) -> &ParetoFront {
        &self.front
    }

    /// Per-generation accounting, in order.
    pub fn summaries(&self) -> &[GenSummary] {
        &self.summaries
    }

    fn clamp_fidelity(&self, f: Option<usize>) -> usize {
        f.unwrap_or(self.workloads.len())
            .clamp(1, self.workloads.len())
    }

    /// Scores a batch of asks, serving memoized evaluations for free
    /// and batching the rest through the harness backend grouped by
    /// (policy, fidelity) so each group is one sweep over a shared
    /// workload prefix.
    fn evaluate(
        &mut self,
        strategy: &'static str,
        asks: &[Ask],
    ) -> Result<Vec<(Ask, Score)>, SimError> {
        // Resolve every ask to its concrete identity first.
        let resolved: Vec<(Point, usize, String)> = asks
            .iter()
            .map(|a| {
                let p = self.space.point(a.policy, &a.t);
                let fid = self.clamp_fidelity(a.fidelity);
                let key = eval_key(&self.space.memo_key(&p), fid);
                (p, fid, key)
            })
            .collect();

        // Group the memo misses by (policy, fidelity), preserving
        // first-seen order and deduplicating repeated points.
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        let mut seen: Vec<&str> = Vec::new();
        for (i, (p, fid, key)) in resolved.iter().enumerate() {
            if self.memo.contains_key(key) || seen.contains(&key.as_str()) {
                continue;
            }
            seen.push(key);
            let gk = (p.policy, *fid);
            match groups.iter_mut().find(|(k, _)| *k == gk) {
                Some((_, members)) => members.push(i),
                None => groups.push((gk, vec![i])),
            }
        }

        // One sweep spec per group: the group's workload prefix crossed
        // with its policy, one named variant per distinct point.
        let specs: Vec<SweepSpec> = groups
            .iter()
            .map(|((policy, fid), members)| {
                let mut spec = SweepSpec::new(self.workloads[..*fid].to_vec())
                    .policies([self.space.policies[*policy]]);
                for (j, &i) in members.iter().enumerate() {
                    let variant = self.space.variant_for(&resolved[i].0);
                    spec = if j == 0 {
                        spec.variant(variant)
                    } else {
                        spec.add_variant(variant)
                    };
                }
                spec
            })
            .collect();

        let start = self.obs.now_ns();
        let batch = self.runner.run_batch(specs)?;
        for (((policy, _fid), members), results) in groups.iter().zip(&batch) {
            let policy_spec = self.space.policies[*policy];
            for &i in members {
                let (p, fid, key) = &resolved[i];
                let variant_name = self.space.memo_key(p);
                let runs = results.policy_runs_in(&variant_name, policy_spec);
                let score = Score::of_runs(&runs, self.space.dtm_for(p).threshold);
                let schedule = self.space.schedules[p.schedule].wire_name();
                self.journal
                    .append(self.generation, strategy, schedule, key, *fid, &score);
                self.memo.insert(key.clone(), score);
                self.fresh += 1;
            }
        }
        self.obs.record_span(
            "explore",
            strategy,
            start,
            self.obs.now_ns().saturating_sub(start),
        );
        self.obs
            .counter("dtm_explore_evals_total")
            .add(groups.iter().map(|(_, m)| m.len() as u64).sum());

        // Assemble results in ask order; full-fidelity evaluations feed
        // the archive (memo-served ones too — that is how a resumed run
        // reconstructs the same front without simulating).
        let full = self.workloads.len();
        let mut out = Vec::with_capacity(asks.len());
        for (a, (p, fid, key)) in asks.iter().zip(&resolved) {
            let score = self.memo[key];
            if *fid == full {
                self.front.insert(Entry {
                    point: p.clone(),
                    score,
                    gen: self.generation,
                });
            }
            out.push((a.clone(), score));
        }
        self.memo_hits += out.len() - seen.len();
        self.obs
            .counter("dtm_explore_memo_hits_total")
            .add((out.len() - seen.len()) as u64);
        self.asks_processed += out.len();
        Ok(out)
    }

    /// Evaluates the fixed-grid anchors — every candidate policy at the
    /// Table 3 default knob values under the fixed gain schedule, full
    /// fidelity — and archives them. The resulting incumbents are what
    /// the acceptance comparison (`baseline_dominated`) measures the
    /// front against. Anchors stay on the fixed arm even in adaptive
    /// spaces: they are the paper's grid, the thing exploration has to
    /// beat.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn evaluate_anchors(&mut self) -> Result<&[Anchor], SimError> {
        let defaults = self.space.default_values();
        let t: Vec<f64> = {
            let p = Point {
                policy: 0,
                schedule: 0,
                values: defaults.clone(),
            };
            self.space.normalize(&p)
        };
        // Arms 0..policies.len() are exactly the fixed-schedule
        // policies (schedule axis keeps `Fixed` first).
        let asks: Vec<Ask> = (0..self.space.policies.len())
            .map(|policy| Ask {
                policy,
                t: t.clone(),
                fidelity: None,
            })
            .collect();
        let scored = self.evaluate("anchor", &asks)?;
        self.anchors = scored
            .into_iter()
            .map(|(a, score)| {
                let point = self.space.point(a.policy, &a.t);
                Anchor {
                    policy: self.space.policies[point.policy],
                    point,
                    score,
                }
            })
            .collect();
        Ok(&self.anchors)
    }

    /// Runs each strategy to exhaustion in roster order, stopping once
    /// `budget` asks have been processed. The budget gates *asks*, not
    /// simulations, so a resumed run makes identical stopping decisions
    /// even when everything is memo-served.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; the journal retains everything
    /// scored before the failure.
    pub fn run(
        &mut self,
        strategies: &mut [Box<dyn Strategy>],
        budget: usize,
    ) -> Result<(), SimError> {
        for s in strategies.iter_mut() {
            loop {
                if self.asks_processed >= budget {
                    return Ok(());
                }
                let asks = s.ask();
                if asks.is_empty() {
                    break;
                }
                let fresh0 = self.fresh;
                let memo0 = self.memo_hits;
                let results = self.evaluate(s.name(), &asks)?;
                s.tell(&results);
                let best = results
                    .iter()
                    .map(|(_, sc)| sc.scalar())
                    .fold(f64::NEG_INFINITY, f64::max);
                self.summaries.push(GenSummary {
                    gen: self.generation,
                    strategy: s.name(),
                    asks: results.len(),
                    fresh: self.fresh - fresh0,
                    memo_hits: self.memo_hits - memo0,
                    front_len: self.front.len(),
                    best_scalar: best,
                });
                self.generation += 1;
            }
        }
        Ok(())
    }

    /// The deterministic end-of-run report.
    pub fn report(&self) -> ExploreReport {
        let baseline = self
            .anchors
            .iter()
            .max_by(|a, b| {
                a.score
                    .scalar()
                    .partial_cmp(&b.score.scalar())
                    .expect("finite scalars")
            })
            .cloned();
        let baseline_dominated = baseline
            .as_ref()
            .is_some_and(|b| self.front.dominates_on_headline(&b.score));
        ExploreReport {
            seed: self.seed,
            policies: self.space.policies.iter().map(|p| p.wire_name()).collect(),
            knobs: self.space.knobs.iter().map(|k| k.name).collect(),
            evaluations: self.memo.len(),
            generations: self.generation,
            anchors: self
                .anchors
                .iter()
                .map(|a| (self.space.memo_key(&a.point), a.score))
                .collect(),
            front: self
                .front
                .sorted()
                .into_iter()
                .map(|e| FrontRow {
                    key: self.space.memo_key(&e.point),
                    policy: self.space.policies[e.point.policy].name(),
                    values: self
                        .space
                        .knobs
                        .iter()
                        .zip(&e.point.values)
                        .map(|(k, &v)| (k.name, v))
                        .collect(),
                    gen: e.gen,
                    score: e.score,
                })
                .collect(),
            baseline: baseline.map(|b| (self.space.memo_key(&b.point), b.score)),
            baseline_dominated,
        }
    }
}

/// One row of the reported front.
#[derive(Debug, Clone)]
pub struct FrontRow {
    /// The point's memo key.
    pub key: String,
    /// Display name of the point's policy.
    pub policy: String,
    /// Knob name → concrete value.
    pub values: Vec<(&'static str, f64)>,
    /// Generation first archived.
    pub gen: u32,
    /// The objective vector.
    pub score: Score,
}

/// The deterministic exploration artifact: everything in here replays
/// bit-identically from the same seed, so two runs (or a run and its
/// resume) emit byte-identical JSON.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Wire names of the policy axis.
    pub policies: Vec<String>,
    /// Knob names of the continuous axes.
    pub knobs: Vec<&'static str>,
    /// Distinct evaluations ever scored (journal length after the run).
    pub evaluations: usize,
    /// Engine generations driven.
    pub generations: u32,
    /// Fixed-grid anchors: (memo key, score).
    pub anchors: Vec<(String, Score)>,
    /// The Pareto front, in canonical order.
    pub front: Vec<FrontRow>,
    /// The scalar-best anchor the front is measured against.
    pub baseline: Option<(String, Score)>,
    /// Whether some front point strictly dominates the baseline on the
    /// (throughput, violation) headline plane.
    pub baseline_dominated: bool,
}

impl ExploreReport {
    /// Serializes the artifact (field order fixed; content fully
    /// deterministic — no wall-clock, no fresh/cached split).
    pub fn to_json(&self) -> Json {
        let score_pair = |(k, s): &(String, Score)| {
            Json::Obj(vec![
                ("key".into(), Json::str(k.clone())),
                ("score".into(), s.to_json()),
            ])
        };
        Json::Obj(vec![
            ("seed".into(), Json::u64(self.seed)),
            (
                "policies".into(),
                Json::Arr(self.policies.iter().map(Json::str).collect()),
            ),
            (
                "knobs".into(),
                Json::Arr(self.knobs.iter().map(|k| Json::str(*k)).collect()),
            ),
            ("evaluations".into(), Json::usize(self.evaluations)),
            ("generations".into(), Json::u64(u64::from(self.generations))),
            (
                "anchors".into(),
                Json::Arr(self.anchors.iter().map(score_pair).collect()),
            ),
            (
                "front".into(),
                Json::Arr(
                    self.front
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("key".into(), Json::str(&r.key)),
                                ("policy".into(), Json::str(&r.policy)),
                                (
                                    "values".into(),
                                    Json::Obj(
                                        r.values
                                            .iter()
                                            .map(|(k, v)| ((*k).into(), Json::f64(*v)))
                                            .collect(),
                                    ),
                                ),
                                ("gen".into(), Json::u64(u64::from(r.gen))),
                                ("score".into(), r.score.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "baseline".into(),
                self.baseline.as_ref().map_or(Json::Null, score_pair),
            ),
            (
                "baseline_dominated".into(),
                Json::Bool(self.baseline_dominated),
            ),
        ])
    }

    /// Renders the front as a console table.
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "policy",
            "BIPS",
            "violation s·°C",
            "energy J",
            "penalty s",
            "gen",
            "key",
        ])
        .with_title("Pareto front (throughput ↑, violation/energy/penalty ↓)");
        for r in &self.front {
            t.row([
                r.policy.clone(),
                format!("{:.3}", r.score.bips),
                format!("{:.4}", r.score.violation),
                format!("{:.1}", r.score.energy),
                format!("{:.4}", r.score.penalty),
                r.gen.to_string(),
                r.key.clone(),
            ]);
        }
        t
    }
}
