//! The strategy seam: a pure ask/tell state machine.
//!
//! A [`Strategy`] never simulates, touches the filesystem, or reads a
//! clock — it proposes normalized candidates ([`Ask`]) and digests the
//! scores the engine hands back. All randomness flows from the seed its
//! constructor received, so a (seed, space, telemetry) triple replays
//! to the exact same proposal sequence. That purity is what makes
//! resume work: the engine can re-drive a strategy from a journal and
//! land on the same trajectory without re-simulating anything.

use crate::score::Score;

/// One proposed evaluation, in normalized coordinates.
#[derive(Debug, Clone)]
pub struct Ask {
    /// Index into the space's discrete arm grid
    /// (`schedule * policies.len() + policy`; see `SearchSpace::arms`).
    /// For single-schedule spaces this is simply the policy index.
    pub policy: usize,
    /// Normalized knob coordinates, each in `[0, 1]`.
    pub t: Vec<f64>,
    /// Evaluation fidelity: `Some(n)` = first `n` workloads only
    /// (successive-halving rungs), `None` = the full workload set.
    /// Only full-fidelity evaluations enter the Pareto archive.
    pub fidelity: Option<usize>,
}

/// A deterministic search strategy.
pub trait Strategy {
    /// Short stable name (journal rows carry it).
    fn name(&self) -> &'static str;

    /// The next generation of candidates; empty means the strategy is
    /// finished.
    fn ask(&mut self) -> Vec<Ask>;

    /// Observes the scores of the generation just asked, parallel to
    /// and in the order of the `ask` that produced it.
    fn tell(&mut self, results: &[(Ask, Score)]);
}

/// Coordinate-descent grid refinement: sweep the knobs one at a time,
/// evaluating `k` candidates across a bracketing span around the
/// incumbent and moving to the scalar-best; each full pass halves the
/// span. Purely deterministic (no RNG) — the classic derivative-free
/// local search, run independently per candidate policy.
#[derive(Debug)]
pub struct CoordinateDescent {
    policies: Vec<usize>,
    centers: Vec<Vec<f64>>,
    k: usize,
    sweeps_left: u32,
    span: f64,
    cursor_policy: usize,
    cursor_dim: usize,
    offsets: Vec<f64>,
}

impl CoordinateDescent {
    /// Starts from `start_t` (normalized coordinates of the incumbent,
    /// typically the paper defaults) for each policy in `policies`,
    /// with `k` candidates per knob and `sweeps` halving passes.
    pub fn new(start_t: Vec<f64>, policies: Vec<usize>, k: usize, sweeps: u32) -> Self {
        assert!(k >= 3, "need at least 3 candidates to bracket");
        assert!(!policies.is_empty(), "need at least one policy");
        let centers = vec![start_t; policies.len()];
        let offsets = (0..k)
            .map(|i| 2.0 * (i as f64 / (k - 1) as f64) - 1.0)
            .collect();
        CoordinateDescent {
            policies,
            centers,
            k,
            sweeps_left: sweeps,
            span: 0.5,
            cursor_policy: 0,
            cursor_dim: 0,
            offsets,
        }
    }
}

impl Strategy for CoordinateDescent {
    fn name(&self) -> &'static str {
        "coord-descent"
    }

    fn ask(&mut self) -> Vec<Ask> {
        if self.sweeps_left == 0 {
            return Vec::new();
        }
        let center = &self.centers[self.cursor_policy];
        let d = self.cursor_dim;
        self.offsets
            .iter()
            .map(|&o| {
                let mut t = center.clone();
                t[d] = (center[d] + o * self.span).clamp(0.0, 1.0);
                Ask {
                    policy: self.policies[self.cursor_policy],
                    t,
                    fidelity: None,
                }
            })
            .collect()
    }

    fn tell(&mut self, results: &[(Ask, Score)]) {
        assert_eq!(results.len(), self.k, "one result per candidate");
        let best = results
            .iter()
            .enumerate()
            .max_by(|(ia, (_, a)), (ib, (_, b))| {
                a.scalar()
                    .partial_cmp(&b.scalar())
                    .expect("finite scalars")
                    // Ties break toward the earlier (more central-ward)
                    // candidate deterministically.
                    .then(ib.cmp(ia))
            })
            .expect("non-empty generation");
        let dims = self.centers[self.cursor_policy].len();
        self.centers[self.cursor_policy][self.cursor_dim] = best.1 .0.t[self.cursor_dim];
        self.cursor_dim += 1;
        if self.cursor_dim == dims {
            self.cursor_dim = 0;
            self.cursor_policy += 1;
            if self.cursor_policy == self.policies.len() {
                self.cursor_policy = 0;
                self.sweeps_left -= 1;
                self.span *= 0.5;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(bips: f64) -> Score {
        Score {
            bips,
            violation: 0.0,
            energy: 0.0,
            penalty: 0.0,
        }
    }

    #[test]
    fn descent_walks_every_dim_then_halves() {
        let mut s = CoordinateDescent::new(vec![0.5, 0.5], vec![0, 3], 3, 2);
        let mut generations = 0;
        loop {
            let asks = s.ask();
            if asks.is_empty() {
                break;
            }
            assert_eq!(asks.len(), 3);
            // Reward the largest coordinate in the active dimension.
            let results: Vec<(Ask, Score)> = asks
                .into_iter()
                .map(|a| {
                    let v = a.t.iter().sum::<f64>();
                    (a, score(v))
                })
                .collect();
            s.tell(&results);
            generations += 1;
        }
        // 2 policies × 2 dims × 2 sweeps.
        assert_eq!(generations, 8);
        // Greedy uphill on Σt drives both centers to the top corner.
        for c in &s.centers {
            assert!(c.iter().all(|&t| t > 0.9), "center {c:?}");
        }
    }

    #[test]
    fn descent_is_deterministic() {
        let run = || {
            let mut s = CoordinateDescent::new(vec![0.3, 0.7], vec![1], 5, 1);
            let mut seen = Vec::new();
            loop {
                let asks = s.ask();
                if asks.is_empty() {
                    break;
                }
                seen.extend(asks.iter().map(|a| a.t.clone()));
                let results: Vec<(Ask, Score)> = asks
                    .into_iter()
                    .map(|a| (a.clone(), score(a.t[0])))
                    .collect();
                s.tell(&results);
            }
            seen
        };
        assert_eq!(run(), run());
    }
}
