//! Runtime application of a [`FaultScenario`] to a simulation.
//!
//! [`FaultState`] is the per-run applier: the engine calls
//! [`FaultState::apply_sensor`] on every raw sensor reading and queries
//! [`FaultState::dvfs_stuck`] / [`FaultState::gate_ignored`] on its
//! actuation paths. All state it keeps (stale-telemetry history) is a
//! pure function of the schedule and the reading stream, so replaying a
//! run reproduces every faulty value bit-for-bit.

use crate::scenario::{FaultKind, FaultScenario};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Per-run fault applier derived from a [`FaultScenario`].
#[derive(Debug, Clone)]
pub struct FaultState {
    scenario: FaultScenario,
    /// Longest stale delay in the schedule (s); bounds history length.
    max_stale: f64,
    /// Raw-reading history per (core, sensor index) slot, recorded only
    /// for slots some stale event targets. Entries are `(time, raw)`.
    history: HashMap<(usize, usize), VecDeque<(f64, f64)>>,
}

impl FaultState {
    /// Builds the applier for one run.
    pub fn new(scenario: FaultScenario) -> Self {
        let max_stale = scenario
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SensorStale { delay } => Some(delay),
                _ => None,
            })
            .fold(0.0, f64::max);
        FaultState {
            scenario,
            max_stale,
            history: HashMap::new(),
        }
    }

    /// The schedule this applier executes.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Whether the schedule is empty (nothing will ever be injected).
    pub fn is_ideal(&self) -> bool {
        self.scenario.is_ideal()
    }

    /// Whether any event targets this sensor slot with a stale fault
    /// (at any time — history must be recorded before the window opens
    /// so the delayed readings exist when it does).
    fn records_history(&self, core: usize, index: usize) -> bool {
        self.scenario.events.iter().any(|e| {
            matches!(e.kind, FaultKind::SensorStale { .. }) && e.target.covers_sensor(core, index)
        })
    }

    /// Applies every active sensor fault to one raw reading, in
    /// schedule order, returning what the sensor actually reports.
    pub fn apply_sensor(&mut self, time: f64, core: usize, index: usize, raw: f64) -> f64 {
        if self.records_history(core, index) {
            let h = self.history.entry((core, index)).or_default();
            h.push_back((time, raw));
            let horizon = time - self.max_stale - 1e-3;
            while h.front().is_some_and(|&(t, _)| t < horizon) {
                h.pop_front();
            }
        }
        let mut value = raw;
        for ei in 0..self.scenario.events.len() {
            let e = self.scenario.events[ei];
            if !e.active(time) || !e.target.covers_sensor(core, index) {
                continue;
            }
            value = match e.kind {
                FaultKind::SensorStuck { value: v } => v,
                FaultKind::SensorDrift { rate } => value + rate * (time - e.start),
                FaultKind::SensorDropout => f64::NAN,
                FaultKind::SensorSpike { amplitude } => value + amplitude,
                FaultKind::SensorStale { delay } => self.delayed(core, index, time - delay),
                FaultKind::DvfsStuck | FaultKind::GateIgnored => value,
            };
        }
        value
    }

    /// The newest recorded raw reading at or before `when`, held at the
    /// oldest entry when history does not reach back that far.
    fn delayed(&self, core: usize, index: usize, when: f64) -> f64 {
        let Some(h) = self.history.get(&(core, index)) else {
            return f64::NAN;
        };
        let mut best = None;
        for &(t, v) in h {
            if t <= when {
                best = Some(v);
            } else {
                break;
            }
        }
        best.or_else(|| h.front().map(|&(_, v)| v))
            .unwrap_or(f64::NAN)
    }

    /// Whether `core`'s DVFS level is stuck at `time` (controller
    /// commands must be ignored).
    pub fn dvfs_stuck(&self, time: f64, core: usize) -> bool {
        self.scenario.events.iter().any(|e| {
            matches!(e.kind, FaultKind::DvfsStuck) && e.active(time) && e.target.covers_core(core)
        })
    }

    /// Whether `core`'s stop-go gate is ignored at `time` (stall
    /// commands have no effect on execution).
    pub fn gate_ignored(&self, time: f64, core: usize) -> bool {
        self.scenario.events.iter().any(|e| {
            matches!(e.kind, FaultKind::GateIgnored) && e.active(time) && e.target.covers_core(core)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultEvent, FaultTarget};

    #[test]
    fn ideal_state_is_identity() {
        let mut s = FaultState::new(FaultScenario::ideal());
        assert!(s.is_ideal());
        for t in [0.0, 0.1, 5.0] {
            assert_eq!(s.apply_sensor(t, 0, 0, 77.25), 77.25);
        }
        assert!(!s.dvfs_stuck(1.0, 0));
        assert!(!s.gate_ignored(1.0, 0));
    }

    #[test]
    fn stuck_overrides_only_in_window_and_target() {
        let sc = FaultScenario::new(
            "stuck",
            vec![FaultEvent {
                start: 0.1,
                end: 0.2,
                target: FaultTarget::Sensor { core: 1, index: 0 },
                kind: FaultKind::SensorStuck { value: 150.0 },
            }],
        );
        let mut s = FaultState::new(sc);
        assert_eq!(s.apply_sensor(0.05, 1, 0, 80.0), 80.0);
        assert_eq!(s.apply_sensor(0.15, 1, 0, 80.0), 150.0);
        assert_eq!(s.apply_sensor(0.15, 1, 1, 80.0), 80.0);
        assert_eq!(s.apply_sensor(0.15, 0, 0, 80.0), 80.0);
        assert_eq!(s.apply_sensor(0.25, 1, 0, 80.0), 80.0);
    }

    #[test]
    fn drift_accumulates_from_event_start() {
        let sc = FaultScenario::new(
            "drift",
            vec![FaultEvent::permanent(
                1.0,
                FaultTarget::Sensor { core: 0, index: 1 },
                FaultKind::SensorDrift { rate: 2.0 },
            )],
        );
        let mut s = FaultState::new(sc);
        assert_eq!(s.apply_sensor(1.0, 0, 1, 70.0), 70.0);
        assert!((s.apply_sensor(1.5, 0, 1, 70.0) - 71.0).abs() < 1e-12);
        assert!((s.apply_sensor(3.0, 0, 1, 70.0) - 74.0).abs() < 1e-12);
    }

    #[test]
    fn dropout_reads_nan() {
        let mut s = FaultState::new(FaultScenario::dropout_sensor("d", 0, 0, 0.0));
        assert!(s.apply_sensor(0.0, 0, 0, 80.0).is_nan());
    }

    #[test]
    fn spike_is_additive_and_transient() {
        let sc = FaultScenario::new(
            "spike",
            vec![FaultEvent {
                start: 0.2,
                end: 0.3,
                target: FaultTarget::Chip,
                kind: FaultKind::SensorSpike { amplitude: -12.5 },
            }],
        );
        let mut s = FaultState::new(sc);
        assert_eq!(s.apply_sensor(0.25, 3, 1, 80.0), 67.5);
        assert_eq!(s.apply_sensor(0.35, 3, 1, 80.0), 80.0);
    }

    #[test]
    fn stale_reports_delayed_readings() {
        let sc = FaultScenario::new(
            "stale",
            vec![FaultEvent::permanent(
                0.3,
                FaultTarget::Sensor { core: 0, index: 0 },
                FaultKind::SensorStale { delay: 0.2 },
            )],
        );
        let mut s = FaultState::new(sc);
        // History records before the window opens.
        for i in 0..10 {
            let t = 0.05 * i as f64;
            let _ = s.apply_sensor(t, 0, 0, 50.0 + t * 100.0);
        }
        // At t = 0.45 the sensor reports the t = 0.25 reading.
        let r = s.apply_sensor(0.45, 0, 0, 95.0);
        assert!((r - 75.0).abs() < 1e-9, "stale reading {r}");
    }

    #[test]
    fn stale_holds_oldest_when_history_is_short() {
        let sc = FaultScenario::new(
            "stale",
            vec![FaultEvent::permanent(
                0.0,
                FaultTarget::Sensor { core: 0, index: 0 },
                FaultKind::SensorStale { delay: 1.0 },
            )],
        );
        let mut s = FaultState::new(sc);
        let first = s.apply_sensor(0.0, 0, 0, 61.0);
        assert!((first - 61.0).abs() < 1e-12);
        let held = s.apply_sensor(0.5, 0, 0, 99.0);
        assert!((held - 61.0).abs() < 1e-12, "held {held}");
    }

    #[test]
    fn actuator_faults_answer_target_and_window() {
        let sc = FaultScenario::new(
            "act",
            vec![
                FaultEvent {
                    start: 0.1,
                    end: 0.4,
                    target: FaultTarget::Core { core: 2 },
                    kind: FaultKind::DvfsStuck,
                },
                FaultEvent::permanent(0.2, FaultTarget::Chip, FaultKind::GateIgnored),
            ],
        );
        let s = FaultState::new(sc);
        assert!(!s.dvfs_stuck(0.05, 2));
        assert!(s.dvfs_stuck(0.2, 2));
        assert!(!s.dvfs_stuck(0.2, 1));
        assert!(!s.dvfs_stuck(0.5, 2));
        assert!(s.gate_ignored(0.3, 0) && s.gate_ignored(0.3, 3));
        assert!(!s.gate_ignored(0.1, 0));
    }

    #[test]
    fn replay_is_bit_identical() {
        let sc = FaultScenario::new(
            "mix",
            vec![
                FaultEvent::permanent(
                    0.1,
                    FaultTarget::Sensor { core: 0, index: 0 },
                    FaultKind::SensorDrift { rate: 3.7 },
                ),
                FaultEvent::permanent(
                    0.2,
                    FaultTarget::Sensor { core: 0, index: 0 },
                    FaultKind::SensorStale { delay: 0.05 },
                ),
            ],
        );
        let run = |mut s: FaultState| -> Vec<u64> {
            (0..200)
                .map(|i| {
                    let t = i as f64 * 0.005;
                    s.apply_sensor(t, 0, 0, 60.0 + (i % 17) as f64).to_bits()
                })
                .collect()
        };
        let a = run(FaultState::new(sc.clone()));
        let b = run(FaultState::new(sc));
        assert_eq!(a, b);
    }
}
