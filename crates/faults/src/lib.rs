//! `dtm-faults`: deterministic fault injection and a watchdog safety
//! layer for DTM robustness studies.
//!
//! The ISCA'06 study evaluates twelve thermal-management policies that
//! all read temperature through on-die sensors and actuate through
//! DVFS/stop-go hardware — and assumes both always work. This crate
//! models what happens when they don't:
//!
//! - [`FaultScenario`] is a schedule of timestamped [`FaultEvent`]s:
//!   stuck-at sensors, drift ramps, dropouts (NaN), transient spikes,
//!   stale telemetry, stuck DVFS levels, and ignored stop-go gates.
//!   Scenarios are pure data and deterministic, so every faulty run is
//!   bit-replayable and content-addressable by the sweep cache.
//! - [`FaultState`] applies a scenario inside the simulation loop.
//! - [`Watchdog`] screens readings for plausibility (per-sample rate
//!   bound, cross-sensor consistency) and latches a per-core fail-safe
//!   [`FallbackKind`] while sensors cannot be trusted, in the spirit of
//!   ControlPULP's fault-handling layer.
//! - [`FaultConfig`] bundles a scenario with a [`WatchdogConfig`] as
//!   the unit the experiment harness carries along a sweep's
//!   configuration axis.
//!
//! The crate is dependency-light by design: it knows nothing about the
//! thermal model or the engine, only about reading streams and time.
//!
//! # Examples
//!
//! ```
//! use dtm_faults::{FaultScenario, FaultState, Watchdog, WatchdogConfig};
//!
//! // A sensor sticks at 150 °C from t = 0.1 s; the watchdog flags the
//! // jump and substitutes the last plausible value.
//! let scenario = FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, 0.1);
//! let mut faults = FaultState::new(scenario);
//! let mut watchdog = Watchdog::new(WatchdogConfig::enabled(), 1, 2);
//!
//! let mut readings = [faults.apply_sensor(0.0, 0, 0, 80.0), 79.0];
//! watchdog.assess(0.0, &mut readings);
//! assert_eq!(readings[0], 80.0);
//!
//! let mut readings = [faults.apply_sensor(0.2, 0, 0, 80.0), 79.0];
//! watchdog.assess(0.2, &mut readings);
//! assert_eq!(readings[0], 80.0); // substituted, not 150.0
//! assert!(watchdog.in_fallback()[0]);
//! ```

mod scenario;
mod state;
mod watchdog;

pub use scenario::{FaultEvent, FaultKind, FaultScenario, FaultTarget};
pub use state::FaultState;
pub use watchdog::{FallbackKind, Watchdog, WatchdogConfig};

use serde::{Deserialize, Serialize};

/// A complete robustness configuration: what breaks, and what the
/// safety net does about it.
///
/// [`FaultConfig::ideal`] (the default) is the distinguished no-op:
/// nothing is injected and the watchdog is off. The experiment harness
/// folds a `FaultConfig` into a sweep cell's content address **only
/// when it is not ideal**, so every pre-existing fault-free cache entry
/// keeps its address.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The fault schedule.
    pub scenario: FaultScenario,
    /// The watchdog / fail-safe configuration.
    pub watchdog: WatchdogConfig,
}

impl FaultConfig {
    /// No faults, watchdog off — behaviorally identical to a build
    /// without the fault subsystem.
    pub fn ideal() -> Self {
        FaultConfig::default()
    }

    /// A scenario with the watchdog off (raw exposure to the faults).
    pub fn unprotected(scenario: FaultScenario) -> Self {
        FaultConfig {
            scenario,
            watchdog: WatchdogConfig::disabled(),
        }
    }

    /// A scenario under a watchdog.
    pub fn protected(scenario: FaultScenario, watchdog: WatchdogConfig) -> Self {
        FaultConfig { scenario, watchdog }
    }

    /// Whether this is the distinguished no-op configuration (nothing
    /// injected, watchdog off).
    pub fn is_ideal(&self) -> bool {
        self.scenario.is_ideal() && !self.watchdog.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_config_is_default_and_idempotent() {
        assert!(FaultConfig::ideal().is_ideal());
        assert!(FaultConfig::default().is_ideal());
        assert_eq!(FaultConfig::ideal(), FaultConfig::default());
    }

    #[test]
    fn enabling_either_half_makes_it_non_ideal() {
        let s = FaultConfig::unprotected(FaultScenario::dropout_sensor("d", 0, 0, 0.0));
        assert!(!s.is_ideal());
        let w = FaultConfig::protected(FaultScenario::ideal(), WatchdogConfig::enabled());
        assert!(!w.is_ideal(), "an enabled watchdog changes behavior");
    }
}
