//! Schedule-driven fault scenarios.
//!
//! A [`FaultScenario`] is a list of timestamped [`FaultEvent`]s, each
//! activating one [`FaultKind`] on one [`FaultTarget`] for a time
//! window. Scenarios are pure data: the same scenario applied to the
//! same simulation always produces the same faulty readings, so sweep
//! cells stay content-addressable and bit-replayable.

use serde::{Deserialize, Serialize};

/// What a fault event afflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// One thermal sensor: `(core, index)` where index 0 is the integer
    /// register file sensor and 1 the floating-point one.
    Sensor {
        /// Core owning the sensor.
        core: usize,
        /// Sensor index within the core (0 = int RF, 1 = fp RF).
        index: usize,
    },
    /// Every sensor of (or the actuator of) one core.
    Core {
        /// The afflicted core.
        core: usize,
    },
    /// Every sensor / every core actuator on the chip.
    Chip,
}

impl FaultTarget {
    /// Whether this target covers `(core, index)`.
    pub fn covers_sensor(&self, core: usize, index: usize) -> bool {
        match *self {
            FaultTarget::Sensor { core: c, index: i } => c == core && i == index,
            FaultTarget::Core { core: c } => c == core,
            FaultTarget::Chip => true,
        }
    }

    /// Whether this target covers `core`'s actuators.
    pub fn covers_core(&self, core: usize) -> bool {
        match *self {
            FaultTarget::Sensor { .. } => false,
            FaultTarget::Core { core: c } => c == core,
            FaultTarget::Chip => true,
        }
    }
}

/// The failure mode an event activates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sensor output is frozen at a constant reading (°C).
    SensorStuck {
        /// The frozen reading.
        value: f64,
    },
    /// The sensor output drifts away from the truth at a constant rate
    /// (°C/s), accumulating from the event's start.
    SensorDrift {
        /// Drift rate (°C/s); positive reads hot, negative reads cold.
        rate: f64,
    },
    /// The reading is unavailable: the sensor returns NaN.
    SensorDropout,
    /// A transient additive spike (°C) for the event window.
    SensorSpike {
        /// Additive error while the event is active.
        amplitude: f64,
    },
    /// Stale telemetry: the sensor reports the reading from `delay`
    /// seconds ago (held at the oldest recorded reading near the start
    /// of history).
    SensorStale {
        /// Reporting delay (s).
        delay: f64,
    },
    /// The core's DVFS level is stuck: controller commands are ignored
    /// and the frequency scale is frozen at its pre-fault value.
    DvfsStuck,
    /// Stop-go gating is ignored: stall commands are issued and
    /// accounted but the core keeps executing.
    GateIgnored,
}

impl FaultKind {
    /// Whether this kind afflicts a sensor (vs an actuator).
    pub fn is_sensor_fault(&self) -> bool {
        !matches!(self, FaultKind::DvfsStuck | FaultKind::GateIgnored)
    }
}

/// One scheduled fault: a kind applied to a target over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Activation time (s of simulated time, inclusive).
    pub start: f64,
    /// Deactivation time (s, exclusive); `f64::INFINITY` for permanent
    /// faults.
    pub end: f64,
    /// What is afflicted.
    pub target: FaultTarget,
    /// The failure mode.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// An event active from `start` to the end of the run.
    pub fn permanent(start: f64, target: FaultTarget, kind: FaultKind) -> Self {
        FaultEvent {
            start,
            end: f64::INFINITY,
            target,
            kind,
        }
    }

    /// Whether the event is active at `time`.
    pub fn active(&self, time: f64) -> bool {
        time >= self.start && time < self.end
    }
}

/// A named, replayable schedule of fault events.
///
/// The empty scenario (`FaultScenario::ideal()`) is the distinguished
/// fault-free case: it injects nothing, adds no per-step work, and —
/// critically for the result cache — contributes nothing to a sweep
/// cell's content address, so fault-free cells keep the addresses they
/// had before the fault subsystem existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Display name (`ideal`, `stuck-hot`, …) used by experiment tables
    /// and ledger variant labels.
    pub name: String,
    /// The schedule, in no particular order; overlapping events apply
    /// in list order.
    pub events: Vec<FaultEvent>,
}

impl FaultScenario {
    /// The fault-free scenario.
    pub fn ideal() -> Self {
        FaultScenario {
            name: "ideal".into(),
            events: Vec::new(),
        }
    }

    /// A named scenario over explicit events.
    pub fn new(name: impl Into<String>, events: Vec<FaultEvent>) -> Self {
        FaultScenario {
            name: name.into(),
            events,
        }
    }

    /// Whether the scenario injects nothing.
    pub fn is_ideal(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Convenience: one sensor stuck at a constant reading from `start`
    /// onward.
    pub fn stuck_sensor(
        name: impl Into<String>,
        core: usize,
        index: usize,
        value: f64,
        start: f64,
    ) -> Self {
        FaultScenario::new(
            name,
            vec![FaultEvent::permanent(
                start,
                FaultTarget::Sensor { core, index },
                FaultKind::SensorStuck { value },
            )],
        )
    }

    /// Convenience: one sensor dropping out (NaN) from `start` onward.
    pub fn dropout_sensor(name: impl Into<String>, core: usize, index: usize, start: f64) -> Self {
        FaultScenario::new(
            name,
            vec![FaultEvent::permanent(
                start,
                FaultTarget::Sensor { core, index },
                FaultKind::SensorDropout,
            )],
        )
    }
}

impl Default for FaultScenario {
    fn default() -> Self {
        FaultScenario::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_empty_and_default() {
        assert!(FaultScenario::ideal().is_ideal());
        assert_eq!(FaultScenario::default(), FaultScenario::ideal());
        assert_eq!(FaultScenario::ideal().name, "ideal");
    }

    #[test]
    fn event_window_is_half_open() {
        let e = FaultEvent {
            start: 0.1,
            end: 0.2,
            target: FaultTarget::Chip,
            kind: FaultKind::SensorDropout,
        };
        assert!(!e.active(0.099));
        assert!(e.active(0.1));
        assert!(e.active(0.199_999));
        assert!(!e.active(0.2));
    }

    #[test]
    fn permanent_events_never_end() {
        let e = FaultEvent::permanent(0.05, FaultTarget::Core { core: 1 }, FaultKind::DvfsStuck);
        assert!(e.active(1e9));
        assert!(!e.active(0.049));
    }

    #[test]
    fn targets_cover_expected_sensors() {
        let s = FaultTarget::Sensor { core: 2, index: 1 };
        assert!(s.covers_sensor(2, 1));
        assert!(!s.covers_sensor(2, 0));
        assert!(!s.covers_sensor(1, 1));
        assert!(!s.covers_core(2));

        let c = FaultTarget::Core { core: 0 };
        assert!(c.covers_sensor(0, 0) && c.covers_sensor(0, 1));
        assert!(!c.covers_sensor(1, 0));
        assert!(c.covers_core(0) && !c.covers_core(3));

        assert!(FaultTarget::Chip.covers_sensor(7, 1));
        assert!(FaultTarget::Chip.covers_core(7));
    }

    #[test]
    fn sensor_vs_actuator_kinds() {
        assert!(FaultKind::SensorDropout.is_sensor_fault());
        assert!(FaultKind::SensorStuck { value: 99.0 }.is_sensor_fault());
        assert!(!FaultKind::DvfsStuck.is_sensor_fault());
        assert!(!FaultKind::GateIgnored.is_sensor_fault());
    }

    #[test]
    fn builders_produce_expected_schedules() {
        let s = FaultScenario::stuck_sensor("stuck", 1, 0, 150.0, 0.2);
        assert!(!s.is_ideal());
        assert_eq!(s.events.len(), 1);
        assert!(matches!(
            s.events[0].kind,
            FaultKind::SensorStuck { value } if (value - 150.0).abs() < 1e-12
        ));
        let d = FaultScenario::dropout_sensor("drop", 0, 1, 0.1).with_event(FaultEvent::permanent(
            0.3,
            FaultTarget::Chip,
            FaultKind::GateIgnored,
        ));
        assert_eq!(d.events.len(), 2);
    }

    #[test]
    fn debug_repr_is_stable_for_cache_keys() {
        // The content-addressed result cache folds `{scenario:?}` into
        // cell keys; pin the spelling so a formatting change (which
        // would silently orphan cached faulty cells) fails loudly.
        let s = FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, 0.1);
        let repr = format!("{s:?}");
        assert!(repr.contains("stuck-hot"));
        assert!(repr.contains("SensorStuck"));
        assert!(repr.contains("150.0"));
    }
}
