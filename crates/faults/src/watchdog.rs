//! The plausibility-checking safety watchdog.
//!
//! Real power controllers (e.g. ControlPULP) treat sensor faults as a
//! first-class input: a reading that is non-finite, moves faster than
//! physics allows, or disagrees wildly with every other sensor on the
//! die is *implausible*, and a controller that keeps trusting it either
//! melts the chip (stuck-cold) or throttles it to the floor forever
//! (stuck-hot). The [`Watchdog`] runs inside the engine's control loop:
//! each step it screens all sensor readings, substitutes the last
//! plausible value for any flagged reading (so PI controllers never
//! integrate NaN or a 70 °C step), and drives a per-core fail-safe
//! fallback while a core's sensors cannot be trusted.

use dtm_obs::{Counter, ObsHandle};
use serde::{Deserialize, Serialize};

/// The fail-safe action taken while a core is in fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackKind {
    /// Clamp the whole chip to the minimum DVFS frequency scale — the
    /// conservative "limp home" mode.
    FreqFloor,
    /// Run stop-go on the last plausible temperature of the afflicted
    /// core: the core stalls whenever its last-good reading sits above
    /// the trip point, and otherwise keeps executing.
    StopGoLastGood,
}

/// Watchdog configuration.
///
/// The default is [`WatchdogConfig::disabled`]: the watchdog adds zero
/// work and zero behavioral change unless explicitly enabled, so
/// fault-free simulations stay bit-identical to the pre-watchdog
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Master switch.
    pub enabled: bool,
    /// Largest plausible reading change between two consecutive samples
    /// (°C). Thermal RC time constants bound real silicon far below
    /// this; sensor noise must stay comfortably below it too.
    pub max_step: f64,
    /// Largest plausible deviation from the chip-median reading (°C).
    /// Catches frozen/stuck sensors whose step delta is zero.
    pub max_deviation: f64,
    /// The fail-safe applied while a core's sensors are implausible.
    pub fallback: FallbackKind,
    /// Minimum dwell time in fallback once entered (s), preventing
    /// entry/exit chatter at the plausibility boundary.
    pub min_hold: f64,
}

impl WatchdogConfig {
    /// Watchdog off: no checks, no fallback, no behavioral change.
    pub fn disabled() -> Self {
        WatchdogConfig {
            enabled: false,
            max_step: f64::INFINITY,
            max_deviation: f64::INFINITY,
            fallback: FallbackKind::FreqFloor,
            min_hold: 0.0,
        }
    }

    /// The standard enabled configuration: 6 °C per-sample step bound
    /// (≈ 12σ of the realistic sensor noise), 40 °C cross-sensor
    /// deviation bound, chip-wide frequency-floor fallback with 1 ms
    /// minimum dwell.
    pub fn enabled() -> Self {
        WatchdogConfig {
            enabled: true,
            max_step: 6.0,
            max_deviation: 40.0,
            fallback: FallbackKind::FreqFloor,
            min_hold: 1e-3,
        }
    }

    /// The enabled configuration with the stop-go-on-last-good
    /// fallback.
    pub fn enabled_stopgo() -> Self {
        WatchdogConfig {
            fallback: FallbackKind::StopGoLastGood,
            ..WatchdogConfig::enabled()
        }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::disabled()
    }
}

/// Per-run watchdog state: last/last-good readings per sensor and the
/// fallback latch per core.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Last raw reading per sensor slot (flattened core-major), NaN
    /// before the first assessment.
    last: Vec<f64>,
    /// Last plausible reading per sensor slot.
    last_good: Vec<f64>,
    /// Fallback latch per core.
    in_fallback: Vec<bool>,
    /// Entry time of the current fallback episode per core.
    since: Vec<f64>,
    entries: u64,
    exits: u64,
    flags: u64,
    /// Mirrors of the three counters above in the observability
    /// registry (disabled no-ops unless [`Watchdog::bind_obs`] ran), so
    /// watchdog activity shows up in profiling dumps.
    obs_entries: Counter,
    obs_exits: Counter,
    obs_flags: Counter,
}

impl Watchdog {
    /// Builds the runtime for `cores` cores with `sensors_per_core`
    /// sensors each.
    pub fn new(cfg: WatchdogConfig, cores: usize, sensors_per_core: usize) -> Self {
        Watchdog {
            cfg,
            last: vec![f64::NAN; cores * sensors_per_core],
            last_good: vec![f64::NAN; cores * sensors_per_core],
            in_fallback: vec![false; cores],
            since: vec![0.0; cores],
            entries: 0,
            exits: 0,
            flags: 0,
            obs_entries: Counter::disabled(),
            obs_exits: Counter::disabled(),
            obs_flags: Counter::disabled(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Mirrors this watchdog's flag/entry/exit counters into `obs`
    /// (registered as `dtm_watchdog_{flags,entries,exits}_total`). A
    /// disabled handle leaves the no-op counters in place.
    pub fn bind_obs(&mut self, obs: &ObsHandle) {
        self.obs_flags = obs.counter("dtm_watchdog_flags_total");
        self.obs_entries = obs.counter("dtm_watchdog_entries_total");
        self.obs_exits = obs.counter("dtm_watchdog_exits_total");
    }

    /// Screens this step's readings (flattened core-major, matching
    /// `new`'s layout), replacing implausible values with the sensor's
    /// last plausible reading in place, and updates each core's
    /// fallback latch.
    pub fn assess(&mut self, time: f64, readings: &mut [f64]) {
        if !self.cfg.enabled {
            return;
        }
        let n = readings.len();
        debug_assert_eq!(n, self.last.len());
        let per_core = n / self.in_fallback.len().max(1);

        // Chip median of this step's finite raw readings — the
        // cross-sensor consistency reference.
        let mut finite: Vec<f64> = readings.iter().copied().filter(|v| v.is_finite()).collect();
        finite.sort_by(|a, b| a.partial_cmp(b).expect("finite readings compare"));
        let median = if finite.is_empty() {
            f64::NAN
        } else {
            finite[finite.len() / 2]
        };

        let mut plausible = vec![true; n];
        for i in 0..n {
            let r = readings[i];
            let ok = r.is_finite()
                && (self.last[i].is_nan() || (r - self.last[i]).abs() <= self.cfg.max_step)
                && (median.is_nan() || (r - median).abs() <= self.cfg.max_deviation);
            self.last[i] = r;
            if ok {
                self.last_good[i] = r;
            } else {
                plausible[i] = false;
                self.flags += 1;
                self.obs_flags.inc();
                // Substitute the last plausible value; before any good
                // reading exists the median is the best available guess.
                readings[i] = if self.last_good[i].is_nan() {
                    median
                } else {
                    self.last_good[i]
                };
            }
        }

        for core in 0..self.in_fallback.len() {
            let core_ok = plausible[core * per_core..(core + 1) * per_core]
                .iter()
                .all(|&p| p);
            if !core_ok && !self.in_fallback[core] {
                self.in_fallback[core] = true;
                self.since[core] = time;
                self.entries += 1;
                self.obs_entries.inc();
            } else if core_ok
                && self.in_fallback[core]
                && time - self.since[core] >= self.cfg.min_hold
            {
                self.in_fallback[core] = false;
                self.exits += 1;
                self.obs_exits.inc();
            }
        }
    }

    /// Per-core fallback latch.
    pub fn in_fallback(&self) -> &[bool] {
        &self.in_fallback
    }

    /// Whether any core is currently in fallback.
    pub fn any_fallback(&self) -> bool {
        self.in_fallback.iter().any(|&f| f)
    }

    /// Last plausible reading of one sensor slot (flattened core-major
    /// index); NaN if none was ever plausible.
    pub fn last_good(&self, slot: usize) -> f64 {
        self.last_good[slot]
    }

    /// Fallback episodes entered.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Fallback episodes exited.
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// Total implausible readings flagged.
    pub fn flags(&self) -> u64 {
        self.flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd() -> Watchdog {
        Watchdog::new(WatchdogConfig::enabled(), 2, 2)
    }

    #[test]
    fn disabled_watchdog_touches_nothing() {
        let mut w = Watchdog::new(WatchdogConfig::disabled(), 2, 2);
        let mut r = [80.0, f64::NAN, 200.0, -40.0];
        w.assess(0.0, &mut r);
        assert!(r[1].is_nan());
        assert_eq!(r[2], 200.0);
        assert!(!w.any_fallback());
        assert_eq!(w.flags(), 0);
    }

    #[test]
    fn plausible_readings_pass_through() {
        let mut w = wd();
        let mut r = [70.0, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r);
        assert_eq!(r, [70.0, 71.0, 69.5, 70.5]);
        assert!(!w.any_fallback());
        let mut r2 = [70.5, 71.4, 70.0, 71.0];
        w.assess(1e-3, &mut r2);
        assert!(!w.any_fallback());
        assert_eq!(w.flags(), 0);
    }

    #[test]
    fn step_jump_is_flagged_and_substituted() {
        let mut w = wd();
        let mut r0 = [70.0, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r0);
        let mut r1 = [150.0, 71.0, 69.5, 70.5];
        w.assess(1e-3, &mut r1);
        assert_eq!(r1[0], 70.0, "substituted with last good");
        assert!(w.in_fallback()[0]);
        assert!(!w.in_fallback()[1]);
        assert_eq!(w.entries(), 1);
        assert_eq!(w.flags(), 1);
    }

    #[test]
    fn frozen_outlier_stays_flagged_via_deviation() {
        let mut w = wd();
        let mut r0 = [70.0, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r0);
        // Stuck at 150: after the first step the delta is zero, but the
        // deviation from the chip median keeps it implausible.
        for i in 1..5 {
            let mut r = [150.0, 71.0, 69.5, 70.5];
            w.assess(i as f64 * 1e-3, &mut r);
            assert_eq!(r[0], 70.0);
            assert!(w.in_fallback()[0]);
        }
        assert_eq!(w.entries(), 1, "one episode, not one per step");
    }

    #[test]
    fn nan_is_always_implausible() {
        let mut w = wd();
        let mut r0 = [70.0, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r0);
        let mut r1 = [70.0, f64::NAN, 69.5, 70.5];
        w.assess(1e-3, &mut r1);
        assert_eq!(r1[1], 71.0);
        assert!(w.in_fallback()[0]);
    }

    #[test]
    fn recovery_exits_after_min_hold() {
        let mut w = wd();
        let mut r0 = [70.0, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r0);
        let mut bad = [f64::NAN, 71.0, 69.5, 70.5];
        w.assess(1e-4, &mut bad);
        assert!(w.in_fallback()[0]);
        // Plausible again, but inside the hold window: stays latched.
        let mut ok = [70.0, 71.0, 69.5, 70.5];
        w.assess(2e-4, &mut ok);
        assert!(w.in_fallback()[0]);
        // After the hold expires it releases.
        let mut ok2 = [70.0, 71.0, 69.5, 70.5];
        w.assess(1e-4 + 2e-3, &mut ok2);
        assert!(!w.in_fallback()[0]);
        assert_eq!(w.exits(), 1);
    }

    #[test]
    fn bound_obs_counters_mirror_internal_ones() {
        let obs = ObsHandle::enabled(16);
        let mut w = wd();
        w.bind_obs(&obs);
        let mut r0 = [70.0, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r0);
        let mut bad = [f64::NAN, 71.0, 69.5, 70.5];
        w.assess(1e-4, &mut bad);
        let mut ok = [70.0, 71.0, 69.5, 70.5];
        w.assess(1e-4 + 2e-3, &mut ok);
        assert_eq!(obs.counter("dtm_watchdog_flags_total").get(), w.flags());
        assert_eq!(obs.counter("dtm_watchdog_entries_total").get(), w.entries());
        assert_eq!(obs.counter("dtm_watchdog_exits_total").get(), w.exits());
        assert!(w.flags() > 0 && w.entries() > 0 && w.exits() > 0);
    }

    #[test]
    fn first_sample_without_history_uses_median_substitute() {
        let mut w = wd();
        let mut r = [f64::NAN, 71.0, 69.5, 70.5];
        w.assess(0.0, &mut r);
        assert!(
            (r[0] - 70.5).abs() < 1e-12,
            "median substitute, got {}",
            r[0]
        );
        assert!(w.in_fallback()[0]);
    }
}
