//! Continuous and discrete transfer functions, and continuous-to-discrete
//! conversion (the `c2d` step of the study's controller design flow).

use crate::{Complex, Polynomial};
use serde::{Deserialize, Serialize};

/// Discretization method for [`TransferFunction::c2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum C2dMethod {
    /// Bilinear (Tustin) transform: `s = (2/T)(z−1)/(z+1)`.
    Tustin,
    /// Forward Euler: `s = (z−1)/T`. This is the mapping that produces
    /// the paper's published difference equation.
    ForwardEuler,
    /// Backward Euler: `s = (z−1)/(T·z)`.
    BackwardEuler,
}

/// A continuous-time transfer function `N(s)/D(s)` with real
/// coefficients in descending powers of `s`.
///
/// # Examples
///
/// A PI controller `G(s) = Kp + Ki/s`:
///
/// ```
/// use dtm_control::TransferFunction;
///
/// let g = TransferFunction::pi(0.0107, 248.5);
/// assert_eq!(g.num().coeffs(), &[0.0107, 248.5]);
/// assert_eq!(g.den().coeffs(), &[1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    num: Polynomial,
    den: Polynomial,
}

impl TransferFunction {
    /// Creates `N(s)/D(s)` from descending-power coefficient vectors.
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is identically zero.
    pub fn new(num: Vec<f64>, den: Vec<f64>) -> Self {
        TransferFunction {
            num: Polynomial::new(num),
            den: Polynomial::new(den),
        }
    }

    /// The PI controller `G(s) = Kp + Ki/s = (Kp·s + Ki)/s`.
    pub fn pi(kp: f64, ki: f64) -> Self {
        TransferFunction::new(vec![kp, ki], vec![1.0, 0.0])
    }

    /// The PID controller `G(s) = Kp + Ki/s + Kd·s`.
    pub fn pid(kp: f64, ki: f64, kd: f64) -> Self {
        TransferFunction::new(vec![kd, kp, ki], vec![1.0, 0.0])
    }

    /// A first-order plant `K/(τ·s + 1)` — the standard compact model of
    /// a thermal node driven by a power actuator.
    pub fn first_order(gain: f64, tau: f64) -> Self {
        TransferFunction::new(vec![gain], vec![tau, 1.0])
    }

    /// Numerator polynomial.
    pub fn num(&self) -> &Polynomial {
        &self.num
    }

    /// Denominator polynomial.
    pub fn den(&self) -> &Polynomial {
        &self.den
    }

    /// Poles (roots of the denominator).
    pub fn poles(&self) -> Vec<Complex> {
        self.den.roots()
    }

    /// Zeros (roots of the numerator).
    pub fn zeros(&self) -> Vec<Complex> {
        self.num.roots()
    }

    /// Frequency response `G(jω)`.
    pub fn eval(&self, s: Complex) -> Complex {
        self.num.eval(s) / self.den.eval(s)
    }

    /// Series connection `self · other`.
    pub fn series(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction {
            num: self.num.mul(&other.num),
            den: self.den.mul(&other.den),
        }
    }

    /// Closed loop with unity negative feedback: `G/(1+G)`.
    pub fn unity_feedback(&self) -> TransferFunction {
        TransferFunction {
            num: self.num.clone(),
            den: self.den.add(&self.num),
        }
    }

    /// Whether every pole lies strictly in the left half plane (the root
    /// locus criterion the paper verifies in MATLAB).
    pub fn is_stable(&self) -> bool {
        self.poles().iter().all(|p| p.re < 0.0)
    }

    /// Converts to a discrete transfer function with sample time `dt`.
    ///
    /// Substitutes the method's rational mapping `s = (a·z + b)/(c·z + d)`
    /// and clears denominators of the degree-`n` rational composition.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn c2d(&self, dt: f64, method: C2dMethod) -> DiscreteTf {
        assert!(dt.is_finite() && dt > 0.0, "sample time must be positive");
        let (a, b, c, d) = match method {
            C2dMethod::Tustin => (2.0 / dt, -2.0 / dt, 1.0, 1.0),
            C2dMethod::ForwardEuler => (1.0 / dt, -1.0 / dt, 0.0, 1.0),
            C2dMethod::BackwardEuler => (1.0 / dt, -1.0 / dt, 1.0, 0.0),
        };
        let n = self.num.degree().max(self.den.degree());
        let num_z = substitute(&self.num, a, b, c, d, n);
        let den_z = substitute(&self.den, a, b, c, d, n);
        DiscreteTf::new(num_z.coeffs().to_vec(), den_z.coeffs().to_vec(), dt)
    }
}

/// Computes `P((a·z+b)/(c·z+d)) · (c·z+d)^n` as a polynomial in `z`.
fn substitute(p: &Polynomial, a: f64, b: f64, c: f64, d: f64, n: usize) -> Polynomial {
    let up = Polynomial::new(vec![a, b]); // a·z + b
    let down = Polynomial::new(vec![c, d]); // c·z + d
    let coeffs = p.coeffs();
    let m = p.degree();
    let mut acc: Option<Polynomial> = None;
    for (idx, &pk) in coeffs.iter().enumerate() {
        let k = m - idx; // power of s this coefficient multiplies
        if pk == 0.0 {
            continue;
        }
        let mut term = Polynomial::new(vec![pk]);
        for _ in 0..k {
            term = term.mul(&up);
        }
        for _ in 0..(n - k) {
            term = term.mul(&down);
        }
        acc = Some(match acc {
            Some(s) => s.add(&term),
            None => term,
        });
    }
    acc.expect("polynomial has at least one nonzero coefficient")
}

/// A discrete-time transfer function `N(z)/D(z)` with sample time `dt`,
/// coefficients in descending powers of `z`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteTf {
    num: Polynomial,
    den: Polynomial,
    dt: f64,
}

impl DiscreteTf {
    /// Creates `N(z)/D(z)` with sample time `dt` (s).
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is identically zero or `dt ≤ 0`.
    pub fn new(num: Vec<f64>, den: Vec<f64>, dt: f64) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "sample time must be positive");
        DiscreteTf {
            num: Polynomial::new(num),
            den: Polynomial::new(den),
            dt,
        }
    }

    /// Numerator polynomial in `z`.
    pub fn num(&self) -> &Polynomial {
        &self.num
    }

    /// Denominator polynomial in `z`.
    pub fn den(&self) -> &Polynomial {
        &self.den
    }

    /// Sample time (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Poles in the z-plane.
    pub fn poles(&self) -> Vec<Complex> {
        self.den.roots()
    }

    /// Whether every pole lies strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        self.poles().iter().all(|p| p.abs() < 1.0)
    }

    /// The difference-equation coefficients `(b, a)` normalized so
    /// `a[0] = 1`:
    ///
    /// ```text
    ///   u[n] = −a[1]·u[n−1] − … + b[0]·e[n] + b[1]·e[n−1] + …
    /// ```
    ///
    /// The numerator is right-aligned to the denominator's degree so that
    /// `b[k]` multiplies `e[n−k]` (causal form).
    pub fn difference_coeffs(&self) -> (Vec<f64>, Vec<f64>) {
        let a0 = self.den.coeffs()[0];
        let a: Vec<f64> = self.den.coeffs().iter().map(|c| c / a0).collect();
        let lead_gap = self.den.degree() - self.num.degree();
        let mut b = vec![0.0; lead_gap];
        b.extend(self.num.coeffs().iter().map(|c| c / a0));
        (b, a)
    }

    /// Simulates the filter over an input sequence (zero initial state).
    pub fn simulate(&self, input: &[f64]) -> Vec<f64> {
        let (b, a) = self.difference_coeffs();
        let mut out = vec![0.0; input.len()];
        for n in 0..input.len() {
            let mut acc = 0.0;
            for (k, &bk) in b.iter().enumerate() {
                if n >= k {
                    acc += bk * input[n - k];
                }
            }
            for (k, &ak) in a.iter().enumerate().skip(1) {
                if n >= k {
                    acc -= ak * out[n - k];
                }
            }
            out[n] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Control period of the study: one power-trace sample, 100 000
    /// cycles at 3.6 GHz.
    const DT: f64 = 1.0e5 / 3.6e9;

    #[test]
    fn pi_forward_euler_reproduces_paper_coefficients() {
        // The paper's discrete controller:
        //   u[n] = u[n−1] − 0.0107·e[n] + 0.003796·e[n−1]
        // is the forward-Euler discretization of −G(s) with Kp = 0.0107,
        // Ki = 248.5, T = 27.78 µs. We verify the coefficients to the
        // paper's printed precision.
        let g = TransferFunction::pi(0.0107, 248.5);
        let d = g.c2d(DT, C2dMethod::ForwardEuler);
        let (b, a) = d.difference_coeffs();
        assert_eq!(a.len(), 2);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!((a[1] + 1.0).abs() < 1e-12, "integrator pole at z=1");
        // Negate for the actuation direction (hotter ⇒ slower).
        let e_n = -b[0];
        let e_n1 = -b[1];
        assert!((e_n + 0.0107).abs() < 1e-12, "e[n] coeff = {e_n}");
        // (The paper prints 0.003796; the exact value is 0.0037972.)
        assert!((e_n1 - 0.003796).abs() < 2e-6, "e[n−1] coeff = {e_n1}");
    }

    #[test]
    fn tustin_pi_matches_analytic_form() {
        let (kp, ki, t) = (2.0, 30.0, 0.01);
        let d = TransferFunction::pi(kp, ki).c2d(t, C2dMethod::Tustin);
        let (b, a) = d.difference_coeffs();
        // Analytic Tustin PI: b0 = Kp + Ki·T/2, b1 = −Kp + Ki·T/2.
        assert!((b[0] - (kp + ki * t / 2.0)).abs() < 1e-9);
        assert!((b[1] - (-kp + ki * t / 2.0)).abs() < 1e-9);
        assert!((a[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_plant_pole_maps_correctly() {
        let tau = 0.01;
        let g = TransferFunction::first_order(5.0, tau);
        // Continuous pole at −1/τ.
        let p = g.poles();
        assert_eq!(p.len(), 1);
        assert!((p[0].re + 1.0 / tau).abs() < 1e-9);
        // Backward-Euler pole: z = 1/(1 + T/τ).
        let t = 1e-3;
        let d = g.c2d(t, C2dMethod::BackwardEuler);
        let zp = d.poles();
        assert_eq!(zp.len(), 1);
        assert!((zp[0].re - 1.0 / (1.0 + t / tau)).abs() < 1e-9);
        assert!(d.is_stable());
    }

    #[test]
    fn closed_loop_pi_plus_thermal_plant_is_stable() {
        // Plant: 30 °C per unit actuation, 10 ms time constant. Open loop
        // PI·plant, unity feedback. This mirrors the paper's MATLAB
        // stability verification.
        let pi = TransferFunction::pi(0.0107, 248.5);
        let plant = TransferFunction::first_order(30.0, 0.01);
        let cl = pi.series(&plant).unity_feedback();
        assert!(cl.is_stable(), "poles: {:?}", cl.poles());
    }

    #[test]
    fn paper_constants_remain_stable_when_perturbed() {
        // §4.1: "these constants can actually deviate significantly while
        // still achieving the intended goals".
        let plant = TransferFunction::first_order(30.0, 0.01);
        for scale in [0.25, 0.5, 2.0, 4.0] {
            let pi = TransferFunction::pi(0.0107 * scale, 248.5 * scale);
            let cl = pi.series(&plant).unity_feedback();
            assert!(cl.is_stable(), "unstable at gain scale {scale}");
        }
    }

    #[test]
    fn unity_feedback_of_integrator_moves_pole() {
        // G = 1/s has a pole at the origin; closed loop 1/(s+1) at −1.
        let g = TransferFunction::new(vec![1.0], vec![1.0, 0.0]);
        let cl = g.unity_feedback();
        let p = cl.poles();
        assert_eq!(p.len(), 1);
        assert!((p[0].re + 1.0).abs() < 1e-9);
    }

    #[test]
    fn series_multiplies_degree() {
        let a = TransferFunction::first_order(1.0, 0.1);
        let b = TransferFunction::first_order(2.0, 0.2);
        let s = a.series(&b);
        assert_eq!(s.den().degree(), 2);
        assert_eq!(s.poles().len(), 2);
    }

    #[test]
    fn discrete_simulation_of_unit_gain_passes_input() {
        let d = DiscreteTf::new(vec![1.0], vec![1.0], 1e-3);
        let out = d.simulate(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn discrete_integrator_accumulates() {
        // U(z)/E(z) = T/(z−1): u[n] = u[n−1] + T·e[n−1].
        let t = 0.5;
        let d = DiscreteTf::new(vec![t], vec![1.0, -1.0], t);
        let out = d.simulate(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(out, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn unstable_discrete_pole_detected() {
        let d = DiscreteTf::new(vec![1.0], vec![1.0, -1.5], 1e-3);
        assert!(!d.is_stable());
        let stable = DiscreteTf::new(vec![1.0], vec![1.0, -0.5], 1e-3);
        assert!(stable.is_stable());
    }

    #[test]
    fn frequency_response_dc_gain() {
        let g = TransferFunction::first_order(7.0, 0.3);
        let dc = g.eval(Complex::real(0.0));
        assert!((dc.re - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample time")]
    fn c2d_rejects_bad_dt() {
        TransferFunction::pi(1.0, 1.0).c2d(0.0, C2dMethod::Tustin);
    }

    #[test]
    fn pid_has_derivative_term() {
        let g = TransferFunction::pid(1.0, 2.0, 0.5);
        assert_eq!(g.num().coeffs(), &[0.5, 1.0, 2.0]);
    }
}
