//! Real-coefficient polynomials and root finding.
//!
//! Roots are found with the Durand–Kerner (Weierstrass) simultaneous
//! iteration, which is robust for the low-degree characteristic
//! polynomials that arise in control analysis.

use crate::Complex;
use serde::{Deserialize, Serialize};

/// A polynomial with real coefficients in **descending** powers:
/// `coeffs[0]·x^(n-1) + … + coeffs[n-1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from descending-power coefficients, trimming
    /// leading zeros.
    ///
    /// # Panics
    ///
    /// Panics if all coefficients are zero (the zero polynomial has no
    /// meaningful degree for root finding).
    pub fn new(coeffs: Vec<f64>) -> Self {
        let first_nonzero = coeffs
            .iter()
            .position(|&c| c != 0.0)
            .expect("the zero polynomial is not supported");
        Polynomial {
            coeffs: coeffs[first_nonzero..].to_vec(),
        }
    }

    /// Degree of the polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Coefficients in descending powers.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates at a complex point via Horner's rule.
    pub fn eval(&self, x: Complex) -> Complex {
        let mut acc = Complex::default();
        for &c in &self.coeffs {
            acc = acc * x + Complex::real(c);
        }
        acc
    }

    /// Evaluates at a real point.
    pub fn eval_real(&self, x: f64) -> f64 {
        self.coeffs.iter().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Multiplies two polynomials.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, &a) in self.coeffs.iter().rev().enumerate() {
            out[n - 1 - i] += a;
        }
        for (i, &b) in other.coeffs.iter().rev().enumerate() {
            out[n - 1 - i] += b;
        }
        if out.iter().all(|&c| c == 0.0) {
            // Sum cancelled to zero; represent as the constant 0 by
            // convention (allowed here even though `new` rejects it).
            return Polynomial { coeffs: vec![0.0] };
        }
        Polynomial::new(out)
    }

    /// Scales every coefficient.
    pub fn scale(&self, k: f64) -> Polynomial {
        if k == 0.0 {
            return Polynomial { coeffs: vec![0.0] };
        }
        Polynomial {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
        }
    }

    /// All complex roots via Durand–Kerner iteration.
    ///
    /// Returns an empty vector for constant polynomials. Results are
    /// accurate to ~1e-10 for the well-conditioned low-degree polynomials
    /// used in control analysis.
    pub fn roots(&self) -> Vec<Complex> {
        let n = self.degree();
        if n == 0 {
            return Vec::new();
        }
        // Normalize to monic.
        let lead = self.coeffs[0];
        let monic: Vec<f64> = self.coeffs.iter().map(|c| c / lead).collect();
        let poly = Polynomial { coeffs: monic };

        // Initial guesses on a non-real circle (Durand–Kerner standard).
        let radius = 1.0
            + poly
                .coeffs
                .iter()
                .skip(1)
                .fold(0.0f64, |m, c| m.max(c.abs()));
        let mut z: Vec<Complex> = (0..n)
            .map(|k| {
                let theta = 0.4 + 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Complex::new(radius * theta.cos(), radius * theta.sin())
            })
            .collect();

        for _ in 0..500 {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let mut denom = Complex::real(1.0);
                for j in 0..n {
                    if i != j {
                        denom = denom * (z[i] - z[j]);
                    }
                }
                let delta = poly.eval(z[i]) / denom;
                z[i] = z[i] - delta;
                max_delta = max_delta.max(delta.abs());
            }
            if max_delta < 1e-13 {
                break;
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_roots(p: &Polynomial) -> Vec<f64> {
        let mut r: Vec<f64> = p
            .roots()
            .into_iter()
            .filter(|z| z.im.abs() < 1e-8)
            .map(|z| z.re)
            .collect();
        r.sort_by(f64::total_cmp);
        r
    }

    #[test]
    fn quadratic_real_roots() {
        // (x-2)(x+3) = x² + x − 6
        let p = Polynomial::new(vec![1.0, 1.0, -6.0]);
        let r = sorted_real_roots(&p);
        assert_eq!(r.len(), 2);
        assert!((r[0] + 3.0).abs() < 1e-9);
        assert!((r[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_complex_roots() {
        // x² + 1 → ±i
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let mut roots = p.roots();
        roots.sort_by(|a, b| a.im.total_cmp(&b.im));
        assert!((roots[0] - Complex::new(0.0, -1.0)).abs() < 1e-9);
        assert!((roots[1] - Complex::new(0.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn cubic_mixed_roots() {
        // (x-1)(x²+4) = x³ − x² + 4x − 4
        let p = Polynomial::new(vec![1.0, -1.0, 4.0, -4.0]);
        let roots = p.roots();
        assert_eq!(roots.len(), 3);
        for z in &roots {
            assert!(p.eval(*z).abs() < 1e-8, "residual at {z}");
        }
    }

    #[test]
    fn leading_zeros_are_trimmed() {
        let p = Polynomial::new(vec![0.0, 0.0, 2.0, -4.0]);
        assert_eq!(p.degree(), 1);
        let r = sorted_real_roots(&p);
        assert!((r[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn eval_real_matches_eval() {
        let p = Polynomial::new(vec![2.0, -3.0, 0.5]);
        for x in [-2.0, 0.0, 1.5] {
            let c = p.eval(Complex::real(x));
            assert!((c.re - p.eval_real(x)).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn product_roots_union() {
        let a = Polynomial::new(vec![1.0, -1.0]); // x − 1
        let b = Polynomial::new(vec![1.0, 2.0]); // x + 2
        let p = a.mul(&b);
        let r = sorted_real_roots(&p);
        assert!((r[0] + 2.0).abs() < 1e-9);
        assert!((r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_aligns_degrees() {
        let a = Polynomial::new(vec![1.0, 0.0, 0.0]); // x²
        let b = Polynomial::new(vec![1.0]); // 1
        let s = a.add(&b);
        assert_eq!(s.coeffs(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn constant_polynomial_has_no_roots() {
        let p = Polynomial::new(vec![5.0]);
        assert!(p.roots().is_empty());
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn high_multiplicity_root_converges_roughly() {
        // (x−1)³: Durand–Kerner converges slowly near multiple roots;
        // accept loose tolerance.
        let lin = Polynomial::new(vec![1.0, -1.0]);
        let p = lin.mul(&lin).mul(&lin);
        for z in p.roots() {
            assert!((z - Complex::real(1.0)).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn zero_polynomial_rejected() {
        Polynomial::new(vec![0.0, 0.0]);
    }
}
