//! Formal control-theory toolkit for thermal DVFS.
//!
//! The ISCA'06 DTM study designs its DVFS throttle as a closed-loop PI
//! controller: a continuous design `G(s) = Kp + Ki/s` is verified for
//! stability (all poles in the left half plane), discretized at the
//! 27.78 µs power-sample period, and implemented in hardware as a
//! two-term difference equation with output clipping. This crate
//! reproduces that entire flow in Rust:
//!
//! - [`TransferFunction`] — continuous-time rational transfer functions,
//!   series/feedback composition, pole/zero analysis.
//! - [`TransferFunction::c2d`] — continuous-to-discrete conversion
//!   (Tustin, forward Euler, backward Euler), the MATLAB `c2d` step.
//! - [`DiscreteTf`] — z-domain transfer functions, difference-equation
//!   extraction, simulation, unit-circle stability.
//! - [`ClippedPi`] — the paper's hardware controller
//!   `u[n] = u[n−1] − 0.0107·e[n] + 0.003796·e[n−1]`, clipped to
//!   `[0.2, 1.0]`, with clipping-as-anti-windup.
//! - [`adaptive`] — online gain scheduling ([`GainSchedule`]): the
//!   Rao-style adjustable-gain law and a windowed self-tuner layered
//!   on the clipped PI, bit-identical to it when adaptation is
//!   disabled.
//! - [`response`] — settling time, overshoot, and steady-state metrics.
//!
//! # Examples
//!
//! Reproduce the paper's published difference-equation coefficients from
//! its continuous gains:
//!
//! ```
//! use dtm_control::{C2dMethod, TransferFunction};
//!
//! let g = TransferFunction::pi(0.0107, 248.5);
//! let d = g.c2d(1.0e5 / 3.6e9, C2dMethod::ForwardEuler);
//! let (b, _a) = d.difference_coeffs();
//! assert!((-b[0] - (-0.0107f64)).abs() < 1e-12);
//! assert!((-b[1] - 0.003796).abs() < 2e-6);
//! ```

pub mod adaptive;
mod complex;
mod pi;
mod poly;
pub mod response;
pub mod stability;
mod tf;

pub use adaptive::{
    AdaptivePi, DvfsController, FixedSchedule, GainSchedule, GainScheduleConfig, RaoSchedule,
    SelfTuneSchedule, MULT_MAX, MULT_MIN, RAO_E_REF, RAO_SLEW_PER_STEP,
};
pub use complex::Complex;
pub use pi::{ClippedPi, PiGains};
pub use poly::Polynomial;
pub use stability::{
    closed_loop_routh, frequency_response, margins, routh_hurwitz, FrequencyPoint, Margins,
    RouthVerdict,
};
pub use tf::{C2dMethod, DiscreteTf, TransferFunction};
