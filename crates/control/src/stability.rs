//! Algebraic and frequency-domain stability analysis: the Routh–Hurwitz
//! criterion (stability without root finding) and gain/phase margins
//! from the open-loop frequency response.

use crate::{Complex, Polynomial, TransferFunction};

/// Result of a Routh–Hurwitz analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RouthVerdict {
    /// All characteristic roots lie strictly in the left half plane.
    Stable,
    /// At least one sign change in the first column: `count` roots in
    /// the right half plane.
    Unstable { rhp_roots: usize },
    /// A zero appeared in the first column (marginal/degenerate case).
    Marginal,
}

/// Applies the Routh–Hurwitz criterion to a characteristic polynomial
/// (descending powers of `s`).
///
/// # Panics
///
/// Panics if the polynomial has degree 0.
pub fn routh_hurwitz(char_poly: &Polynomial) -> RouthVerdict {
    let coeffs = char_poly.coeffs();
    let n = coeffs.len();
    assert!(n >= 2, "characteristic polynomial must have degree >= 1");

    // Build the first two rows.
    let width = n.div_ceil(2);
    let mut prev: Vec<f64> = (0..width)
        .map(|i| *coeffs.get(2 * i).unwrap_or(&0.0))
        .collect();
    let mut curr: Vec<f64> = (0..width)
        .map(|i| *coeffs.get(2 * i + 1).unwrap_or(&0.0))
        .collect();

    let mut first_column = vec![prev[0]];
    for _row in 2..n {
        if curr[0].abs() < 1e-300 {
            return RouthVerdict::Marginal;
        }
        first_column.push(curr[0]);
        let mut next = vec![0.0; width];
        for i in 0..width - 1 {
            next[i] = (curr[0] * prev[i + 1] - prev[0] * curr[i + 1]) / curr[0];
        }
        prev = std::mem::replace(&mut curr, next);
    }
    first_column.push(curr[0]);

    if first_column.iter().any(|c| c.abs() < 1e-300) {
        return RouthVerdict::Marginal;
    }
    let sign_changes = first_column
        .windows(2)
        .filter(|w| (w[0] > 0.0) != (w[1] > 0.0))
        .count();
    if sign_changes == 0 {
        RouthVerdict::Stable
    } else {
        RouthVerdict::Unstable {
            rhp_roots: sign_changes,
        }
    }
}

/// Closed-loop (unity negative feedback) Routh–Hurwitz verdict for an
/// open-loop transfer function: analyzes `D(s) + N(s)`.
pub fn closed_loop_routh(open_loop: &TransferFunction) -> RouthVerdict {
    let char_poly = open_loop.den().add(open_loop.num());
    routh_hurwitz(&char_poly)
}

/// One point of a frequency response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPoint {
    /// Angular frequency (rad/s).
    pub omega: f64,
    /// Magnitude (absolute, not dB).
    pub magnitude: f64,
    /// Phase (radians, unwrapped within ±π per point).
    pub phase: f64,
}

/// Evaluates `G(jω)` over a logarithmic frequency sweep.
///
/// # Panics
///
/// Panics unless `0 < omega_lo < omega_hi` and `points >= 2`.
pub fn frequency_response(
    g: &TransferFunction,
    omega_lo: f64,
    omega_hi: f64,
    points: usize,
) -> Vec<FrequencyPoint> {
    assert!(omega_lo > 0.0 && omega_hi > omega_lo, "bad frequency range");
    assert!(points >= 2, "need at least two points");
    let log_lo = omega_lo.ln();
    let step = (omega_hi.ln() - log_lo) / (points - 1) as f64;
    (0..points)
        .map(|i| {
            let omega = (log_lo + step * i as f64).exp();
            let z = g.eval(Complex::new(0.0, omega));
            FrequencyPoint {
                omega,
                magnitude: z.abs(),
                phase: z.im.atan2(z.re),
            }
        })
        .collect()
}

/// Stability margins extracted from an open-loop frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Margins {
    /// Gain margin (absolute factor) at the phase-crossover frequency,
    /// or `None` if the phase never crosses −180°.
    pub gain_margin: Option<f64>,
    /// Phase margin (radians above −180°) at the gain-crossover
    /// frequency, or `None` if the magnitude never crosses 1.
    pub phase_margin: Option<f64>,
}

/// Computes gain and phase margins from an open-loop sweep. Phases are
/// unwrapped (continuity-preserving) before crossover detection, so
/// loops whose raw `atan2` phase wraps past ±180° are handled.
pub fn margins(sweep: &[FrequencyPoint]) -> Margins {
    use std::f64::consts::{PI, TAU};
    // Unwrap phases.
    let mut unwrapped = Vec::with_capacity(sweep.len());
    let mut offset = 0.0;
    for (i, p) in sweep.iter().enumerate() {
        if i > 0 {
            let prev: f64 = unwrapped[i - 1];
            let mut candidate = p.phase + offset;
            while candidate - prev > PI {
                candidate -= TAU;
                offset -= TAU;
            }
            while prev - candidate > PI {
                candidate += TAU;
                offset += TAU;
            }
            unwrapped.push(candidate);
        } else {
            unwrapped.push(p.phase);
        }
    }

    let mut gain_margin = None;
    let mut phase_margin = None;
    for i in 0..sweep.len() - 1 {
        let (a, b) = (&sweep[i], &sweep[i + 1]);
        let (pa, pb) = (unwrapped[i], unwrapped[i + 1]);
        if gain_margin.is_none() && (pa + PI) * (pb + PI) < 0.0 {
            let mag = 0.5 * (a.magnitude + b.magnitude);
            if mag > 0.0 {
                gain_margin = Some(1.0 / mag);
            }
        }
        if phase_margin.is_none() && (a.magnitude - 1.0) * (b.magnitude - 1.0) < 0.0 {
            phase_margin = Some(0.5 * (pa + pb) + PI);
        }
    }
    Margins {
        gain_margin,
        phase_margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routh_detects_stable_cubic() {
        // (s+1)(s+2)(s+3) = s³ + 6s² + 11s + 6
        let p = Polynomial::new(vec![1.0, 6.0, 11.0, 6.0]);
        assert_eq!(routh_hurwitz(&p), RouthVerdict::Stable);
    }

    #[test]
    fn routh_detects_unstable_cubic() {
        // (s−1)(s+2)(s+3) = s³ + 4s² + s − 6: one RHP root.
        let p = Polynomial::new(vec![1.0, 4.0, 1.0, -6.0]);
        assert_eq!(routh_hurwitz(&p), RouthVerdict::Unstable { rhp_roots: 1 });
    }

    #[test]
    fn routh_counts_two_rhp_roots() {
        // (s−1)(s−2)(s+3) = s³ − 7s + 6
        let p = Polynomial::new(vec![1.0, 0.0, -7.0, 6.0]);
        // First-column zero (missing s² term) → marginal/degenerate per
        // the textbook procedure.
        assert_eq!(routh_hurwitz(&p), RouthVerdict::Marginal);
    }

    #[test]
    fn routh_agrees_with_pole_computation() {
        // Cross-check against the Durand–Kerner root finder for several
        // random-ish polynomials.
        for coeffs in [
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.0, 10.0, 35.0, 50.0, 24.0], // (s+1)(s+2)(s+3)(s+4)
            vec![1.0, 1.0, -2.0],              // (s+2)(s−1)
            vec![2.0, 3.0, 7.0],
        ] {
            let p = Polynomial::new(coeffs);
            let rhp = p.roots().iter().filter(|z| z.re > 1e-9).count();
            match routh_hurwitz(&p) {
                RouthVerdict::Stable => assert_eq!(rhp, 0, "{p:?}"),
                RouthVerdict::Unstable { rhp_roots } => assert_eq!(rhp, rhp_roots, "{p:?}"),
                RouthVerdict::Marginal => {}
            }
        }
    }

    #[test]
    fn closed_loop_routh_matches_paper_design() {
        let pi = TransferFunction::pi(0.0107, 248.5);
        let plant = TransferFunction::first_order(30.0, 0.01);
        let open = pi.series(&plant);
        assert_eq!(closed_loop_routh(&open), RouthVerdict::Stable);
    }

    #[test]
    fn frequency_response_dc_and_rolloff() {
        let g = TransferFunction::first_order(10.0, 1.0);
        let sweep = frequency_response(&g, 1e-3, 1e3, 200);
        // Near-DC magnitude ≈ 10, high-frequency magnitude ≈ 0.
        assert!((sweep.first().unwrap().magnitude - 10.0).abs() < 0.1);
        assert!(sweep.last().unwrap().magnitude < 0.1);
        // Phase approaches −90°.
        assert!((sweep.last().unwrap().phase + std::f64::consts::FRAC_PI_2).abs() < 0.05);
    }

    #[test]
    fn margins_of_integrator_chain() {
        // G = 10/(s(s+1)(0.1s+1)): classic example with finite margins.
        let g = TransferFunction::new(vec![10.0], vec![0.1, 1.1, 1.0, 0.0]);
        let sweep = frequency_response(&g, 1e-2, 1e3, 2000);
        let m = margins(&sweep);
        let gm = m.gain_margin.expect("has gain margin");
        let pm = m.phase_margin.expect("has phase margin");
        // Textbook values: gain margin = 1.1/1.0*… ≈ 1.1 (≈ 0.8 dB);
        // phase margin slightly positive — the loop is near-marginal.
        assert!(gm > 1.0 && gm < 1.5, "gm = {gm}");
        assert!(pm.abs() < 0.35, "pm = {pm}");
    }

    #[test]
    fn pi_thermal_loop_has_healthy_margins() {
        let pi = TransferFunction::pi(0.0107, 248.5);
        let plant = TransferFunction::first_order(30.0, 0.01);
        let open = pi.series(&plant);
        let sweep = frequency_response(&open, 1e-1, 1e6, 4000);
        let m = margins(&sweep);
        // First-order plant + PI: phase never reaches −180°, so gain
        // margin is infinite (None); the phase margin is modest but
        // positive (the closed loop is stable with smooth transitions,
        // matching the paper's "smoother transitions" tuning).
        assert!(m.gain_margin.is_none());
        let pm = m.phase_margin.expect("finite gain crossover");
        assert!(pm > 0.1, "phase margin {pm} rad");
    }

    #[test]
    #[should_panic(expected = "frequency range")]
    fn bad_sweep_range_panics() {
        frequency_response(&TransferFunction::pi(1.0, 1.0), 1.0, 0.5, 10);
    }
}
