//! Adaptive gain scheduling for the clipped PI controller.
//!
//! The paper runs its DVFS loop with one fixed gain pair (Table 3).
//! Rao et al. (arXiv:1507.06357) argue for an *adjustable-gain*
//! integral law instead: the effective gain is scaled online from the
//! measured temperature error and its rate, so the controller responds
//! aggressively to fast thermal transients and gently near the
//! setpoint. This module implements that idea, plus a windowed
//! self-tuning variant, behind the [`GainSchedule`] trait:
//!
//! * [`FixedSchedule`] — multiplier pinned to exactly `1.0`; the
//!   scheduled controller is bit-identical to [`ClippedPi`].
//! * [`RaoSchedule`] — per-step multiplier `1 + α·sat((e + τ·ė)/E_ref)`
//!   with a slew limit, mirroring the adjustable-gain integral law.
//! * [`SelfTuneSchedule`] — deterministic windowed tuner: overshoot in
//!   a window raises the gains multiplicatively, a well-settled window
//!   relaxes them back toward nominal.
//!
//! Every schedule emits a single multiplier `m` applied to *both*
//! gains (`kp·m`, `ki·m`), clamped to [`MULT_MIN`]‥[`MULT_MAX`], so
//! the scheduled controller keeps the fixed design's zero location and
//! only scales its loop gain — the stability-preserving move for a
//! first-order-dominant thermal plant. Determinism: schedules are pure
//! functions of the error sequence (no wall clock, no RNG), so a run
//! replays bit-identically from the same traces and seed.
//!
//! With adaptation disabled (`α = 0` or `rate = 0`) the multiplier
//! stays exactly `1.0`, and `kp·1.0`/`ki·1.0` are bitwise equal to the
//! base gains: the update expression below is then arithmetically
//! identical to [`ClippedPi::update`], which is what the differential
//! suite in `tests/tests/control_equivalence.rs` pins.

use serde::{Deserialize, Serialize};

use crate::pi::{ClippedPi, PiGains};

/// Lower clamp of the gain multiplier (gains never fall below a
/// quarter of their designed values).
pub const MULT_MIN: f64 = 0.25;

/// Upper clamp of the gain multiplier (gains never exceed four times
/// their designed values — the loop stays far from the discrete
/// stability edge, see DESIGN.md §10).
pub const MULT_MAX: f64 = 4.0;

/// Error normalization of the Rao drive term (°C): the saturation is
/// half-engaged at this error magnitude.
pub const RAO_E_REF: f64 = 2.0;

/// Maximum multiplier change per control step for the Rao schedule
/// (slew limit; full range takes ≥ 750 steps ≈ 21 ms at the paper's
/// control period).
pub const RAO_SLEW_PER_STEP: f64 = 0.005;

/// Windowed overshoot (°C above the setpoint) beyond which the
/// self-tuner raises the gains.
pub const SELFTUNE_OVERSHOOT_TOL: f64 = 0.1;

/// Mean absolute windowed error (°C) below which the self-tuner
/// considers the loop settled and relaxes toward the nominal gains.
pub const SELFTUNE_SETTLE_TOL: f64 = 0.25;

/// Smallest self-tuning window (control steps), whatever `window_s`
/// says — statistics over fewer steps are noise.
pub const MIN_WINDOW_STEPS: u64 = 8;

/// Which gain schedule a run uses. `Fixed` (the default) selects the
/// plain [`ClippedPi`] path and is spelled nowhere in cache keys or
/// wire requests, so every pre-existing artifact stays valid.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum GainScheduleConfig {
    /// Fixed gains — the paper's controller, bit-identical to PR-8-era
    /// builds.
    #[default]
    Fixed,
    /// Rao-style adjustable gain: multiplier `1 + α·sat((e + τ·ė)/E_ref)`.
    Rao {
        /// Adaptation strength (0 disables adaptation exactly).
        alpha: f64,
        /// Lookahead time constant τ weighting the error rate (s).
        tau_s: f64,
    },
    /// Windowed self-tuning from overshoot/settling statistics.
    SelfTuning {
        /// Fractional gain adjustment per window (0 disables exactly).
        rate: f64,
        /// Statistics window length (s), floored at
        /// [`MIN_WINDOW_STEPS`] control steps.
        window_s: f64,
    },
}

impl GainScheduleConfig {
    /// The Rao schedule at its reference tuning.
    pub fn rao_default() -> Self {
        GainScheduleConfig::Rao {
            alpha: 1.0,
            tau_s: 2e-3,
        }
    }

    /// The self-tuning schedule at its reference tuning.
    pub fn selftune_default() -> Self {
        GainScheduleConfig::SelfTuning {
            rate: 0.2,
            window_s: 2e-3,
        }
    }

    /// Whether this is the fixed (non-adaptive) schedule.
    pub fn is_fixed(&self) -> bool {
        matches!(self, GainScheduleConfig::Fixed)
    }

    /// Stable wire spelling (`fixed` / `rao` / `selftune`).
    pub fn wire_name(&self) -> &'static str {
        match self {
            GainScheduleConfig::Fixed => "fixed",
            GainScheduleConfig::Rao { .. } => "rao",
            GainScheduleConfig::SelfTuning { .. } => "selftune",
        }
    }

    /// Validates schedule parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or out-of-range parameters.
    pub fn validate(&self) {
        match *self {
            GainScheduleConfig::Fixed => {}
            GainScheduleConfig::Rao { alpha, tau_s } => {
                assert!(
                    alpha.is_finite() && (0.0..=MULT_MAX).contains(&alpha),
                    "rao alpha must be finite in [0, {MULT_MAX}]"
                );
                assert!(
                    tau_s.is_finite() && tau_s >= 0.0,
                    "rao tau_s must be finite and non-negative"
                );
            }
            GainScheduleConfig::SelfTuning { rate, window_s } => {
                assert!(
                    rate.is_finite() && (0.0..1.0).contains(&rate),
                    "selftune rate must be finite in [0, 1)"
                );
                assert!(
                    window_s.is_finite() && window_s > 0.0,
                    "selftune window_s must be finite and positive"
                );
            }
        }
    }
}

/// An online gain schedule: maps the observed error sequence to a
/// multiplier applied to both PI gains for the current step.
pub trait GainSchedule {
    /// Stable schedule name.
    fn name(&self) -> &'static str;

    /// The multiplier for the step observing error `e` (`prev_e` is
    /// the previous step's error). Implementations must clamp to
    /// `[MULT_MIN, MULT_MAX]` and be pure in the error history.
    fn multiplier(&mut self, e: f64, prev_e: f64) -> f64;

    /// Restores the initial (nominal-gain) state.
    fn reset(&mut self);
}

/// The trivial schedule: multiplier pinned to exactly `1.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedSchedule;

impl GainSchedule for FixedSchedule {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn multiplier(&mut self, _e: f64, _prev_e: f64) -> f64 {
        1.0
    }

    fn reset(&mut self) {}
}

/// The Rao-style adjustable gain: `m* = 1 + α·sat((e + τ·ė)/E_ref)`
/// with `sat(x) = x/(1+|x|)`, slew-limited per step and clamped.
/// Positive drive (hot and/or heating) raises the loop gain; negative
/// drive (cool and cooling) lowers it below nominal for a gentler
/// response near the setpoint.
#[derive(Debug, Clone, Copy)]
pub struct RaoSchedule {
    alpha: f64,
    tau_s: f64,
    dt: f64,
    m: f64,
}

impl RaoSchedule {
    /// Builds the schedule for a loop with control period `dt`.
    pub fn new(alpha: f64, tau_s: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "control period must be positive");
        RaoSchedule {
            alpha,
            tau_s,
            dt,
            m: 1.0,
        }
    }
}

impl GainSchedule for RaoSchedule {
    fn name(&self) -> &'static str {
        "rao"
    }

    fn multiplier(&mut self, e: f64, prev_e: f64) -> f64 {
        let de = (e - prev_e) / self.dt;
        let drive = (e + self.tau_s * de) / RAO_E_REF;
        let target = 1.0 + self.alpha * (drive / (1.0 + drive.abs()));
        self.m = target
            .clamp(self.m - RAO_SLEW_PER_STEP, self.m + RAO_SLEW_PER_STEP)
            .clamp(MULT_MIN, MULT_MAX);
        self.m
    }

    fn reset(&mut self) {
        self.m = 1.0;
    }
}

/// The windowed self-tuner: accumulates the peak positive error and
/// mean absolute error over fixed windows of control steps; at each
/// window boundary, overshoot beyond [`SELFTUNE_OVERSHOOT_TOL`] raises
/// the multiplier by `1 + rate`, while a settled window (mean |e|
/// under [`SELFTUNE_SETTLE_TOL`]) relaxes it toward `1.0` by `rate`.
#[derive(Debug, Clone, Copy)]
pub struct SelfTuneSchedule {
    rate: f64,
    window: u64,
    left: u64,
    peak: f64,
    abs_sum: f64,
    m: f64,
}

impl SelfTuneSchedule {
    /// Builds the schedule for a loop with control period `dt`; the
    /// window is `window_s / dt` steps, floored at
    /// [`MIN_WINDOW_STEPS`].
    pub fn new(rate: f64, window_s: f64, dt: f64) -> Self {
        assert!(dt > 0.0, "control period must be positive");
        let window = ((window_s / dt).round() as u64).max(MIN_WINDOW_STEPS);
        SelfTuneSchedule {
            rate,
            window,
            left: window,
            peak: f64::NEG_INFINITY,
            abs_sum: 0.0,
            m: 1.0,
        }
    }

    /// The window length in control steps.
    pub fn window_steps(&self) -> u64 {
        self.window
    }
}

impl GainSchedule for SelfTuneSchedule {
    fn name(&self) -> &'static str {
        "selftune"
    }

    fn multiplier(&mut self, e: f64, _prev_e: f64) -> f64 {
        self.peak = self.peak.max(e);
        self.abs_sum += e.abs();
        self.left -= 1;
        if self.left == 0 {
            let mean_abs = self.abs_sum / self.window as f64;
            if self.peak > SELFTUNE_OVERSHOOT_TOL {
                self.m = (self.m * (1.0 + self.rate)).clamp(MULT_MIN, MULT_MAX);
            } else if mean_abs < SELFTUNE_SETTLE_TOL {
                self.m += self.rate * (1.0 - self.m);
            }
            self.left = self.window;
            self.peak = f64::NEG_INFINITY;
            self.abs_sum = 0.0;
        }
        self.m
    }

    fn reset(&mut self) {
        self.left = self.window;
        self.peak = f64::NEG_INFINITY;
        self.abs_sum = 0.0;
        self.m = 1.0;
    }
}

/// A clipped PI controller whose gains are rescaled online by a
/// [`GainSchedule`]. The difference equation and the clip-as-anti-
/// windup discipline are exactly [`ClippedPi`]'s; only the gains vary:
///
/// ```text
///   u[n] = clip( u[n−1] − m·Kp·e[n] + (m·Kp − m·Ki·T)·e[n−1] )
/// ```
pub struct AdaptivePi {
    base: PiGains,
    schedule: Box<dyn GainSchedule + Send>,
    min: f64,
    max: f64,
    prev_u: f64,
    prev_e: f64,
    steps: u64,
    m: f64,
    m_lo: f64,
    m_hi: f64,
    adaptations: u64,
}

impl std::fmt::Debug for AdaptivePi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptivePi")
            .field("base", &self.base)
            .field("schedule", &self.schedule.name())
            .field("m", &self.m)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl AdaptivePi {
    /// Creates an adaptive controller with output limits `[min, max]`,
    /// starting at full output and nominal gains (`m = 1`).
    ///
    /// # Panics
    ///
    /// Panics on an empty output range, non-finite gains, or invalid
    /// schedule parameters.
    pub fn new(base: PiGains, config: GainScheduleConfig, min: f64, max: f64) -> Self {
        assert!(min < max, "output range must be non-empty");
        assert!(
            base.kp.is_finite() && base.ki.is_finite() && base.dt.is_finite() && base.dt > 0.0,
            "gains must be finite and period positive"
        );
        config.validate();
        let schedule: Box<dyn GainSchedule + Send> = match config {
            GainScheduleConfig::Fixed => Box::new(FixedSchedule),
            GainScheduleConfig::Rao { alpha, tau_s } => {
                Box::new(RaoSchedule::new(alpha, tau_s, base.dt))
            }
            GainScheduleConfig::SelfTuning { rate, window_s } => {
                Box::new(SelfTuneSchedule::new(rate, window_s, base.dt))
            }
        };
        AdaptivePi {
            base,
            schedule,
            min,
            max,
            prev_u: max,
            prev_e: 0.0,
            steps: 0,
            m: 1.0,
            m_lo: 1.0,
            m_hi: 1.0,
            adaptations: 0,
        }
    }

    /// Advances one control period with error `e = measured − target`
    /// and returns the new clipped output.
    pub fn update(&mut self, e: f64) -> f64 {
        let m = self.schedule.multiplier(e, self.prev_e);
        if m != self.m {
            self.adaptations += 1;
        }
        self.m = m;
        self.m_lo = self.m_lo.min(m);
        self.m_hi = self.m_hi.max(m);
        let kp = self.base.kp * m;
        let ki = self.base.ki * m;
        let raw = self.prev_u - kp * e + (kp - ki * self.base.dt) * self.prev_e;
        let u = raw.clamp(self.min, self.max);
        self.prev_u = u;
        self.prev_e = e;
        self.steps += 1;
        u
    }

    /// Current (most recently returned) output.
    pub fn output(&self) -> f64 {
        self.prev_u
    }

    /// Number of updates performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The designed (nominal) gains.
    pub fn base_gains(&self) -> PiGains {
        self.base
    }

    /// The gains currently in effect (`base · m`).
    pub fn effective_gains(&self) -> PiGains {
        PiGains {
            kp: self.base.kp * self.m,
            ki: self.base.ki * self.m,
            dt: self.base.dt,
        }
    }

    /// The current gain multiplier.
    pub fn multiplier(&self) -> f64 {
        self.m
    }

    /// The (min, max) multiplier observed since construction/reset.
    pub fn multiplier_range(&self) -> (f64, f64) {
        (self.m_lo, self.m_hi)
    }

    /// Steps on which the multiplier changed.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// Resets to the initial full-output, nominal-gain state.
    pub fn reset(&mut self) {
        self.schedule.reset();
        self.prev_u = self.max;
        self.prev_e = 0.0;
        self.steps = 0;
        self.m = 1.0;
        self.m_lo = 1.0;
        self.m_hi = 1.0;
        self.adaptations = 0;
    }
}

/// The engine-facing DVFS controller: the fixed-gain paper controller
/// or its gain-scheduled extension, chosen by [`GainScheduleConfig`].
/// The `Fixed` arm *is* a [`ClippedPi`] — same type, same arithmetic —
/// so a default-schedule run cannot diverge from pre-adaptive builds.
#[derive(Debug)]
pub enum DvfsController {
    /// The paper's fixed-gain clipped PI controller.
    Fixed(ClippedPi),
    /// The gain-scheduled controller.
    Adaptive(AdaptivePi),
}

impl DvfsController {
    /// Builds the controller a configuration denotes.
    pub fn from_config(gains: PiGains, schedule: GainScheduleConfig, min: f64, max: f64) -> Self {
        match schedule {
            GainScheduleConfig::Fixed => DvfsController::Fixed(ClippedPi::new(gains, min, max)),
            _ => DvfsController::Adaptive(AdaptivePi::new(gains, schedule, min, max)),
        }
    }

    /// Advances one control period and returns the new clipped output.
    pub fn update(&mut self, e: f64) -> f64 {
        match self {
            DvfsController::Fixed(pi) => pi.update(e),
            DvfsController::Adaptive(pi) => pi.update(e),
        }
    }

    /// Current (most recently returned) output.
    pub fn output(&self) -> f64 {
        match self {
            DvfsController::Fixed(pi) => pi.output(),
            DvfsController::Adaptive(pi) => pi.output(),
        }
    }

    /// The adaptive state, when scheduled (`None` on the fixed path).
    pub fn adaptive(&self) -> Option<&AdaptivePi> {
        match self {
            DvfsController::Fixed(_) => None,
            DvfsController::Adaptive(pi) => Some(pi),
        }
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        match self {
            DvfsController::Fixed(pi) => pi.reset(),
            DvfsController::Adaptive(pi) => pi.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_adaptive(config: GainScheduleConfig) -> AdaptivePi {
        AdaptivePi::new(PiGains::paper_defaults(), config, 0.2, 1.0)
    }

    #[test]
    fn disabled_rao_is_bit_identical_to_fixed_pi() {
        let mut fixed = ClippedPi::paper_thermal_dvfs();
        let mut adaptive = paper_adaptive(GainScheduleConfig::Rao {
            alpha: 0.0,
            tau_s: 2e-3,
        });
        for i in 0..5000 {
            let e = ((i as f64) * 0.13).sin() * 8.0;
            let a = fixed.update(e);
            let b = adaptive.update(e);
            assert_eq!(a.to_bits(), b.to_bits(), "step {i}: {a} vs {b}");
        }
        assert_eq!(adaptive.multiplier_range(), (1.0, 1.0));
        assert_eq!(adaptive.adaptations(), 0);
    }

    #[test]
    fn disabled_selftune_is_bit_identical_to_fixed_pi() {
        let mut fixed = ClippedPi::paper_thermal_dvfs();
        let mut adaptive = paper_adaptive(GainScheduleConfig::SelfTuning {
            rate: 0.0,
            window_s: 1e-3,
        });
        for i in 0..5000 {
            let e = ((i as f64) * 0.31).cos() * 6.0 - 1.0;
            assert_eq!(fixed.update(e).to_bits(), adaptive.update(e).to_bits());
        }
        assert_eq!(adaptive.adaptations(), 0);
    }

    #[test]
    fn fixed_schedule_controller_matches_too() {
        let mut fixed = ClippedPi::paper_thermal_dvfs();
        let mut adaptive = paper_adaptive(GainScheduleConfig::Fixed);
        for i in 0..1000 {
            let e = (i % 17) as f64 - 8.0;
            assert_eq!(fixed.update(e).to_bits(), adaptive.update(e).to_bits());
        }
    }

    #[test]
    fn rao_raises_gain_when_hot_and_heating() {
        let mut pi = paper_adaptive(GainScheduleConfig::rao_default());
        for _ in 0..2000 {
            pi.update(4.0);
        }
        assert!(pi.multiplier() > 1.2, "m = {}", pi.multiplier());
        let (lo, hi) = pi.multiplier_range();
        assert!((MULT_MIN..=MULT_MAX).contains(&lo));
        assert!((MULT_MIN..=MULT_MAX).contains(&hi));
        assert!(pi.adaptations() > 0);
    }

    #[test]
    fn rao_lowers_gain_when_cool() {
        let mut pi = paper_adaptive(GainScheduleConfig::rao_default());
        for _ in 0..2000 {
            pi.update(-6.0);
        }
        assert!(pi.multiplier() < 1.0);
        assert!(pi.multiplier() >= MULT_MIN);
    }

    #[test]
    fn rao_multiplier_slew_is_limited() {
        let mut pi = paper_adaptive(GainScheduleConfig::rao_default());
        let mut prev = 1.0;
        for i in 0..500 {
            // Square-wave error: worst case for the slew limiter.
            let e = if (i / 25) % 2 == 0 { 6.0 } else { -6.0 };
            pi.update(e);
            let m = pi.multiplier();
            assert!(
                (m - prev).abs() <= RAO_SLEW_PER_STEP + 1e-15,
                "step {i}: slew {} exceeds limit",
                (m - prev).abs()
            );
            prev = m;
        }
    }

    #[test]
    fn selftune_raises_gain_on_overshoot_and_relaxes_when_settled() {
        let mut pi = paper_adaptive(GainScheduleConfig::SelfTuning {
            rate: 0.2,
            window_s: 1e-3,
        });
        // Sustained overshoot: multiplier ratchets up.
        for _ in 0..2000 {
            pi.update(1.5);
        }
        let raised = pi.multiplier();
        assert!(raised > 1.0, "m = {raised}");
        // Then a long settled stretch: multiplier relaxes toward 1.
        for _ in 0..20_000 {
            pi.update(0.0);
        }
        assert!(pi.multiplier() < raised);
        assert!((pi.multiplier() - 1.0).abs() < 0.05);
    }

    #[test]
    fn output_always_clipped_and_windup_free() {
        let mut pi = paper_adaptive(GainScheduleConfig::rao_default());
        for _ in 0..50_000 {
            let u = pi.update(12.0);
            assert!((0.2..=1.0).contains(&u));
        }
        assert_eq!(pi.output(), 0.2);
        // Error removed: recovery is immediate-ish — no hidden integral.
        let mut steps = 0;
        loop {
            if pi.update(-5.0) >= 1.0 || steps > 500 {
                break;
            }
            steps += 1;
        }
        assert!(steps < 100, "took {steps} steps to recover");
    }

    #[test]
    fn effective_gains_track_the_multiplier() {
        let mut pi = paper_adaptive(GainScheduleConfig::rao_default());
        for _ in 0..300 {
            pi.update(5.0);
        }
        let g = pi.effective_gains();
        let base = pi.base_gains();
        assert_eq!(g.kp.to_bits(), (base.kp * pi.multiplier()).to_bits());
        assert_eq!(g.ki.to_bits(), (base.ki * pi.multiplier()).to_bits());
    }

    #[test]
    fn reset_restores_nominal_state() {
        let mut pi = paper_adaptive(GainScheduleConfig::rao_default());
        for _ in 0..1000 {
            pi.update(5.0);
        }
        pi.reset();
        assert_eq!(pi.output(), 1.0);
        assert_eq!(pi.multiplier(), 1.0);
        assert_eq!(pi.multiplier_range(), (1.0, 1.0));
        assert_eq!(pi.adaptations(), 0);
        assert_eq!(pi.steps(), 0);
    }

    #[test]
    fn controller_enum_routes_fixed_through_clipped_pi() {
        let gains = PiGains::paper_defaults();
        let c = DvfsController::from_config(gains, GainScheduleConfig::Fixed, 0.2, 1.0);
        assert!(matches!(c, DvfsController::Fixed(_)));
        assert!(c.adaptive().is_none());
        let c = DvfsController::from_config(gains, GainScheduleConfig::rao_default(), 0.2, 1.0);
        assert!(c.adaptive().is_some());
    }

    #[test]
    fn selftune_window_floor_applies() {
        let s = SelfTuneSchedule::new(0.1, 1e-9, 1e-3);
        assert_eq!(s.window_steps(), MIN_WINDOW_STEPS);
    }

    #[test]
    fn config_wire_names_are_stable() {
        assert_eq!(GainScheduleConfig::Fixed.wire_name(), "fixed");
        assert_eq!(GainScheduleConfig::rao_default().wire_name(), "rao");
        assert_eq!(
            GainScheduleConfig::selftune_default().wire_name(),
            "selftune"
        );
        assert!(GainScheduleConfig::default().is_fixed());
    }

    #[test]
    #[should_panic(expected = "rao alpha")]
    fn invalid_alpha_rejected() {
        GainScheduleConfig::Rao {
            alpha: -1.0,
            tau_s: 1e-3,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "selftune rate")]
    fn invalid_rate_rejected() {
        GainScheduleConfig::SelfTuning {
            rate: 1.0,
            window_s: 1e-3,
        }
        .validate();
    }
}
