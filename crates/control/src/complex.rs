//! A small complex-number type for pole/zero analysis.
//!
//! Only the operations needed by the polynomial root finder and stability
//! checks are provided; this is not a general-purpose complex library.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + im·i`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The real number `re`.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Whether both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(-1.0, 2.0);
        assert_eq!(a + b, Complex::new(2.0, 6.0));
        assert_eq!(a - b, Complex::new(4.0, 2.0));
        assert_eq!(a * b, Complex::new(-11.0, 2.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
    }

    #[test]
    fn abs_of_3_4_is_5() {
        assert_eq!(Complex::new(3.0, 4.0).abs(), 5.0);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(2.0, -7.0);
        let n = z * z.conj();
        assert!((n.re - z.norm_sqr()).abs() < 1e-12);
        assert!(n.im.abs() < 1e-12);
    }

    #[test]
    fn division_by_self_is_one() {
        let z = Complex::new(0.3, -1.7);
        let one = z / z;
        assert!((one.re - 1.0).abs() < 1e-12);
        assert!(one.im.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-2.000000i");
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.000000+2.000000i");
    }
}
