//! The study's hardware-friendly clipped PI controller.
//!
//! The continuous design `G(s) = Kp + Ki/s` is discretized (forward
//! Euler, see [`crate::TransferFunction::c2d`]) into the difference
//! equation published in the paper:
//!
//! ```text
//!   u[n] = u[n−1] − Kp·e[n] + (Kp − Ki·T)·e[n−1]
//! ```
//!
//! with `e[n]` the sensor error (measured − target). The output is the
//! frequency scaling factor, clipped to `[min, max]`; clipping the
//! *stored* output doubles as anti-windup, exactly as argued in §4.2 of
//! the paper ("the simple discrete implementation … combined with
//! clipping prevents a hidden integral component from building up").

use serde::{Deserialize, Serialize};

/// Proportional–integral gains plus the control period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiGains {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Control period (s).
    pub dt: f64,
}

impl PiGains {
    /// The constants used in all of the paper's experiments:
    /// `Kp = 0.0107`, `Ki = 248.5`, `T = 100 000 cycles / 3.6 GHz`.
    pub fn paper_defaults() -> Self {
        PiGains {
            kp: 0.0107,
            ki: 248.5,
            dt: 1.0e5 / 3.6e9,
        }
    }

    /// The coefficient multiplying `e[n−1]` in the difference equation
    /// (`0.003796` for the paper's constants).
    pub fn trailing_coeff(&self) -> f64 {
        self.kp - self.ki * self.dt
    }
}

/// A clipped discrete PI controller driving a frequency-scaling actuator.
///
/// # Examples
///
/// ```
/// use dtm_control::{ClippedPi, PiGains};
///
/// let mut pi = ClippedPi::new(PiGains::paper_defaults(), 0.2, 1.0);
/// // Cool chip: error is negative, output saturates at full speed.
/// assert_eq!(pi.update(-20.0), 1.0);
/// // Suddenly 5 °C above target: controller backs off.
/// let u = pi.update(5.0);
/// assert!(u < 1.0 && u >= 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClippedPi {
    gains: PiGains,
    min: f64,
    max: f64,
    prev_u: f64,
    prev_e: f64,
    steps: u64,
}

impl ClippedPi {
    /// Creates a controller with output limits `[min, max]`, starting at
    /// full output (`max`, i.e. full clock speed on a cool chip).
    ///
    /// # Panics
    ///
    /// Panics if `min >= max` or the gains/period are non-finite.
    pub fn new(gains: PiGains, min: f64, max: f64) -> Self {
        assert!(min < max, "output range must be non-empty");
        assert!(
            gains.kp.is_finite() && gains.ki.is_finite() && gains.dt.is_finite() && gains.dt > 0.0,
            "gains must be finite and period positive"
        );
        ClippedPi {
            gains,
            min,
            max,
            prev_u: max,
            prev_e: 0.0,
            steps: 0,
        }
    }

    /// The paper's thermal-DVFS controller: paper gains, output clipped
    /// to the frequency-scale range `[0.2, 1.0]`.
    pub fn paper_thermal_dvfs() -> Self {
        ClippedPi::new(PiGains::paper_defaults(), 0.2, 1.0)
    }

    /// The configured gains.
    pub fn gains(&self) -> PiGains {
        self.gains
    }

    /// Current (most recently returned) output.
    pub fn output(&self) -> f64 {
        self.prev_u
    }

    /// Number of updates performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances one control period with error `e = measured − target` and
    /// returns the new clipped output.
    pub fn update(&mut self, e: f64) -> f64 {
        let raw = self.prev_u - self.gains.kp * e + self.gains.trailing_coeff() * self.prev_e;
        let u = raw.clamp(self.min, self.max);
        self.prev_u = u;
        self.prev_e = e;
        self.steps += 1;
        u
    }

    /// Resets to the initial full-output state.
    pub fn reset(&mut self) {
        self.prev_u = self.max;
        self.prev_e = 0.0;
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trailing_coefficient_value() {
        let g = PiGains::paper_defaults();
        // The paper prints 0.003796; the exact value for its stated
        // constants is 0.0107 − 248.5·(1e5/3.6e9) = 0.0037972…, so the
        // printed figure is rounded. Match to that printing precision.
        assert!((g.trailing_coeff() - 0.003796).abs() < 2e-6);
    }

    #[test]
    fn cool_chip_runs_at_full_speed() {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        for _ in 0..100 {
            assert_eq!(pi.update(-10.0), 1.0);
        }
    }

    #[test]
    fn sustained_overheat_drives_to_minimum() {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        let mut u = 1.0;
        for _ in 0..10_000 {
            u = pi.update(8.0);
        }
        assert_eq!(u, 0.2);
    }

    #[test]
    fn output_is_always_clipped() {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        for i in 0..1000 {
            let e = ((i as f64) * 0.37).sin() * 50.0;
            let u = pi.update(e);
            assert!((0.2..=1.0).contains(&u));
        }
    }

    #[test]
    fn no_integral_windup_after_saturation() {
        // Saturate low for a long time, then remove the error: the
        // controller must recover to full speed quickly (clipping stores
        // the clamped output, so there is no hidden integral to unwind).
        let mut pi = ClippedPi::paper_thermal_dvfs();
        for _ in 0..100_000 {
            pi.update(10.0);
        }
        assert_eq!(pi.output(), 0.2);
        let mut steps_to_recover = 0;
        for _ in 0..10_000 {
            let u = pi.update(-5.0);
            steps_to_recover += 1;
            if u >= 1.0 {
                break;
            }
        }
        // Recovery gain per step ≈ Kp·5 ≈ 0.0535 ⇒ ~15 steps; windup
        // would have taken tens of thousands.
        assert!(
            steps_to_recover < 100,
            "took {steps_to_recover} steps to recover"
        );
    }

    #[test]
    fn zero_error_holds_output() {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        pi.update(5.0);
        pi.update(0.0); // consumes prev_e
        let held = pi.update(0.0);
        assert_eq!(pi.update(0.0), held);
        assert_eq!(pi.update(0.0), held);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        pi.update(7.0);
        pi.update(7.0);
        pi.reset();
        assert_eq!(pi.output(), 1.0);
        assert_eq!(pi.steps(), 0);
    }

    #[test]
    fn controller_tracks_simple_thermal_plant() {
        // Discrete first-order plant: T' = T + dt/τ·(K·u·ΔT_max − (T−amb)),
        // controller holds T near the setpoint.
        let gains = PiGains::paper_defaults();
        let dt = gains.dt;
        let mut pi = ClippedPi::new(gains, 0.2, 1.0);
        let (amb, k_rise, tau) = (45.0, 55.0, 0.004);
        let setpoint = 81.8;
        let mut t = amb;
        let mut u = 1.0;
        let steps = (0.2 / dt) as usize; // 200 ms
        for _ in 0..steps {
            t += dt / tau * (amb + k_rise * u - t);
            u = pi.update(t - setpoint);
        }
        assert!(
            (t - setpoint).abs() < 0.5,
            "settled at {t} °C (target {setpoint})"
        );
        // And the equilibrium output is interior, not saturated.
        assert!(u > 0.2 && u < 1.0, "u = {u}");
    }

    #[test]
    fn proportional_step_has_expected_magnitude() {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        let u = pi.update(1.0); // 1 °C hot from full speed
        assert!((u - (1.0 - 0.0107)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_rejected() {
        ClippedPi::new(PiGains::paper_defaults(), 1.0, 0.2);
    }
}
