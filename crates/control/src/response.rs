//! Time-domain response metrics: settling time, overshoot, steady-state
//! error — the quantities the paper's MATLAB tests extracted before
//! freezing the controller constants.

/// A unit step of length `n`.
pub fn step_input(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Index (sample count) after which the response stays within
/// `tolerance × |target|` of `target`, or `None` if it never settles.
///
/// # Panics
///
/// Panics if `tolerance` is not positive.
pub fn settling_index(response: &[f64], target: f64, tolerance: f64) -> Option<usize> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let band = tolerance * target.abs().max(1e-12);
    let mut settled_at = None;
    for (i, &y) in response.iter().enumerate() {
        if (y - target).abs() <= band {
            settled_at.get_or_insert(i);
        } else {
            settled_at = None;
        }
    }
    settled_at
}

/// Peak overshoot as a fraction of the target (0 when the response never
/// exceeds it). Assumes a positive-going step toward `target > 0`.
pub fn overshoot(response: &[f64], target: f64) -> f64 {
    let peak = response.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    ((peak - target) / target.abs().max(1e-12)).max(0.0)
}

/// Mean of the final quarter of the response — a robust steady-state
/// estimate for settled signals.
///
/// # Panics
///
/// Panics if `response` is empty.
pub fn steady_state(response: &[f64]) -> f64 {
    assert!(!response.is_empty(), "response must be non-empty");
    let tail_len = (response.len() / 4).max(1);
    let tail = &response[response.len() - tail_len..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{C2dMethod, TransferFunction};

    #[test]
    fn settling_of_exact_signal_is_immediate() {
        let y = vec![1.0; 10];
        assert_eq!(settling_index(&y, 1.0, 0.02), Some(0));
    }

    #[test]
    fn settling_detects_late_convergence() {
        let mut y = vec![0.0, 0.5, 0.8, 0.95];
        y.extend(vec![1.0; 6]);
        assert_eq!(settling_index(&y, 1.0, 0.02), Some(4));
    }

    #[test]
    fn oscillating_signal_never_settles() {
        let y: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 2.0 })
            .collect();
        assert_eq!(settling_index(&y, 1.0, 0.1), None);
    }

    #[test]
    fn overshoot_measures_peak() {
        let y = vec![0.0, 0.9, 1.3, 1.05, 1.0];
        assert!((overshoot(&y, 1.0) - 0.3).abs() < 1e-12);
        let no = vec![0.0, 0.5, 0.9, 0.99];
        assert_eq!(overshoot(&no, 1.0), 0.0);
    }

    #[test]
    fn steady_state_uses_tail() {
        let mut y = vec![0.0; 30];
        y.extend(vec![2.0; 10]);
        assert!((steady_state(&y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_plant_step_settles_to_dc_gain() {
        let gain = 5.0;
        let tau = 0.01;
        let dt = 1e-4;
        let d = TransferFunction::first_order(gain, tau).c2d(dt, C2dMethod::BackwardEuler);
        let y = d.simulate(&step_input(2000));
        assert!((steady_state(&y) - gain).abs() < 0.01);
        // Settles (2 % band) in roughly 4 time constants = 400 samples.
        let idx = settling_index(&y, gain, 0.02).expect("must settle");
        assert!((300..500).contains(&idx), "settling index {idx}");
    }

    #[test]
    fn closed_loop_pi_plant_step_response_settles() {
        // The paper's design flow: PI + first-order thermal plant,
        // closed loop, discretized, step to the setpoint.
        let pi = TransferFunction::pi(0.0107, 248.5);
        let plant = TransferFunction::first_order(30.0, 0.01);
        let cl = pi.series(&plant).unity_feedback();
        let dt = 1.0e5 / 3.6e9;
        let d = cl.c2d(dt, C2dMethod::Tustin);
        assert!(d.is_stable());
        let n = (0.1 / dt) as usize; // 100 ms
        let y = d.simulate(&step_input(n));
        let ss = steady_state(&y);
        // Integral action ⇒ zero steady-state error (unity DC gain).
        assert!((ss - 1.0).abs() < 0.02, "steady state {ss}");
        assert!(settling_index(&y, 1.0, 0.05).is_some());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn settling_rejects_bad_tolerance() {
        settling_index(&[1.0], 1.0, 0.0);
    }
}
