//! Property-based tests for the gain-scheduled controller: for any
//! schedule parameters and any piecewise-constant error schedule, the
//! multiplier stays in its envelope, the output stays clipped, windup
//! never builds, and disabling adaptation collapses to the fixed PI.

use dtm_control::{
    AdaptivePi, ClippedPi, GainScheduleConfig, PiGains, MULT_MAX, MULT_MIN, RAO_SLEW_PER_STEP,
};
use proptest::prelude::*;

/// Expands `(level, hold)` pairs into a piecewise-constant error
/// sequence — the thermal shape adaptive schedules see in practice
/// (program phases hold power roughly constant for many control
/// periods).
fn piecewise(segments: &[(f64, usize)]) -> Vec<f64> {
    segments
        .iter()
        .flat_map(|&(level, hold)| std::iter::repeat_n(level, hold))
        .collect()
}

prop_compose! {
    /// An arbitrary adaptive schedule with in-range parameters.
    fn arb_schedule()(
        kind in 0u8..2,
        alpha in 0.0f64..4.0,
        rate in 0.0f64..0.99,
        window in 1e-4f64..0.02,
    ) -> GainScheduleConfig {
        if kind == 0 {
            GainScheduleConfig::Rao { alpha, tau_s: window }
        } else {
            GainScheduleConfig::SelfTuning { rate, window_s: window }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the schedule and error history, the effective gains
    /// never leave `base · [MULT_MIN, MULT_MAX]` and the output never
    /// leaves its clip range.
    #[test]
    fn gains_and_output_stay_in_their_envelopes(
        config in arb_schedule(),
        segments in proptest::collection::vec((-20.0f64..20.0, 1usize..400), 1..24),
    ) {
        let base = PiGains::paper_defaults();
        let mut pi = AdaptivePi::new(base, config, 0.2, 1.0);
        for e in piecewise(&segments) {
            let u = pi.update(e);
            prop_assert!((0.2..=1.0).contains(&u));
            let g = pi.effective_gains();
            prop_assert!(g.kp >= base.kp * MULT_MIN - 1e-15);
            prop_assert!(g.kp <= base.kp * MULT_MAX + 1e-15);
            prop_assert!(g.ki >= base.ki * MULT_MIN - 1e-12);
            prop_assert!(g.ki <= base.ki * MULT_MAX + 1e-12);
            prop_assert!((MULT_MIN..=MULT_MAX).contains(&pi.multiplier()));
        }
        let (lo, hi) = pi.multiplier_range();
        prop_assert!((MULT_MIN..=MULT_MAX).contains(&lo));
        prop_assert!((MULT_MIN..=MULT_MAX).contains(&hi));
    }

    /// Clip-as-anti-windup survives gain scheduling: after any history
    /// and a long saturating overload, recovery is still bounded by
    /// the proportional path — the stored output held no hidden
    /// integral, whatever the multiplier did meanwhile.
    #[test]
    fn adaptation_never_winds_past_the_clamp(
        config in arb_schedule(),
        segments in proptest::collection::vec((-20.0f64..20.0, 1usize..200), 1..12),
        overload in 2.0f64..25.0,
    ) {
        let mut pi = AdaptivePi::new(PiGains::paper_defaults(), config, 0.2, 1.0);
        for e in piecewise(&segments) {
            pi.update(e);
        }
        for _ in 0..50_000 {
            pi.update(overload);
        }
        prop_assert_eq!(pi.output(), 0.2);
        // Worst case the multiplier sits at MULT_MIN: recovery gain per
        // step is still ≥ MULT_MIN·Kp·5 ≈ 0.013 ⇒ well under 500 steps.
        let mut steps = 0;
        while pi.update(-5.0) < 1.0 {
            steps += 1;
            prop_assert!(steps < 500, "windup: {} recovery steps", steps);
        }
    }

    /// `alpha = 0` / `rate = 0` turn the scheduled controller into the
    /// fixed PI, bit for bit, on any error sequence.
    #[test]
    fn disabled_adaptation_collapses_to_the_fixed_pi(
        tau_s in 0.0f64..0.02,
        window_s in 1e-4f64..0.02,
        errors in proptest::collection::vec(-30.0f64..30.0, 1..500),
    ) {
        for config in [
            GainScheduleConfig::Rao { alpha: 0.0, tau_s },
            GainScheduleConfig::SelfTuning { rate: 0.0, window_s },
        ] {
            let mut fixed = ClippedPi::paper_thermal_dvfs();
            let mut adaptive = AdaptivePi::new(PiGains::paper_defaults(), config, 0.2, 1.0);
            for e in &errors {
                prop_assert_eq!(fixed.update(*e).to_bits(), adaptive.update(*e).to_bits());
            }
            prop_assert_eq!(adaptive.adaptations(), 0);
        }
    }

    /// The Rao multiplier moves at most `RAO_SLEW_PER_STEP` per update,
    /// whatever the error does.
    #[test]
    fn rao_slew_limit_holds_for_any_errors(
        alpha in 0.0f64..4.0,
        tau_s in 0.0f64..0.02,
        errors in proptest::collection::vec(-30.0f64..30.0, 1..500),
    ) {
        let mut pi = AdaptivePi::new(
            PiGains::paper_defaults(),
            GainScheduleConfig::Rao { alpha, tau_s },
            0.2,
            1.0,
        );
        let mut prev = 1.0;
        for e in errors {
            pi.update(e);
            let m = pi.multiplier();
            prop_assert!((m - prev).abs() <= RAO_SLEW_PER_STEP + 1e-15);
            prev = m;
        }
    }

    /// Two identically configured adaptive controllers track bit for
    /// bit — scheduling is a pure function of the error history.
    #[test]
    fn adaptive_step_response_is_deterministic(
        config in arb_schedule(),
        errors in proptest::collection::vec(-30.0f64..30.0, 1..500),
    ) {
        let gains = PiGains::paper_defaults();
        let mut a = AdaptivePi::new(gains, config, 0.2, 1.0);
        let mut b = AdaptivePi::new(gains, config, 0.2, 1.0);
        for e in &errors {
            prop_assert_eq!(a.update(*e).to_bits(), b.update(*e).to_bits());
        }
        prop_assert_eq!(a.multiplier().to_bits(), b.multiplier().to_bits());
        prop_assert_eq!(a.adaptations(), b.adaptations());
    }
}
