//! Diagnostic: prints the stop-go heat/cool cycle of one core and the
//! DVFS equilibrium scale, to guide thermal calibration.

use dtm_core::{DtmConfig, Experiment, PolicySpec, SimConfig};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let sim = SimConfig {
        duration: 0.3,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        sim,
        DtmConfig::default(),
    );
    let w = &standard_workloads()[1]; // crafty-eon-parser-perlbmk

    for policy in [
        PolicySpec::baseline(),
        PolicySpec::new(
            dtm_core::ThrottleKind::Dvfs,
            dtm_core::Scope::Distributed,
            dtm_core::MigrationKind::None,
        ),
    ] {
        let (r, tel) = exp.run_with_telemetry(w, policy, 18).unwrap();
        println!(
            "== {} duty {:.1}% bips {:.2}",
            policy.name(),
            r.duty_cycle * 100.0,
            r.bips()
        );
        // core 0 hot sensor trajectory: min/max, and scale stats
        let recs = tel.records();
        let hot: Vec<f64> = recs
            .iter()
            .map(|r| r.sensor_temps[0][0].max(r.sensor_temps[0][1]))
            .collect();
        let smin = hot.iter().cloned().fold(f64::INFINITY, f64::min);
        let smax = hot.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("   core0 hot sensor range {:.1}..{:.1}", smin, smax);
        let scale_avg: f64 = recs.iter().map(|r| r.scales[0]).sum::<f64>() / recs.len() as f64;
        println!("   core0 avg scale {:.2}", scale_avg);
        // print a 60 ms window of the trajectory every 1.5 ms
        for r in recs.iter().skip(60).take(40) {
            let h = r.sensor_temps[0][0].max(r.sensor_temps[0][1]);
            println!("   t={:.1}ms T={:.2} s={:.2}", r.time * 1e3, h, r.scales[0]);
        }
    }
}
