//! Extension experiment: robustness of the two-loop design to sensor
//! non-idealities. The paper assumes small sensor delay/error (§4.1);
//! here we sweep Gaussian noise and quantization on the thermal sensors
//! and check that the PI-DVFS policy stays effective and emergency-safe.

use dtm_bench::{mean_bips, mean_duty};
use dtm_core::{DtmConfig, PolicySpec, SimConfig};
use dtm_harness::{run_standard, ConfigVariant, SweepArgs, SweepSpec, Table};
use dtm_thermal::SensorSpec;

fn main() {
    let args = SweepArgs::from_env();
    let cases = [
        ("ideal", SensorSpec::ideal()),
        (
            "0.5C noise + 0.25C quant",
            SensorSpec {
                noise_std: 0.5,
                quantization: 0.25,
                offset: 0.0,
            },
        ),
        (
            "1C quantization (ACPI-like)",
            SensorSpec {
                noise_std: 0.0,
                quantization: 1.0,
                offset: 0.0,
            },
        ),
        (
            "2C noise",
            SensorSpec {
                noise_std: 2.0,
                quantization: 0.0,
                offset: 0.0,
            },
        ),
    ];

    // One configuration variant per sensor model, swept over the full
    // Table 4 workload set under the paper's best policy.
    let mut spec = SweepSpec::standard(args.duration).policies([PolicySpec::best()]);
    for (i, (name, sensor)) in cases.iter().enumerate() {
        let sim = SimConfig {
            duration: args.duration,
            sensor: *sensor,
            ..SimConfig::default()
        };
        let v = ConfigVariant::new(*name, sim, DtmConfig::default());
        spec = if i == 0 {
            spec.variant(v)
        } else {
            spec.add_variant(v)
        };
    }
    let results = run_standard(spec, &args).expect("sweep");

    let mut table = Table::new([
        "sensor model (dist. DVFS)",
        "BIPS",
        "duty",
        "max temp",
        "emerg. time",
    ])
    .with_title("§4.1 sensitivity: sensor noise and quantization");
    for (name, _) in cases {
        let runs = results.policy_runs_in(name, PolicySpec::best());
        let max_t = runs
            .iter()
            .map(|r| r.max_temp)
            .fold(f64::NEG_INFINITY, f64::max);
        let emer: f64 = runs.iter().map(|r| r.emergency_time).sum();
        table.row([
            name.to_string(),
            format!("{:.2}", mean_bips(&runs)),
            format!("{:.1}%", 100.0 * mean_duty(&runs)),
            format!("{max_t:.2} C"),
            format!("{:.2} ms", 1e3 * emer),
        ]);
    }
    table.print(args.json);

    if !args.json {
        println!("\n(noise costs a little throughput — the controller must leave margin —");
        println!(" but the closed loop stays stable and near the setpoint)");
        eprintln!("{}", results.summary());
    }
}
