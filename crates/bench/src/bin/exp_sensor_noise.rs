//! Extension experiment: robustness of the two-loop design to sensor
//! non-idealities. The paper assumes small sensor delay/error (§4.1);
//! here we sweep Gaussian noise and quantization on the thermal sensors
//! and check that the PI-DVFS policy stays effective and emergency-safe.

use dtm_bench::{duration_arg, mean_bips, mean_duty, run_all_workloads};
use dtm_core::{DtmConfig, Experiment, PolicySpec, SimConfig};
use dtm_thermal::SensorSpec;
use dtm_workloads::{TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let cases = [
        ("ideal", SensorSpec::ideal()),
        (
            "0.5C noise + 0.25C quant",
            SensorSpec {
                noise_std: 0.5,
                quantization: 0.25,
                offset: 0.0,
            },
        ),
        (
            "1C quantization (ACPI-like)",
            SensorSpec {
                noise_std: 0.0,
                quantization: 1.0,
                offset: 0.0,
            },
        ),
        (
            "2C noise",
            SensorSpec {
                noise_std: 2.0,
                quantization: 0.0,
                offset: 0.0,
            },
        ),
    ];

    println!(
        "{:<30} {:>7} {:>9} {:>11} {:>12}",
        "sensor model (dist. DVFS)", "BIPS", "duty", "max temp", "emerg. time"
    );
    for (name, spec) in cases {
        let exp = Experiment::new(
            TraceLibrary::new(TraceGenConfig::default()),
            SimConfig {
                duration,
                sensor: spec,
                ..SimConfig::default()
            },
            DtmConfig::default(),
        );
        let runs = run_all_workloads(&exp, PolicySpec::best()).expect("run");
        let max_t = runs
            .iter()
            .map(|r| r.max_temp)
            .fold(f64::NEG_INFINITY, f64::max);
        let emer: f64 = runs.iter().map(|r| r.emergency_time).sum();
        println!(
            "{:<30} {:>7.2} {:>8.1}% {:>9.2} C {:>10.2} ms",
            name,
            mean_bips(&runs),
            100.0 * mean_duty(&runs),
            max_t,
            1e3 * emer
        );
    }
    println!("\n(noise costs a little throughput — the controller must leave margin —");
    println!(" but the closed loop stays stable and near the setpoint)");
}
