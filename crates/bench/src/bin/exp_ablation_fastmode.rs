//! Ablation: the sub-block fast thermal mode.
//!
//! The block-level RC model carries a first-order "local constriction"
//! mode approximating the within-block gradient a grid model resolves
//! (see `exp_grid_validation`). This ablation removes it
//! (`local_constriction = 0`) and shows its effect on the policy
//! tradeoffs: without sub-block dynamics, stop-go looks artificially
//! good because the sensed hotspot loses its fast power-following
//! component and trips later.

use dtm_bench::{duration_arg, mean_bips, mean_duty, run_all_workloads};
use dtm_core::{DtmConfig, Experiment, MigrationKind, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_thermal::PackageConfig;
use dtm_workloads::{TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let policies = [
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    ];

    for (label, constriction) in [
        (
            "with sub-block fast mode (default)",
            PackageConfig::default().local_constriction,
        ),
        ("ablated (local_constriction = 0)", 0.0),
    ] {
        let package = PackageConfig {
            local_constriction: constriction,
            ..PackageConfig::default()
        };
        let exp = Experiment::new(
            TraceLibrary::new(TraceGenConfig::default()),
            SimConfig {
                duration,
                package,
                ..SimConfig::default()
            },
            DtmConfig::default(),
        );
        println!("== {label} ==");
        let mut bips = Vec::new();
        for p in policies {
            let runs = run_all_workloads(&exp, p).expect("run");
            bips.push(mean_bips(&runs));
            println!(
                "  {:<16} {:>6.2} BIPS  duty {:>5.1}%",
                p.name(),
                mean_bips(&runs),
                100.0 * mean_duty(&runs)
            );
        }
        println!("  DVFS/stop-go ratio: {:.2}x\n", bips[1] / bips[0]);
    }
    println!("(the fast mode is load-bearing for the stop-go duty calibration: it");
    println!(" restores the prompt post-resume reheat that a lumped block smooths away)");
}
