//! Migration decision diagnostics on workload7 (gzip-twolf-ammp-lucas).
use dtm_core::*;
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let sim = SimConfig {
        duration: 0.2,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        sim,
        DtmConfig::default(),
    );
    let w = &standard_workloads()[6];
    for mig in [MigrationKind::None, MigrationKind::CounterBased] {
        let policy = PolicySpec::new(ThrottleKind::StopGo, Scope::Distributed, mig);
        let (r, tel) = exp.run_with_telemetry(w, policy, 36).unwrap();
        println!(
            "== {} BIPS {:.2} duty {:.1}% migrations {} stalls {}",
            policy.name(),
            r.bips(),
            100.0 * r.duty_cycle,
            r.migrations,
            r.stalls
        );
        for (i, t) in r.threads.iter().enumerate() {
            println!(
                "   thread {} ({}): work {:.3}s migs {}",
                i, w.benchmarks[i], t.scaled_work, t.migrations
            );
        }
        // Assignment timeline + temps every 10ms
        let recs = tel.records();
        for rec in recs.iter().step_by(10).take(15) {
            let temps: Vec<String> = rec
                .sensor_temps
                .iter()
                .map(|t| format!("{:.0}/{:.0}", t[0], t[1]))
                .collect();
            println!(
                "   t={:5.1}ms asg={:?} s={:?} T(int/fp)={}",
                rec.time * 1e3,
                rec.assignment,
                rec.scales
                    .iter()
                    .map(|s| (s * 100.0) as i32)
                    .collect::<Vec<_>>(),
                temps.join(" ")
            );
        }
    }
}
