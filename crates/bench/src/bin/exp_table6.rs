//! Table 6: counter-based migration layered on the four throttle
//! policies — average BIPS, duty cycle, throughput relative to the
//! distributed stop-go baseline, and speedup over the same policy
//! without migration.

use dtm_bench::{duration_arg, experiment_with_duration, mean_bips, mean_duty, run_all_workloads};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let combos = [
        (ThrottleKind::StopGo, Scope::Global),
        (ThrottleKind::StopGo, Scope::Distributed),
        (ThrottleKind::Dvfs, Scope::Global),
        (ThrottleKind::Dvfs, Scope::Distributed),
    ];

    let baseline = run_all_workloads(&exp, PolicySpec::baseline()).expect("baseline");
    let base_bips = mean_bips(&baseline);

    println!(
        "{:<46} {:>7} {:>10} {:>9} {:>14}",
        "policy", "BIPS", "duty", "relative", "vs non-migr."
    );
    for (throttle, scope) in combos {
        let plain = run_all_workloads(&exp, PolicySpec::new(throttle, scope, MigrationKind::None))
            .expect("plain");
        let policy = PolicySpec::new(throttle, scope, MigrationKind::CounterBased);
        let runs = run_all_workloads(&exp, policy).expect("migrated");
        println!(
            "{:<46} {:>7.2} {:>9.2}% {:>8.2}x {:>13.2}x",
            policy.name(),
            mean_bips(&runs),
            100.0 * mean_duty(&runs),
            mean_bips(&runs) / base_bips,
            mean_bips(&runs) / mean_bips(&plain),
        );
    }
    println!("\npaper reference (BIPS, duty, rel, speedup):");
    println!("  Stop-go + counter       5.34 37.93% 1.18x 1.91x");
    println!("  Dist. stop-go + counter 9.15 65.12% 2.02x 2.02x");
    println!("  Global DVFS + counter   9.88 70.05% 2.18x 1.06x");
    println!("  Dist. DVFS + counter   11.62 82.42% 2.57x 1.02x");
}
