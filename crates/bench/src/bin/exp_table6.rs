//! Table 6: counter-based migration layered on the four throttle
//! policies — average BIPS, duty cycle, throughput relative to the
//! distributed stop-go baseline, and speedup over the same policy
//! without migration.

use dtm_bench::{mean_bips, mean_duty};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_harness::{report, run_standard, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let combos = [
        (ThrottleKind::StopGo, Scope::Global),
        (ThrottleKind::StopGo, Scope::Distributed),
        (ThrottleKind::Dvfs, Scope::Global),
        (ThrottleKind::Dvfs, Scope::Distributed),
    ];
    let spec = SweepSpec::standard(args.duration).policies(combos.iter().flat_map(|&(t, s)| {
        [
            PolicySpec::new(t, s, MigrationKind::None),
            PolicySpec::new(t, s, MigrationKind::CounterBased),
        ]
    }));
    let results = run_standard(spec, &args).expect("sweep");
    let base_bips = mean_bips(&results.policy_runs(PolicySpec::baseline()));

    let mut table = Table::new(["policy", "BIPS", "duty", "relative", "vs non-migr."])
        .with_title("Table 6: counter-based migration");
    for (throttle, scope) in combos {
        let plain = results.policy_runs(PolicySpec::new(throttle, scope, MigrationKind::None));
        let policy = PolicySpec::new(throttle, scope, MigrationKind::CounterBased);
        let runs = results.policy_runs(policy);
        table.row([
            policy.name(),
            report::num2(mean_bips(&runs)),
            report::pct(mean_duty(&runs)),
            report::times(mean_bips(&runs) / base_bips),
            report::times(mean_bips(&runs) / mean_bips(&plain)),
        ]);
    }
    table.print(args.json);

    if !args.json {
        println!("\npaper reference (BIPS, duty, rel, speedup):");
        println!("  Stop-go + counter       5.34 37.93% 1.18x 1.91x");
        println!("  Dist. stop-go + counter 9.15 65.12% 2.02x 2.02x");
        println!("  Global DVFS + counter   9.88 70.05% 2.18x 1.06x");
        println!("  Dist. DVFS + counter   11.62 82.42% 2.57x 1.02x");
        eprintln!("{}", results.summary());
    }
}
