//! Exploration experiment: does the paper's policy ranking survive
//! retuning? The paper compares its twelve DTM policies at one fixed
//! operating point (the Table 3 control parameters). `exp_explore`
//! searches the joint policy × knob space — PI gains, DVFS setpoint
//! margin, stop-go trip margin and gate duration, migration interval,
//! control period — with deterministic seeded strategies, and reports
//! the Pareto front over (throughput, thermal violation, energy,
//! robustness penalty) next to the fixed-knob anchors.
//!
//! ```text
//! exp_explore [DURATION] [--seed N] [--budget N] [--workers N]
//!             [--json] [--no-cache] [--smoke] [--adaptive]
//!             [--dist host:port,...]
//! ```
//!
//! `--adaptive` widens the space with the gain-schedule arms (Rao
//! adjustable-gain and windowed self-tuning controllers) plus their
//! adaptation knobs, journaling to `results/explore_adaptive.jsonl` so
//! the fixed-gain search history stays untouched.
//!
//! Everything is resumable: fresh evaluations append to
//! `results/explore.jsonl`, and a re-run (same seed and budget) replays
//! the journal without re-simulating a single cell, emitting a
//! byte-identical `results/EXPLORE_pareto.json`.
//!
//! `--smoke` runs a tiny fixed-seed search (2 workloads × 3 policies,
//! test-length traces) for CI and self-checks the determinism and
//! resume contracts.

use std::sync::Arc;

use dtm_core::{ObsHandle, PolicySpec, SimConfig};
use dtm_dist::{DistConfig, RemoteBackend};
use dtm_explore::{standard_roster, ExploreReport, Explorer, SearchSpace};
use dtm_harness::{Ledger, ResultCache, SweepArgs, SweepRunner, Table};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary, Workload};

const JOURNAL_PATH: &str = "results/explore.jsonl";
const REPORT_PATH: &str = "results/EXPLORE_pareto.json";
// The journal memoizes by (policy, knob values, fidelity) — it is
// scoped to one (sim config, workload set). The smoke search runs
// test-length traces, so it keeps its own files.
const SMOKE_JOURNAL_PATH: &str = "results/explore_smoke.jsonl";
const SMOKE_REPORT_PATH: &str = "results/EXPLORE_pareto_smoke.json";
// The adaptive-controller search widens the space (gain-schedule arms
// + adaptation knobs), so its memo keys form a superset: it gets its
// own journal/report rather than mixing trajectories with the
// fixed-gain search.
const ADAPTIVE_JOURNAL_PATH: &str = "results/explore_adaptive.jsonl";
const ADAPTIVE_REPORT_PATH: &str = "results/EXPLORE_pareto_adaptive.json";

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let adaptive = argv.iter().any(|a| a == "--adaptive");
    argv.retain(|a| a != "--adaptive");
    let seed = take_u64(&mut argv, "--seed").unwrap_or(42);
    let budget = take_u64(&mut argv, "--budget").map(|b| b as usize);
    let args = SweepArgs::parse(argv);

    if smoke {
        run_smoke(&args, seed, budget.unwrap_or(96));
    } else {
        run_full(&args, seed, budget.unwrap_or(400), adaptive);
    }
}

/// Pulls `flag N` out of the argument list before [`SweepArgs`] sees
/// it; exits with a message on a malformed value.
fn take_u64(argv: &mut Vec<String>, flag: &str) -> Option<u64> {
    let i = argv.iter().position(|a| a == flag)?;
    if i + 1 >= argv.len() {
        eprintln!("{flag} requires a non-negative integer");
        std::process::exit(2);
    }
    let v = argv.remove(i + 1);
    argv.remove(i);
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("{flag} requires a non-negative integer, got `{v}`");
            std::process::exit(2);
        }
    }
}

fn run_full(args: &SweepArgs, seed: u64, budget: usize, adaptive: bool) {
    let sim = SimConfig {
        duration: args.duration,
        ..SimConfig::default()
    };
    // Four representative Table 4 mixes (same subset exp_faults uses)
    // keep each full-fidelity evaluation at 4 cells.
    let workloads: Vec<Workload> = standard_workloads()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| [0, 4, 6, 11].contains(i))
        .map(|(_, w)| w)
        .collect();
    let space = if adaptive {
        SearchSpace::paper_adaptive(sim, PolicySpec::all())
    } else {
        SearchSpace::paper(sim, PolicySpec::all())
    };
    let (journal_path, report_path) = if adaptive {
        (ADAPTIVE_JOURNAL_PATH, ADAPTIVE_REPORT_PATH)
    } else {
        (JOURNAL_PATH, REPORT_PATH)
    };

    let mut runner = SweepRunner::paper_defaults()
        .with_cache(if args.no_cache {
            None
        } else {
            Some(ResultCache::default_location())
        })
        .with_ledger(Some(Ledger::default_location()));
    if let Some(n) = args.workers {
        runner = runner.with_workers(n);
    }
    if !args.dist_workers.is_empty() {
        let cfg = DistConfig::from_args(args, SimConfig::default());
        runner = runner.with_backend(Arc::new(RemoteBackend::new(cfg)) as Arc<_>);
    }

    let report = explore(
        &runner,
        space,
        workloads,
        seed,
        budget,
        args.json,
        journal_path,
        report_path,
    );
    if !args.json {
        println!(
            "\n(front and anchors are written to {report_path}; fresh evaluations append to {journal_path} — re-running with the same seed and budget resumes for free)"
        );
    }
    std::process::exit(i32::from(report.front.is_empty()));
}

/// Drives one deterministic search and writes the artifact.
#[allow(clippy::too_many_arguments)]
fn explore(
    runner: &SweepRunner,
    space: SearchSpace,
    workloads: Vec<Workload>,
    seed: u64,
    budget: usize,
    json: bool,
    journal_path: &str,
    report_path: &str,
) -> ExploreReport {
    let n0 = (budget / 4).clamp(8, 64);
    let gens = 4;
    let obs = ObsHandle::disabled();
    let mut strategies = standard_roster(seed, &space, n0, gens);
    let mut explorer =
        Explorer::new(runner, space, workloads, journal_path, seed, &obs).expect("journal");
    explorer.evaluate_anchors().expect("anchor sweep");
    explorer.run(&mut strategies, budget).expect("exploration");

    let report = explorer.report();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(report_path, report.to_json().emit() + "\n").expect("write report");

    if !json {
        let mut gens_table = Table::new([
            "gen",
            "strategy",
            "asks",
            "fresh",
            "memo",
            "front",
            "best scalar",
        ])
        .with_title("exploration generations");
        for g in explorer.summaries() {
            gens_table.row([
                g.gen.to_string(),
                g.strategy.to_string(),
                g.asks.to_string(),
                g.fresh.to_string(),
                g.memo_hits.to_string(),
                g.front_len.to_string(),
                format!("{:.3}", g.best_scalar),
            ]);
        }
        gens_table.print(false);
    }
    report.table().print(json);
    if !json {
        println!(
            "evaluations: {} total ({} fresh, {} memo-served); baseline dominated: {}",
            explorer.evaluations(),
            explorer.fresh(),
            explorer.memo_hits(),
            report.baseline_dominated,
        );
    }
    report
}

/// The CI smoke search: fixed seed, test-length traces, 2 workloads ×
/// 3 policies, and hard self-checks of the determinism contract.
fn run_smoke(args: &SweepArgs, seed: u64, budget: usize) {
    let sim = SimConfig::fast_test();
    let workloads: Vec<Workload> = standard_workloads().into_iter().take(2).collect();
    let policies = vec![
        PolicySpec::baseline(),
        PolicySpec::new(
            dtm_core::ThrottleKind::Dvfs,
            dtm_core::Scope::Global,
            dtm_core::MigrationKind::None,
        ),
        PolicySpec::best(),
    ];
    let space = SearchSpace::paper(sim, policies);

    let mut runner = SweepRunner::bare(TraceLibrary::new(TraceGenConfig::fast_test()))
        .with_cache(if args.no_cache {
            None
        } else {
            Some(ResultCache::default_location())
        })
        .with_ledger(Some(Ledger::default_location()));
    if let Some(n) = args.workers {
        runner = runner.with_workers(n);
    }

    let report = explore(
        &runner,
        space,
        workloads,
        seed,
        budget,
        args.json,
        SMOKE_JOURNAL_PATH,
        SMOKE_REPORT_PATH,
    );

    // Self-checks: the front exists, and the journal holds exactly one
    // row per distinct evaluation (the resume invariant).
    assert!(!report.front.is_empty(), "smoke produced an empty front");
    let rows = std::fs::read_to_string(SMOKE_JOURNAL_PATH)
        .expect("journal exists")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count();
    assert_eq!(
        rows, report.evaluations,
        "journal rows must equal distinct evaluations"
    );
    // At the default seed and budget the search beats the fixed grid:
    // some front point strictly dominates the scalar-best anchor on
    // the (throughput, violation) headline plane.
    assert!(
        report.baseline_dominated,
        "front no longer dominates the fixed-knob incumbent"
    );
    println!(
        "smoke: front={} evaluations={} journal-rows={rows} baseline-dominated={}",
        report.front.len(),
        report.evaluations,
        report.baseline_dominated
    );
}
