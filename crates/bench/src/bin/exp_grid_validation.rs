//! Substrate validation: the block thermal model (used by the DTM
//! simulations, with its fast sub-block constriction mode) against the
//! finer grid model, on the study's 4-core floorplan under a hot
//! integer-workload power pattern.

use dtm_floorplan::{Floorplan, UnitKind};
use dtm_thermal::{GridConfig, GridThermalModel, PackageConfig, ThermalModel};

fn main() {
    let fp = Floorplan::ppc_cmp(4);
    let pkg = PackageConfig::default();
    let block = ThermalModel::new(&fp, &pkg).expect("block model");
    let grid =
        GridThermalModel::new(&fp, &pkg, GridConfig { cols: 24, rows: 36 }).expect("grid model");

    // Hot-integer per-core power pattern (gzip-like).
    let mut power = vec![0.0; fp.len()];
    for core in 0..fp.cores() {
        for (kind, watts) in [
            (UnitKind::IntRegFile, 3.2),
            (UnitKind::FpRegFile, 0.3),
            (UnitKind::Fxu, 1.0),
            (UnitKind::Fpu, 0.3),
            (UnitKind::Lsu, 0.8),
            (UnitKind::Dcache, 0.9),
            (UnitKind::Icache, 0.8),
            (UnitKind::IssueInt, 0.6),
            (UnitKind::IssueFp, 0.2),
            (UnitKind::Rename, 0.5),
            (UnitKind::Fetch, 0.4),
            (UnitKind::BranchPred, 0.5),
            (UnitKind::Bxu, 0.2),
        ] {
            power[fp.block_of(core, kind).expect("unit")] += watts;
        }
    }
    let l2 = fp.blocks_of_kind(UnitKind::L2)[0];
    power[l2] = 2.0;

    let bt = block.steady_state(&power).expect("block solve");
    let fast = block.fast_excess_steady(&power).expect("fast excess");
    let gt = grid.steady_state(&power).expect("grid solve");

    println!(
        "{:<16} {:>10} {:>11} {:>10} {:>10} {:>11}",
        "block", "block T", "blk+fast", "grid mean", "grid max", "grid excess"
    );
    let mut worst_mean = 0.0f64;
    for core in [0usize] {
        for kind in UnitKind::per_core() {
            let b = fp.block_of(core, *kind).expect("unit");
            let diff: f64 = gt.block_mean(b) - bt[b];
            worst_mean = worst_mean.max(diff.abs());
            println!(
                "{:<16} {:>9.2}C {:>10.2}C {:>9.2}C {:>9.2}C {:>10.2}C",
                fp.blocks()[b].name(),
                bt[b],
                bt[b] + fast[b],
                gt.block_mean(b),
                gt.block_max(b),
                gt.block_excess(b)
            );
        }
    }
    println!("\nlargest |grid mean − block| on core 0: {worst_mean:.2} C");
    let rf = fp.block_of(0, UnitKind::IntRegFile).expect("rf");
    println!(
        "int RF: fast-mode excess {:.2} C vs grid within-block excess {:.2} C",
        fast[rf],
        gt.block_excess(rf)
    );
    println!("(the fast mode is a lumped stand-in for the grid's sub-block gradient;");
    println!(" both identify the same hotspot with comparable peak elevation)");
}
