//! §5.3 duty-cycle metric validation: "We ran simulations with
//! unrestricted maximum temperatures, and found that the proportion of
//! the achieved BIPS relative to the non-controlled case was accurately
//! predicted by the measured duty cycle."

use dtm_bench::{duration_arg, figure_label};
use dtm_core::{DtmConfig, Experiment, PolicySpec, SimConfig};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let lib = || TraceLibrary::new(TraceGenConfig::default());
    let sim = SimConfig {
        duration,
        ..SimConfig::default()
    };
    let constrained = Experiment::new(lib(), sim.clone(), DtmConfig::default());
    let unconstrained = Experiment::new(lib(), sim, DtmConfig::unconstrained());

    println!(
        "{:<44} {:>8} {:>9} {:>11} {:>9}",
        "workload (dist. DVFS)", "duty", "BIPS", "BIPS/uncon", "error"
    );
    let mut errors = Vec::new();
    for w in standard_workloads() {
        let policy = PolicySpec::new(
            dtm_core::ThrottleKind::Dvfs,
            dtm_core::Scope::Distributed,
            dtm_core::MigrationKind::None,
        );
        let r = constrained.run(&w, policy).expect("constrained");
        let free = unconstrained.run(&w, policy).expect("unconstrained");
        let ratio = r.bips() / free.bips();
        let err = ratio - r.duty_cycle;
        errors.push(err.abs());
        println!(
            "{:<44} {:>7.1}% {:>9.2} {:>10.1}% {:>+8.1}pp",
            figure_label(&w),
            100.0 * r.duty_cycle,
            r.bips(),
            100.0 * ratio,
            100.0 * err
        );
    }
    println!(
        "\nmean |error| between duty cycle and throughput ratio: {:.1} pp",
        100.0 * dtm_core::mean(&errors)
    );
    println!("(small errors validate the adjusted duty cycle as a work-done metric)");
}
