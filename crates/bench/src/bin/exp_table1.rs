//! Table 1 reproduction: per-benchmark steady-state temperatures (or
//! oscillation ranges) on an unconstrained single core.
//!
//! The paper measured a Pentium M notebook via ACPI; we run each
//! benchmark alone on one core of the simulated chip with no thermal
//! limit and report the hottest sensor over the second half of a run.
//! Absolute values differ from the paper's notebook (different chip,
//! package, and ambient); the *ordering* and the steady-vs-oscillating
//! classification are the reproduction targets.
//!
//! The 22 single-benchmark runs go through the shared sweep harness as
//! a 22-workload × 1-policy grid, so they are cached, ledgered, and
//! parallelized like every other table.

use dtm_core::{unconstrained_single_core, PolicySpec};
use dtm_harness::{run_standard, ConfigVariant, SweepArgs, SweepSpec, Table};
use dtm_workloads::{all_benchmarks, Workload};

/// Whether `argv` already carries a positional duration (anything that
/// parses as a float and is not a `--workers`/`-j` value).
fn has_positional_duration(argv: &[String]) -> bool {
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" | "-j" => {
                it.next();
            }
            s => {
                if s.parse::<f64>().is_ok() {
                    return true;
                }
            }
        }
    }
    false
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // This table's historical default is a 0.3 s run — long enough for
    // one unconstrained core to reach steady state — not the sweep
    // default of 0.5 s.
    if !has_positional_duration(&argv) {
        argv.push("0.3".to_string());
    }
    let args = SweepArgs::parse(argv);

    let (sim, dtm) = unconstrained_single_core(args.duration);
    let workloads: Vec<Workload> = all_benchmarks()
        .iter()
        .map(|b| Workload::solo(&b.name))
        .collect();
    let spec = SweepSpec::new(workloads)
        .policies([PolicySpec::baseline()])
        .variant(ConfigVariant::new("unconstrained-1core", sim, dtm));
    let results = run_standard(spec, &args).expect("sweep");

    let mut rows = Vec::new();
    for (wi, b) in all_benchmarks().into_iter().enumerate() {
        let r = results.get_in("unconstrained-1core", PolicySpec::baseline(), wi);
        let s = r
            .steady
            .expect("a positive-duration run yields steady samples");
        rows.push((b, s));
    }
    rows.sort_by(|a, b| b.1.mean.total_cmp(&a.1.mean));

    let mut table = Table::new(["benchmark", "suite", "temp (°C)", "class"]);
    for (b, s) in &rows {
        let class = if s.is_steady(1.5) {
            "steady"
        } else {
            "oscillating"
        };
        let temp = if s.is_steady(1.5) {
            format!("{:.0}", s.mean)
        } else {
            format!("{:.0}-{:.0}", s.min, s.max)
        };
        table.row([
            b.name.to_string(),
            format!("{:?}", b.suite),
            temp,
            class.to_string(),
        ]);
    }
    table.print(args.json);
    if !args.json {
        eprintln!("{}", results.summary());
    }
}
