//! Table 1 reproduction: per-benchmark steady-state temperatures (or
//! oscillation ranges) on an unconstrained single core.
//!
//! The paper measured a Pentium M notebook via ACPI; we run each
//! benchmark alone on one core of the simulated chip with no thermal
//! limit and report the hottest sensor over the second half of a run.
//! Absolute values differ from the paper's notebook (different chip,
//! package, and ambient); the *ordering* and the steady-vs-oscillating
//! classification are the reproduction targets.

use dtm_core::unconstrained_steady_temp;
use dtm_workloads::{all_benchmarks, TraceGenConfig, TraceLibrary};

fn main() {
    let duration: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let lib = TraceLibrary::new(TraceGenConfig::default());
    println!(
        "{:<10} {:>6} {:>14} {:>8}",
        "benchmark", "suite", "temp (°C)", "class"
    );
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let s = unconstrained_steady_temp(&b, &lib, duration).expect("run");
        rows.push((b, s));
    }
    rows.sort_by(|a, b| b.1.mean.total_cmp(&a.1.mean));
    for (b, s) in &rows {
        let class = if s.is_steady(1.5) {
            "steady"
        } else {
            "oscillating"
        };
        let temp = if s.is_steady(1.5) {
            format!("{:.0}", s.mean)
        } else {
            format!("{:.0}-{:.0}", s.min, s.max)
        };
        println!(
            "{:<10} {:>6} {:>14} {:>8}",
            b.name,
            format!("{:?}", b.suite),
            temp,
            class
        );
    }
}
