//! Extension experiment (§9's named future axis): asymmetric cores.
//!
//! An asymmetric CMP pairs full-speed cores with frequency-capped
//! "efficiency" cores. Under thermal duress the capped cores run cooler,
//! effectively donating thermal headroom through the shared package;
//! migration can then steer hot threads toward whichever core currently
//! has headroom. This experiment compares a homogeneous 4×1.0 chip with
//! an asymmetric 2×1.0 + 2×0.7 chip under the two-loop policy.

use dtm_bench::duration_arg;
use dtm_core::{DtmConfig, PolicySpec, SimConfig, ThermalTimingSim};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let lib = TraceLibrary::new(TraceGenConfig::default()).with_disk_cache("target/trace-cache");

    println!(
        "{:<14} {:<26} {:>7} {:>9} {:>9} {:>11}",
        "workload", "chip", "BIPS", "duty", "max temp", "migrations"
    );
    for w in standard_workloads().iter().take(6) {
        let traces: Vec<_> = w.resolve().iter().map(|b| lib.trace(b)).collect();
        for (label, ceilings) in [
            ("homogeneous 4x1.0", vec![]),
            ("asymmetric 2x1.0+2x0.7", vec![1.0, 1.0, 0.7, 0.7]),
        ] {
            let cfg = SimConfig {
                duration,
                core_max_scale: ceilings,
                ..SimConfig::default()
            };
            let mut sim = ThermalTimingSim::new(
                cfg,
                DtmConfig::default(),
                PolicySpec::best(),
                traces.clone(),
            )
            .expect("construct");
            let r = sim.run().expect("run");
            println!(
                "{:<14} {:<26} {:>7.2} {:>8.1}% {:>8.1}C {:>11}",
                w.id,
                label,
                r.bips(),
                100.0 * r.duty_cycle,
                r.max_temp,
                r.migrations
            );
        }
    }
    println!("\n(the asymmetric chip trades peak throughput for thermal headroom;");
    println!(" under duress the gap narrows as the hot cores were throttled anyway)");
}
