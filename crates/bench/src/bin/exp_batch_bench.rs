//! Batched-lockstep benchmark: multi-lane SoA thermal stepping vs the
//! scalar per-run path.
//!
//! Three measurements:
//!
//! 1. **Thermal-phase throughput** — 8 solvers sharing one propagator,
//!    stepped scalar (8 `step` calls) vs batched (one
//!    `step_lumped_batch`/`step_grid_batch` call), on the study's
//!    lumped 4-core floorplan and on the grid model. Asserts the
//!    batched kernel's speedup on the grid model (≥ 2× full, ≥ 1.5×
//!    smoke).
//! 2. **Whole-sweep wall clock** — the Table 8 grid run cold through
//!    one worker at `--lanes 1` vs `--lanes 8`, traces prewarmed
//!    outside the timed region.
//! 3. **Cache byte-identity** — the same small sweep executed at both
//!    lane widths into two fresh cache directories must produce
//!    byte-identical files (batching is an execution strategy, not a
//!    result change). Asserted in both modes.
//!
//! Writes `results/BENCH_batch.json` so CI can archive the numbers.
//!
//! Usage: `exp_batch_bench [--smoke]` — `--smoke` shrinks rep counts
//! and the sweep grid for CI.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use dtm_core::PolicySpec;
use dtm_floorplan::Floorplan;
use dtm_harness::{ConfigVariant, ResultCache, SweepRunner, SweepSpec};
use dtm_thermal::{
    step_grid_batch, step_lumped_batch, BatchWorkspace, GridConfig, GridThermalModel,
    GridTransient, PackageConfig, ThermalModel, TransientSolver,
};
use dtm_workloads::{TraceGenConfig, TraceLibrary, Workload};

/// Engine power-sample interval (s): one sample per 100k cycles at 3.6 GHz.
const DT: f64 = 100_000.0 / 3.6e9;

/// Lane count for the throughput measurement (one full lane block).
const LANES: usize = 8;

/// Median of per-rep mean ns per scalar-equivalent step over `reps`
/// timed loops of `steps` iterations of `step` (which advances all
/// `LANES` lanes once).
fn time_loop<F: FnMut()>(reps: usize, steps: usize, mut step: F) -> f64 {
    let mut per_rep: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..steps {
                step();
            }
            t0.elapsed().as_nanos() as f64 / (steps * LANES) as f64
        })
        .collect();
    per_rep.sort_by(|a, b| a.total_cmp(b));
    per_rep[reps / 2]
}

fn lane_powers(n: usize) -> Vec<Vec<f64>> {
    (0..LANES)
        .map(|l| {
            (0..n)
                .map(|j| 0.45 + 0.02 * l as f64 + 0.01 * (j % 5) as f64)
                .collect()
        })
        .collect()
}

struct Throughput {
    scalar_ns: f64,
    batched_ns: f64,
}

impl Throughput {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.batched_ns
    }
}

fn bench_lumped(reps: usize, steps: usize) -> Throughput {
    let fp = Floorplan::ppc_cmp(4);
    let model = ThermalModel::new(&fp, &PackageConfig::default()).expect("model");
    let powers = lane_powers(fp.len());
    let mut solvers: Vec<TransientSolver> = (0..LANES)
        .map(|l| {
            let mut s = TransientSolver::new(model.clone(), 7e-6);
            s.init_steady(&powers[l]).expect("steady");
            s.prewarm(DT).expect("warm");
            assert!(!s.in_fallback(), "propagator must build");
            s
        })
        .collect();

    let scalar_ns = time_loop(reps, steps, || {
        for (s, p) in solvers.iter_mut().zip(&powers) {
            s.step(p, DT).expect("scalar step");
        }
    });
    let mut ws = BatchWorkspace::new();
    let batched_ns = time_loop(reps, steps, || {
        let mut lanes: Vec<(&mut TransientSolver, &[f64])> = solvers
            .iter_mut()
            .zip(&powers)
            .map(|(s, p)| (s, p.as_slice()))
            .collect();
        let batched = step_lumped_batch(&mut lanes, DT, &mut ws).expect("batch step");
        assert!(batched, "lanes share one propagator and must batch");
    });
    Throughput {
        scalar_ns,
        batched_ns,
    }
}

fn bench_grid(reps: usize, steps: usize, cfg: GridConfig) -> Throughput {
    let fp = Floorplan::ppc_cmp(4);
    let model = GridThermalModel::new(&fp, &PackageConfig::default(), cfg).expect("model");
    let powers = lane_powers(fp.len());
    let mut solvers: Vec<GridTransient> = (0..LANES)
        .map(|l| {
            let mut s = GridTransient::new(model.clone(), 7e-6);
            s.init_steady(&powers[l]).expect("steady");
            s.prewarm(DT).expect("warm");
            assert!(!s.in_fallback(), "propagator must build");
            s
        })
        .collect();

    let scalar_ns = time_loop(reps, steps, || {
        for (s, p) in solvers.iter_mut().zip(&powers) {
            s.step(p, DT).expect("scalar step");
        }
    });
    let mut ws = BatchWorkspace::new();
    let batched_ns = time_loop(reps, steps, || {
        let mut lanes: Vec<(&mut GridTransient, &[f64])> = solvers
            .iter_mut()
            .zip(&powers)
            .map(|(s, p)| (s, p.as_slice()))
            .collect();
        let batched = step_grid_batch(&mut lanes, DT, &mut ws).expect("batch step");
        assert!(batched, "lanes share one propagator and must batch");
    });
    Throughput {
        scalar_ns,
        batched_ns,
    }
}

/// Generates every trace the spec needs, outside the timed region.
fn prewarm(lib: &Arc<TraceLibrary>, spec: &SweepSpec) {
    let mut benches = Vec::new();
    for w in spec.workload_axis() {
        for b in w.resolve() {
            if !benches
                .iter()
                .any(|x: &dtm_workloads::Benchmark| x.name == b.name)
            {
                benches.push(b);
            }
        }
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(benches.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let j = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let Some(b) = benches.get(j) else { break };
                let _ = lib.trace(b);
            });
        }
    });
}

/// Cold, cacheless, single-worker sweep wall clock at a given lane
/// width.
fn timed_sweep(lib: &Arc<TraceLibrary>, spec: SweepSpec, lanes: usize) -> f64 {
    let runner = SweepRunner::bare_shared(Arc::clone(lib))
        .with_workers(1)
        .with_lanes(lanes);
    let t0 = Instant::now();
    let results = runner.run(spec).expect("sweep");
    let wall = t0.elapsed().as_secs_f64();
    assert!(results.executed() > 0, "the timed sweep must run cold");
    wall
}

fn read_cache_dir(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("cache dir readable")
        .map(|e| {
            let e = e.expect("cache entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("cache file readable"),
            )
        })
        .collect();
    entries.sort();
    entries
}

/// Runs the same small sweep at lane widths 1 and 8 into fresh cache
/// directories and asserts the cache bytes are identical.
fn check_cache_identity(lib: &Arc<TraceLibrary>, spec: &SweepSpec) {
    let base = std::env::temp_dir().join(format!("dtm-batch-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs = [base.join("lanes1"), base.join("lanes8")];
    for (dir, lanes) in dirs.iter().zip([1usize, 8]) {
        let runner = SweepRunner::bare_shared(Arc::clone(lib))
            .with_workers(2)
            .with_lanes(lanes)
            .with_cache(Some(ResultCache::new(dir)));
        runner.run(spec.clone()).expect("cache-identity sweep");
    }
    let a = read_cache_dir(&dirs[0]);
    let b = read_cache_dir(&dirs[1]);
    assert!(!a.is_empty(), "the identity sweep must populate the cache");
    assert_eq!(
        a, b,
        "cache contents differ between --lanes 1 and --lanes 8"
    );
    let _ = std::fs::remove_dir_all(&base);
    println!(
        "cache identity: {} files byte-identical between lanes 1 and 8",
        a.len()
    );
}

fn small_spec(duration: f64) -> SweepSpec {
    let mut sim = dtm_core::SimConfig::fast_test();
    sim.duration = duration;
    SweepSpec::new(vec![
        Workload::new("wa", ["gzip", "mcf", "gzip", "mcf"]),
        Workload::new("wb", ["mesa", "eon", "mesa", "eon"]),
        Workload::new("wc", ["art", "swim", "art", "swim"]),
    ])
    .variant(ConfigVariant::new(
        "base",
        sim,
        dtm_core::DtmConfig::default(),
    ))
    .policies([
        PolicySpec::baseline(),
        PolicySpec::best(),
        PolicySpec::new(
            dtm_core::ThrottleKind::Dvfs,
            dtm_core::Scope::Global,
            dtm_core::MigrationKind::None,
        ),
        PolicySpec::new(
            dtm_core::ThrottleKind::StopGo,
            dtm_core::Scope::Global,
            dtm_core::MigrationKind::None,
        ),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, steps) = if smoke { (5, 2_000) } else { (11, 20_000) };
    let (grid_reps, grid_steps) = if smoke { (3, 300) } else { (7, 4_000) };
    let grid_cfg = if smoke {
        GridConfig { cols: 8, rows: 12 }
    } else {
        GridConfig { cols: 16, rows: 24 }
    };
    let min_speedup = if smoke { 1.5 } else { 2.0 };

    // 1. Thermal-phase throughput at L = 8.
    let lumped = bench_lumped(reps, steps);
    let grid = bench_grid(grid_reps, grid_steps, grid_cfg);
    println!("== batched thermal phase, {LANES} lanes (ns per lane-step) ==\n");
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "model", "scalar ns", "batched ns", "speedup"
    );
    let grid_name = format!("grid {}x{}", grid_cfg.cols, grid_cfg.rows);
    for (name, t) in [("lumped (4-core)", &lumped), (grid_name.as_str(), &grid)] {
        println!(
            "{:<22} {:>12.0} {:>12.0} {:>8.2}x",
            name,
            t.scalar_ns,
            t.batched_ns,
            t.speedup()
        );
    }
    assert!(
        grid.speedup() >= min_speedup,
        "grid thermal-phase speedup {:.2}x below the {min_speedup}x floor",
        grid.speedup()
    );

    // 2. Whole-sweep wall clock, lanes 1 vs 8, one worker, cold.
    let (lib, sweep_spec) = if smoke {
        (
            Arc::new(TraceLibrary::new(TraceGenConfig::fast_test())),
            small_spec(0.02),
        )
    } else {
        (
            Arc::new(TraceLibrary::default().with_disk_cache("target/trace-cache")),
            SweepSpec::standard(0.1).policies(PolicySpec::all()),
        )
    };
    prewarm(&lib, &sweep_spec);
    let wall_1 = timed_sweep(&lib, sweep_spec.clone(), 1);
    let wall_8 = timed_sweep(&lib, sweep_spec.clone(), 8);
    let reduction = 1.0 - wall_8 / wall_1;
    println!(
        "\nsweep wall ({} cells, 1 worker): lanes=1 {:.2}s, lanes=8 {:.2}s ({:+.1}%)",
        sweep_spec.cells().len(),
        wall_1,
        wall_8,
        -100.0 * reduction
    );

    // 3. Cache byte-identity between lane widths.
    let id_lib = if smoke {
        Arc::clone(&lib)
    } else {
        Arc::new(TraceLibrary::new(TraceGenConfig::fast_test()))
    };
    check_cache_identity(&id_lib, &small_spec(0.02));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"lanes\": {LANES},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    for (key, t, r, s) in [
        ("lumped", &lumped, reps, steps),
        ("grid", &grid, grid_reps, grid_steps),
    ] {
        let _ = writeln!(json, "  \"{key}\": {{");
        let _ = writeln!(json, "    \"reps\": {r},");
        let _ = writeln!(json, "    \"steps_per_rep\": {s},");
        let _ = writeln!(json, "    \"scalar_ns_per_lane_step\": {:.1},", t.scalar_ns);
        let _ = writeln!(
            json,
            "    \"batched_ns_per_lane_step\": {:.1},",
            t.batched_ns
        );
        let _ = writeln!(json, "    \"speedup\": {:.3}", t.speedup());
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"sweep\": {{");
    let _ = writeln!(json, "    \"cells\": {},", sweep_spec.cells().len());
    let _ = writeln!(json, "    \"lanes1_wall_s\": {wall_1:.3},");
    let _ = writeln!(json, "    \"lanes8_wall_s\": {wall_8:.3},");
    let _ = writeln!(json, "    \"wall_reduction\": {reduction:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cache_identical\": true");
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_batch.json", &json).expect("write json");
    println!("wrote results/BENCH_batch.json");
}
