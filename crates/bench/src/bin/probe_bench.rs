//! Per-benchmark trace statistics: IPC and register-file power.
use dtm_floorplan::UnitKind;
use dtm_workloads::{all_benchmarks, TraceGenConfig, TraceLibrary};

fn main() {
    let lib = TraceLibrary::new(TraceGenConfig::default());
    println!(
        "{:<10} {:>5} {:>7} {:>7} {:>7}",
        "bench", "IPC", "intRF", "fpRF", "core W"
    );
    for b in all_benchmarks() {
        let t = lib.trace(&b);
        println!(
            "{:<10} {:>5.2} {:>7.2} {:>7.2} {:>7.1}",
            b.name,
            t.mean_ipc(),
            t.mean_unit_power(UnitKind::IntRegFile),
            t.mean_unit_power(UnitKind::FpRegFile),
            t.mean_core_power()
        );
    }
}
