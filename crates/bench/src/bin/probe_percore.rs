//! Per-core duty breakdown under dist stop-go baseline.
use dtm_core::*;
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let sim = SimConfig {
        duration: 0.2,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        sim,
        DtmConfig::default(),
    );
    for w in standard_workloads() {
        let r = exp.run(&w, PolicySpec::baseline()).unwrap();
        let duties: Vec<String> = r
            .threads
            .iter()
            .zip(&w.benchmarks)
            .map(|(t, b)| format!("{}={:.0}%", b, 100.0 * t.scaled_work / r.duration))
            .collect();
        println!(
            "{:<12} duty {:>5.1}%  [{}]",
            w.id,
            100.0 * r.duty_cycle,
            duties.join(" ")
        );
    }
}
