//! Extension: energy view of the taxonomy. The paper evaluates
//! throughput under a temperature cap; this companion experiment reports
//! the energy side — average chip power, total energy, and energy per
//! instruction — showing that DVFS policies also win on efficiency
//! (cubic power scaling buys quadratic energy-per-work savings).

use dtm_bench::{duration_arg, experiment_with_duration, mean_bips, run_all_workloads};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let policies = [
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
        PolicySpec::best(),
    ];

    println!(
        "{:<46} {:>7} {:>10} {:>10} {:>10}",
        "policy", "BIPS", "avg power", "energy", "EPI"
    );
    for p in policies {
        let runs = run_all_workloads(&exp, p).expect("run");
        let avg_power = dtm_core::mean(&runs.iter().map(|r| r.avg_power()).collect::<Vec<_>>());
        let energy = dtm_core::mean(&runs.iter().map(|r| r.energy).collect::<Vec<_>>());
        let epi = dtm_core::mean(
            &runs
                .iter()
                .map(|r| r.energy_per_instruction_nj())
                .collect::<Vec<_>>(),
        );
        println!(
            "{:<46} {:>7.2} {:>8.1} W {:>8.2} J {:>7.2} nJ",
            p.name(),
            mean_bips(&runs),
            avg_power,
            energy,
            epi
        );
    }
    println!("\n(stop-go wastes leakage while stalled at high temperature; DVFS runs");
    println!(" continuously at scaled voltage, doing more work per joule)");
}
