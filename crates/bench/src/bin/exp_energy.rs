//! Extension: energy view of the taxonomy. The paper evaluates
//! throughput under a temperature cap; this companion experiment reports
//! the energy side — average chip power, total energy, and energy per
//! instruction — showing that DVFS policies also win on efficiency
//! (cubic power scaling buys quadratic energy-per-work savings).
//!
//! The 5-policy × 12-workload grid runs through the shared sweep
//! harness, so cells are cached, ledgered, and shared with the other
//! tables (this grid is a subset of Table 8's).

use dtm_bench::mean_bips;
use dtm_core::{mean, MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_harness::{run_standard, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let policies = [
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
        PolicySpec::best(),
    ];
    let spec = SweepSpec::standard(args.duration).policies(policies);
    let results = run_standard(spec, &args).expect("sweep");

    let mut table = Table::new(["policy", "BIPS", "avg power", "energy", "EPI"]);
    for p in policies {
        let runs = results.policy_runs(p);
        let avg_power = mean(&runs.iter().map(|r| r.avg_power()).collect::<Vec<_>>());
        let energy = mean(&runs.iter().map(|r| r.energy).collect::<Vec<_>>());
        let epi = mean(
            &runs
                .iter()
                .map(|r| r.energy_per_instruction_nj())
                .collect::<Vec<_>>(),
        );
        table.row([
            p.name(),
            format!("{:.2}", mean_bips(&runs)),
            format!("{avg_power:.1} W"),
            format!("{energy:.2} J"),
            format!("{epi:.2} nJ"),
        ]);
    }
    table.print(args.json);

    if !args.json {
        println!("\n(stop-go wastes leakage while stalled at high temperature; DVFS runs");
        println!(" continuously at scaled voltage, doing more work per joule)");
        eprintln!("{}", results.summary());
    }
}
