//! `dtm_loadgen` — fixed-rate load generator for the `dtm_serve`
//! service.
//!
//! ```text
//! dtm_loadgen --addr HOST:PORT [--smoke] [--conns N]
//!             [--cold-n N] [--cold-rate R] [--cold-duration S]
//!             [--warm-n N] [--warm-rate R]
//!             [--out PATH] [--shutdown] [--json]
//! ```
//!
//! Drives two phases against a running server and prints a
//! latency/throughput table:
//!
//! - **cold**: every request carries a unique sensor-noise seed, so
//!   every admitted request is a full simulation on the server's
//!   worker pool;
//! - **warm**: every request names the same cell (pre-touched once
//!   before timing), so the server answers from its in-memory memo.
//!
//! Arrivals are open-loop at a fixed rate on a deterministic schedule:
//! request *i* is due at `start + i/rate`, connections round-robin the
//! indices, and a connection that falls behind sends immediately —
//! no randomness, so a run is exactly reproducible. Latency is
//! measured client-side around each call. Results are appended to
//! `results/BENCH_serve.json` (overwritten each run) and, with
//! `--shutdown`, the server is asked to drain afterwards.

use dtm_harness::json::Json;
use dtm_harness::Table;
use dtm_serve::{Client, Response, SimRequest};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Args {
    addr: String,
    conns: usize,
    cold_n: u64,
    cold_rate: f64,
    cold_duration: f64,
    warm_n: u64,
    warm_rate: f64,
    out: String,
    shutdown: bool,
    json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: String::new(),
            conns: 8,
            cold_n: 600,
            cold_rate: 250.0,
            cold_duration: 0.005,
            warm_n: 20_000,
            warm_rate: 10_000.0,
            out: "results/BENCH_serve.json".into(),
            shutdown: false,
            json: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dtm_loadgen --addr HOST:PORT [--smoke] [--conns N] \
         [--cold-n N] [--cold-rate R] [--cold-duration S] \
         [--warm-n N] [--warm-rate R] [--out PATH] [--shutdown] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    fn value(args: &[String], i: &mut usize, name: &str) -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        })
    }
    let mut a = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => a.addr = value(&argv, &mut i, "--addr"),
            "--smoke" => {
                a.conns = 2;
                a.cold_n = 20;
                a.cold_rate = 50.0;
                a.warm_n = 300;
                a.warm_rate = 1_000.0;
            }
            "--conns" => {
                a.conns = value(&argv, &mut i, "--conns")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--cold-n" => {
                a.cold_n = value(&argv, &mut i, "--cold-n")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--cold-rate" => {
                a.cold_rate = value(&argv, &mut i, "--cold-rate")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--cold-duration" => {
                a.cold_duration = value(&argv, &mut i, "--cold-duration")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--warm-n" => {
                a.warm_n = value(&argv, &mut i, "--warm-n")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--warm-rate" => {
                a.warm_rate = value(&argv, &mut i, "--warm-rate")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--out" => a.out = value(&argv, &mut i, "--out"),
            "--shutdown" => a.shutdown = true,
            "--json" => a.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }
    if a.addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    if a.conns == 0 || a.cold_rate <= 0.0 || a.warm_rate <= 0.0 {
        usage();
    }
    a
}

/// Outcome tallies and latency stats of one phase.
#[derive(Debug, Default, Clone)]
struct PhaseResult {
    name: String,
    sent: u64,
    ok: u64,
    rejected: u64,
    timeouts: u64,
    errors: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_us: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one open-loop phase: `n` requests at `rate`/s across `conns`
/// connections, request `i` built by `make_req(i)`.
fn run_phase(
    addr: &str,
    name: &str,
    n: u64,
    rate: f64,
    conns: usize,
    make_req: impl Fn(u64) -> SimRequest + Send + Sync,
) -> PhaseResult {
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let make_req = &make_req;

    let merged: Vec<(PhaseResult, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns as u64)
            .map(|c| {
                s.spawn(move || {
                    let mut tally = PhaseResult::default();
                    let mut latencies = Vec::new();
                    let mut client = match Client::connect(addr) {
                        Ok(cl) => cl,
                        Err(e) => {
                            eprintln!("dtm_loadgen: connect failed: {e}");
                            return (tally, latencies);
                        }
                    };
                    let mut i = c;
                    while i < n {
                        let due = start + interval.mul_f64(i as f64);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let t0 = Instant::now();
                        match client.simulate(make_req(i)) {
                            Ok(Response::Result(_)) => {
                                tally.ok += 1;
                                latencies.push(t0.elapsed().as_micros() as u64);
                            }
                            Ok(Response::Overloaded { .. }) => tally.rejected += 1,
                            Ok(Response::Timeout { .. }) => tally.timeouts += 1,
                            Ok(_) => tally.errors += 1,
                            Err(e) => {
                                eprintln!("dtm_loadgen: request failed: {e}");
                                tally.errors += 1;
                            }
                        }
                        tally.sent += 1;
                        i += conns as u64;
                    }
                    (tally, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = start.elapsed().as_secs_f64();
    let mut out = PhaseResult {
        name: name.to_string(),
        elapsed_s: elapsed,
        ..PhaseResult::default()
    };
    let mut latencies = Vec::new();
    for (tally, lats) in merged {
        out.sent += tally.sent;
        out.ok += tally.ok;
        out.rejected += tally.rejected;
        out.timeouts += tally.timeouts;
        out.errors += tally.errors;
        latencies.extend(lats);
    }
    latencies.sort_unstable();
    out.throughput_rps = if elapsed > 0.0 {
        out.ok as f64 / elapsed
    } else {
        0.0
    };
    out.p50_us = percentile(&latencies, 0.50);
    out.p95_us = percentile(&latencies, 0.95);
    out.p99_us = percentile(&latencies, 0.99);
    out.mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    out
}

fn phase_to_json(p: &PhaseResult) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(&p.name)),
        ("sent".into(), Json::u64(p.sent)),
        ("ok".into(), Json::u64(p.ok)),
        ("rejected".into(), Json::u64(p.rejected)),
        ("timeouts".into(), Json::u64(p.timeouts)),
        ("errors".into(), Json::u64(p.errors)),
        ("elapsed_s".into(), Json::f64(p.elapsed_s)),
        ("throughput_rps".into(), Json::f64(p.throughput_rps)),
        ("p50_us".into(), Json::u64(p.p50_us)),
        ("p95_us".into(), Json::u64(p.p95_us)),
        ("p99_us".into(), Json::u64(p.p99_us)),
        ("mean_us".into(), Json::f64(p.mean_us)),
    ])
}

/// Extracts the numeric `dtm_serve_*` samples from a Prometheus dump.
fn serve_metrics_json(text: &str) -> Json {
    let mut fields = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || !line.starts_with("dtm_serve_") {
            continue;
        }
        if let Some((name, value)) = line.split_once(' ') {
            // Histogram bucket lines carry label braces; keep only the
            // plain counter/gauge samples (quantiles ride in via the
            // summary-style *_p50/_p95/_p99 names if exported).
            if name.contains('{') {
                continue;
            }
            if value.parse::<f64>().is_ok() {
                fields.push((name.to_string(), Json::Num(value.to_string())));
            }
        }
    }
    Json::Obj(fields)
}

fn main() {
    let args = parse_args();

    // Liveness gate: fail fast and loud if nothing is listening.
    match Client::connect(&args.addr) {
        Ok(mut c) => {
            if let Err(e) = c.ping() {
                eprintln!("dtm_loadgen: server at {} not healthy: {e}", args.addr);
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("dtm_loadgen: cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        }
    }

    // Cold phase: unique seeds force a full simulation per request.
    let cold_duration = args.cold_duration;
    let cold = run_phase(
        &args.addr,
        "cold",
        args.cold_n,
        args.cold_rate,
        args.conns,
        |i| SimRequest {
            duration_s: Some(cold_duration),
            seed: Some(0xC01D_0000 + i),
            ..SimRequest::standard("workload1", "dvfs/dist/sensor")
        },
    );

    // Warm phase: one fixed cell, touched once so even the first timed
    // request hits the memo.
    let warm_cell = || SimRequest {
        duration_s: Some(cold_duration),
        seed: Some(0x3A3A),
        ..SimRequest::standard("workload1", "dvfs/dist/sensor")
    };
    {
        let mut c = Client::connect(&args.addr).expect("connect for warm-up");
        let _ = c.simulate(warm_cell());
    }
    let warm = run_phase(
        &args.addr,
        "warm",
        args.warm_n,
        args.warm_rate,
        args.conns,
        |_| warm_cell(),
    );

    // Server-side view, for the benchmark artifact.
    let metrics_text = Client::connect(&args.addr)
        .and_then(|mut c| c.metrics())
        .unwrap_or_default();

    let mut table = Table::new([
        "phase", "sent", "ok", "rejected", "timeout", "error", "rps", "p50 ms", "p95 ms", "p99 ms",
    ])
    .with_title("dtm_serve under fixed-rate load");
    for p in [&cold, &warm] {
        table.row([
            p.name.clone(),
            p.sent.to_string(),
            p.ok.to_string(),
            p.rejected.to_string(),
            p.timeouts.to_string(),
            p.errors.to_string(),
            format!("{:.0}", p.throughput_rps),
            format!("{:.2}", p.p50_us as f64 / 1e3),
            format!("{:.2}", p.p95_us as f64 / 1e3),
            format!("{:.2}", p.p99_us as f64 / 1e3),
        ]);
    }
    table.print(args.json);

    let doc = Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("addr".into(), Json::str(&args.addr)),
                ("conns".into(), Json::usize(args.conns)),
                ("cold_rate_rps".into(), Json::f64(args.cold_rate)),
                ("warm_rate_rps".into(), Json::f64(args.warm_rate)),
                ("cold_duration_s".into(), Json::f64(args.cold_duration)),
            ]),
        ),
        (
            "phases".into(),
            Json::Arr(vec![phase_to_json(&cold), phase_to_json(&warm)]),
        ),
        ("server_metrics".into(), serve_metrics_json(&metrics_text)),
    ]);
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&args.out, format!("{}\n", doc.emit())) {
        Ok(()) => eprintln!("dtm_loadgen: wrote {}", args.out),
        Err(e) => {
            eprintln!("dtm_loadgen: cannot write {}: {e}", args.out);
            std::process::exit(1);
        }
    }

    if args.shutdown {
        match Client::connect(&args.addr).and_then(|mut c| c.shutdown()) {
            Ok(()) => eprintln!("dtm_loadgen: server asked to drain"),
            Err(e) => {
                eprintln!("dtm_loadgen: shutdown request failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if cold.errors + warm.errors > 0 {
        std::process::exit(1);
    }
}
