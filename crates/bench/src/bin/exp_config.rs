//! Tables 2, 3, and 4: the policy taxonomy, the modeled-CPU design
//! parameters, and the twelve workloads.

use dtm_core::{DtmConfig, MigrationKind, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_microarch::CoreConfig;
use dtm_workloads::standard_workloads;

fn main() {
    println!("== Table 2: thermal control taxonomy (12 schemes) ==\n");
    for migration in [
        MigrationKind::None,
        MigrationKind::CounterBased,
        MigrationKind::SensorBased,
    ] {
        for scope in [Scope::Global, Scope::Distributed] {
            for throttle in [ThrottleKind::StopGo, ThrottleKind::Dvfs] {
                println!("  {}", PolicySpec::new(throttle, scope, migration));
            }
        }
    }

    let core = CoreConfig::default();
    let sim = SimConfig::default();
    let dtm = DtmConfig::default();
    println!("\n== Table 3: design parameters ==\n");
    println!("  Process technology        90 nm");
    println!("  Supply voltage            1.0 V (nominal)");
    println!("  Clock rate                {:.1} GHz", core.clock_hz / 1e9);
    println!("  Organization              {}-core + shared L2", sim.cores);
    println!(
        "  Reservation stations      mem/int queue (2x{}), FP queue (2x{})",
        core.int_queue / 2,
        core.fp_queue / 2
    );
    println!(
        "  Functional units          {} FXU, {} FPU, {} LSU, {} BXU",
        core.n_fxu, core.n_fpu, core.n_lsu, core.n_bxu
    );
    println!(
        "  Physical registers        120 GPR, 108 FPR, 90 SPR (window {})",
        core.window
    );
    println!(
        "  Branch predictor          {}K-entry bimodal + gshare + selector",
        core.bpred_entries / 1024
    );
    println!(
        "  L1 D-cache                {} KB, {}-way, {} B blocks, {}-cycle",
        core.l1d.size_bytes / 1024,
        core.l1d.ways,
        core.l1d.block_bytes,
        core.l1_latency
    );
    println!(
        "  L1 I-cache                {} KB, {}-way, {} B blocks, {}-cycle",
        core.l1i.size_bytes / 1024,
        core.l1i.ways,
        core.l1i.block_bytes,
        core.l1_latency
    );
    println!(
        "  L2 cache                  {} MB, {}-way, {} B blocks, {}-cycle",
        core.l2.size_bytes / (1024 * 1024),
        core.l2.ways,
        core.l2.block_bytes,
        core.l2_latency
    );
    println!(
        "  Main memory               {}-cycle latency",
        core.mem_latency
    );
    println!(
        "  DVFS transition penalty   {:.0} us",
        dtm.dvfs_transition_penalty * 1e6
    );
    println!(
        "  Minimum freq scale        {:.0}% ({:.0} MHz)",
        dtm.dvfs_min_scale * 100.0,
        dtm.dvfs_min_scale * core.clock_hz / 1e6
    );
    println!(
        "  Minimum transition        {:.0}% of range",
        dtm.dvfs_min_transition * 100.0
    );
    println!(
        "  Migration penalty         {:.0} us",
        dtm.migration_penalty * 1e6
    );
    println!("  Thermal threshold         {:.1} C", dtm.threshold);

    println!("\n== Table 4: four-process workloads ==\n");
    println!("  {:<12} {:<36} {:>5}", "id", "benchmarks", "mix");
    for w in standard_workloads() {
        println!(
            "  {:<12} {:<36} {:>5}",
            w.id,
            w.display_name(),
            w.mix_label()
        );
    }
}
