//! Figure 3 + Table 5: the four non-migration policies.
//!
//! Figure 3 plots each workload's instruction throughput under global
//! stop-go, global ("synchronous") DVFS, and distributed DVFS, normalized
//! to the distributed stop-go baseline. Table 5 reports the policy means
//! (BIPS, effective duty cycle, relative throughput).

use dtm_bench::{figure_label, mean_bips, mean_duty};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_harness::{report, run_standard, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let policies = [
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
        PolicySpec::new(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::None,
        ),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    ];
    let spec = SweepSpec::standard(args.duration).policies(policies);
    let results = run_standard(spec, &args).expect("sweep");
    let baseline = results.policy_runs(policies[1]); // distributed stop-go

    let mut fig3 = Table::new(["workload", "glob SG", "glob DVFS", "dist DVFS"])
        .with_title("Figure 3: per-workload throughput relative to dist. stop-go");
    for (i, w) in results.spec().workload_axis().iter().enumerate() {
        let base = baseline[i].bips();
        fig3.row([
            figure_label(w),
            report::num2(results.get(policies[0], i).bips() / base),
            report::num2(results.get(policies[2], i).bips() / base),
            report::num2(results.get(policies[3], i).bips() / base),
        ]);
    }
    fig3.print(args.json);

    let mut table5 = Table::new(["policy", "BIPS", "duty cycle", "relative", "emergencies"])
        .with_title("Table 5: policy averages");
    let base_bips = mean_bips(&baseline);
    for p in policies {
        let runs = results.policy_runs(p);
        let emer: f64 = runs.iter().map(|r| r.emergency_time).sum();
        table5.row([
            p.name(),
            report::num2(mean_bips(&runs)),
            report::pct(mean_duty(&runs)),
            report::times(mean_bips(&runs) / base_bips),
            format!("{:.2}ms", 1e3 * emer),
        ]);
    }
    if !args.json {
        println!();
    }
    table5.print(args.json);

    if !args.json {
        println!(
            "\npaper reference: stop-go 2.79 BIPS 19.77% 0.62x | dist stop-go 4.53 32.57% 1.00x"
        );
        println!("                 global DVFS 9.36 66.49% 2.07x | dist DVFS 11.36 81.02% 2.51x");
        eprintln!("{}", results.summary());
    }
}
