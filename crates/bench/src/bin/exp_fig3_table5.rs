//! Figure 3 + Table 5: the four non-migration policies.
//!
//! Figure 3 plots each workload's instruction throughput under global
//! stop-go, global ("synchronous") DVFS, and distributed DVFS, normalized
//! to the distributed stop-go baseline. Table 5 reports the policy means
//! (BIPS, effective duty cycle, relative throughput).

use dtm_bench::{duration_arg, experiment_with_duration, figure_label, mean_bips, mean_duty};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_workloads::standard_workloads;

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let workloads = standard_workloads();

    let policies = [
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::StopGo, Scope::Distributed, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    ];
    let mut results = Vec::new();
    for p in policies {
        let runs: Vec<_> = workloads.iter().map(|w| exp.run(w, p).expect("run")).collect();
        results.push((p, runs));
    }
    let baseline = &results[1].1; // distributed stop-go

    println!("== Figure 3: per-workload throughput relative to dist. stop-go ==\n");
    println!(
        "{:<44} {:>9} {:>9} {:>9}",
        "workload", "glob SG", "glob DVFS", "dist DVFS"
    );
    for (i, w) in workloads.iter().enumerate() {
        let base = baseline[i].bips();
        println!(
            "{:<44} {:>9.2} {:>9.2} {:>9.2}",
            figure_label(w),
            results[0].1[i].bips() / base,
            results[2].1[i].bips() / base,
            results[3].1[i].bips() / base,
        );
    }

    println!("\n== Table 5: policy averages ==\n");
    println!(
        "{:<16} {:>7} {:>11} {:>10} {:>12}",
        "policy", "BIPS", "duty cycle", "relative", "emergencies"
    );
    let base_bips = mean_bips(baseline);
    for (p, runs) in &results {
        let emer: f64 = runs.iter().map(|r| r.emergency_time).sum();
        println!(
            "{:<16} {:>7.2} {:>10.2}% {:>9.2}x {:>10.2}ms",
            p.name(),
            mean_bips(runs),
            100.0 * mean_duty(runs),
            mean_bips(runs) / base_bips,
            1e3 * emer
        );
    }
    println!(
        "\npaper reference: stop-go 2.79 BIPS 19.77% 0.62x | dist stop-go 4.53 32.57% 1.00x"
    );
    println!("                 global DVFS 9.36 66.49% 2.07x | dist DVFS 11.36 81.02% 2.51x");
}
