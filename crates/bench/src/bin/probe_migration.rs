//! Calibration probe for the migration policies (Tables 6 and 7 shape).

use dtm_core::{DtmConfig, Experiment, MigrationKind, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let duration: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let sim = SimConfig {
        duration,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        sim,
        DtmConfig::default(),
    );
    let workloads = standard_workloads();

    for throttle in [ThrottleKind::StopGo, ThrottleKind::Dvfs] {
        for scope in [Scope::Distributed, Scope::Global] {
            for migration in [
                MigrationKind::None,
                MigrationKind::CounterBased,
                MigrationKind::SensorBased,
            ] {
                let policy = PolicySpec::new(throttle, scope, migration);
                let mut bips = Vec::new();
                let mut duty = Vec::new();
                let mut migs = 0u64;
                for w in &workloads {
                    let r = exp.run(w, policy).expect("run");
                    bips.push(r.bips());
                    duty.push(r.duty_cycle);
                    migs += r.migrations;
                }
                println!(
                    "{:<48} BIPS {:5.2}  duty {:5.1}%  migrations {}",
                    policy.name(),
                    dtm_core::mean(&bips),
                    100.0 * dtm_core::mean(&duty),
                    migs
                );
            }
        }
    }
}
