//! Fixed vs adaptive gain scheduling under the paper's best policy
//! (distributed DVFS + sensor-based migration).
//!
//! The paper fixes its PI gains (Table 3) for every workload. This
//! experiment asks what an *adaptive* controller buys on top of the
//! best fixed retuning `exp_explore --smoke` found: the same knob
//! point is run under the fixed clipped PI, the Rao-style
//! adjustable-gain law, and the windowed self-tuning scheduler, next
//! to the paper-default gains.
//!
//! ```text
//! exp_adaptive [DURATION] [--workers N] [--json] [--no-cache]
//!              [--smoke] [--dist host:port,...]
//! ```
//!
//! `--smoke` runs the CI grid (2 workloads, test-length traces) and
//! enforces the acceptance gate: both adaptive variants must stay
//! violation-free, and at least one must match or beat the fixed
//! front point on some objective without regressing any other beyond
//! 2%. Full and smoke runs write `results/ADAPTIVE_summary.json` and
//! `results/ADAPTIVE_summary_smoke.json` respectively.

use dtm_core::{DtmConfig, GainScheduleConfig, PolicySpec, SimConfig};
use dtm_dist::run_with_args;
use dtm_explore::Score;
use dtm_harness::json::Json;
use dtm_harness::{ConfigVariant, Ledger, ResultCache, SweepArgs, SweepRunner, SweepSpec, Table};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary, Workload};

const REPORT_PATH: &str = "results/ADAPTIVE_summary.json";
const SMOKE_REPORT_PATH: &str = "results/ADAPTIVE_summary_smoke.json";

/// The best fixed-gain front point of the `exp_explore --smoke` search
/// (see `crates/explore/tests/golden_front.rs`, which pins its score):
/// the incumbent every adaptive schedule is measured against.
fn front_point_dtm() -> DtmConfig {
    DtmConfig {
        pi_kp: 0.0130198,
        pi_ki: 16.7746,
        dvfs_setpoint_margin: 3.74946,
        stopgo_trip_margin: 0.112355,
        stopgo_stall: 0.0268502,
        migration_interval: 0.0305746,
        os_tick: 0.00194046,
        ..DtmConfig::default()
    }
}

/// The variant axis: paper defaults, the retuned fixed incumbent, and
/// the two adaptive schedules layered on the incumbent's knobs.
fn variant_axis() -> Vec<(&'static str, DtmConfig)> {
    let front = front_point_dtm();
    vec![
        ("fixed-paper", DtmConfig::default()),
        ("fixed-front", front),
        (
            "rao",
            DtmConfig {
                gain_schedule: GainScheduleConfig::rao_default(),
                ..front
            },
        ),
        (
            "selftune",
            DtmConfig {
                gain_schedule: GainScheduleConfig::selftune_default(),
                ..front
            },
        ),
    ]
}

/// Relative regression tolerance of the acceptance gate.
const TOLERANCE: f64 = 0.02;

/// Whether `adaptive` matches-or-beats `fixed` on at least one of
/// {BIPS, violation, energy} while regressing none of them by more
/// than [`TOLERANCE`] (violation is absolute: any increase from a
/// violation-free incumbent is a regression).
fn acceptable(adaptive: &Score, fixed: &Score) -> bool {
    let bips_ok = adaptive.bips >= fixed.bips * (1.0 - TOLERANCE);
    let energy_ok = adaptive.energy <= fixed.energy * (1.0 + TOLERANCE);
    let violation_ok = adaptive.violation <= fixed.violation + 1e-12;
    let improves = adaptive.bips >= fixed.bips
        || adaptive.violation <= fixed.violation
        || adaptive.energy <= fixed.energy;
    bips_ok && energy_ok && violation_ok && improves
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let args = SweepArgs::parse(argv);

    let (sim, workloads, report_path) = if smoke {
        let workloads: Vec<Workload> = standard_workloads().into_iter().take(2).collect();
        (SimConfig::fast_test(), workloads, SMOKE_REPORT_PATH)
    } else {
        let sim = SimConfig {
            duration: args.duration,
            ..SimConfig::default()
        };
        // The same four representative Table 4 mixes exp_explore's full
        // search evaluates on.
        let workloads: Vec<Workload> = standard_workloads()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| [0, 4, 6, 11].contains(i))
            .map(|(_, w)| w)
            .collect();
        (sim, workloads, REPORT_PATH)
    };

    let axis = variant_axis();
    let policy = PolicySpec::best();
    let mut spec = SweepSpec::new(workloads).policies([policy]);
    for (i, (name, dtm)) in axis.iter().enumerate() {
        let v = ConfigVariant::new(*name, sim.clone(), *dtm);
        spec = if i == 0 {
            spec.variant(v)
        } else {
            spec.add_variant(v)
        };
    }

    let results = if smoke {
        let mut runner = SweepRunner::bare(TraceLibrary::new(TraceGenConfig::fast_test()))
            .with_cache(Some(ResultCache::default_location()))
            .with_ledger(Some(Ledger::default_location()));
        if let Some(n) = args.workers {
            runner = runner.with_workers(n);
        }
        if args.no_cache {
            runner = runner.with_cache(None);
        }
        runner.run(spec).expect("smoke sweep")
    } else {
        // Distributable: adaptive schedules have a wire spelling, so
        // `--dist` shards these cells like any others.
        run_with_args(spec, &args).expect("sweep")
    };

    let scores: Vec<(&'static str, &DtmConfig, Score)> = axis
        .iter()
        .map(|(name, dtm)| {
            let runs = results.policy_runs_in(name, policy);
            (*name, dtm, Score::of_runs(&runs, dtm.threshold))
        })
        .collect();
    let fixed_front = scores
        .iter()
        .find(|(n, _, _)| *n == "fixed-front")
        .expect("incumbent variant")
        .2;

    let mut table = Table::new([
        "controller",
        "schedule",
        "BIPS",
        "violation s·°C",
        "energy J",
        "ΔBIPS vs front",
        "Δenergy vs front",
    ])
    .with_title("fixed vs adaptive gain scheduling (dist. DVFS + sensor migration)");
    for (name, dtm, s) in &scores {
        table.row([
            name.to_string(),
            dtm.gain_schedule.wire_name().to_string(),
            format!("{:.3}", s.bips),
            format!("{:.4}", s.violation),
            format!("{:.2}", s.energy),
            format!("{:+.2}%", 100.0 * (s.bips / fixed_front.bips - 1.0)),
            format!("{:+.2}%", 100.0 * (s.energy / fixed_front.energy - 1.0)),
        ]);
    }
    table.print(args.json);

    let report = Json::Obj(vec![
        ("policy".into(), Json::str(policy.wire_name())),
        (
            "variants".into(),
            Json::Arr(
                scores
                    .iter()
                    .map(|(name, dtm, s)| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(*name)),
                            ("schedule".into(), Json::str(dtm.gain_schedule.wire_name())),
                            ("score".into(), s.to_json()),
                            ("acceptable".into(), Json::Bool(acceptable(s, &fixed_front))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("baseline".into(), Json::str("fixed-front")),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(report_path, report.emit() + "\n").expect("write report");
    if !args.json {
        println!("(summary written to {report_path})");
        eprintln!("{}", results.summary());
    }

    if smoke {
        // CI gate 1: the adaptive controllers never trade thermal
        // safety for throughput — zero violation exposure, like the
        // fixed incumbent.
        for (name, _, s) in scores.iter().filter(|(n, _, _)| !n.starts_with("fixed")) {
            assert_eq!(
                s.violation, 0.0,
                "adaptive variant `{name}` has thermal violations"
            );
        }
        // CI gate 2: at least one adaptive schedule matches-or-beats
        // the fixed front point somewhere without giving up more than
        // 2% anywhere.
        assert!(
            scores
                .iter()
                .filter(|(n, _, _)| !n.starts_with("fixed"))
                .any(|(_, _, s)| acceptable(s, &fixed_front)),
            "no adaptive schedule is competitive with the fixed front point"
        );
        println!("smoke: adaptive gate passed ({} variants)", scores.len());
    }
}
