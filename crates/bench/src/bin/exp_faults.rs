//! Extension experiment: policy robustness under sensor and actuator
//! faults. The paper (like most DTM studies) assumes the thermal
//! sensors and throttling actuators always work; here we inject
//! deterministic fault scenarios — stuck-at readings, drift, dropouts,
//! transient spikes, stale telemetry, stuck DVFS, ignored stop-go gates
//! — and measure how the twelve policies degrade, with and without the
//! watchdog safety net (`dtm-faults`).
//!
//! ```text
//! exp_faults [DURATION] [--workers N] [--json] [--no-cache] [--smoke]
//! ```
//!
//! `--smoke` runs a tiny fixed grid (2 workloads × 3 policies ×
//! 2 scenarios at test-length traces) for CI: it appends exactly
//! 12 ledger rows per invocation.

use dtm_bench::{mean_bips, mean_duty};
use dtm_core::{
    DtmConfig, FaultConfig, FaultEvent, FaultKind, FaultScenario, FaultTarget, MigrationKind,
    PolicySpec, RunResult, Scope, SimConfig, ThrottleKind, WatchdogConfig,
};
use dtm_dist::run_with_args;
use dtm_harness::{ConfigVariant, Ledger, ResultCache, SweepArgs, SweepRunner, SweepSpec, Table};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

/// The scenario axis: what breaks at `0.2 × duration` (drift/spike
/// windows scale with the run length too, so any duration exercises
/// both the pre-fault and post-fault regimes).
fn fault_axis(duration: f64) -> Vec<(&'static str, FaultConfig)> {
    let start = 0.2 * duration;
    let stuck_hot = FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, start);
    let stuck_cold = FaultScenario::stuck_sensor("stuck-cold", 0, 0, 35.0, start);
    let dropout = FaultScenario::dropout_sensor("dropout", 0, 0, start);
    let drift = FaultScenario::new(
        "drift",
        vec![FaultEvent::permanent(
            start,
            FaultTarget::Sensor { core: 0, index: 0 },
            // Reaches the watchdog's 40 C cross-sensor bound halfway
            // between the fault start and the end of the run.
            FaultKind::SensorDrift {
                rate: 100.0 / duration,
            },
        )],
    );
    let spike = FaultScenario::new(
        "spike",
        vec![FaultEvent {
            start: 0.4 * duration,
            end: 0.42 * duration,
            target: FaultTarget::Sensor { core: 0, index: 0 },
            kind: FaultKind::SensorSpike { amplitude: 30.0 },
        }],
    );
    let stale = FaultScenario::new(
        "stale",
        vec![FaultEvent::permanent(
            start,
            FaultTarget::Core { core: 0 },
            FaultKind::SensorStale {
                delay: 0.05 * duration,
            },
        )],
    );
    let dvfs_stuck = FaultScenario::new(
        "dvfs-stuck",
        vec![FaultEvent::permanent(
            start,
            FaultTarget::Core { core: 0 },
            FaultKind::DvfsStuck,
        )],
    );
    let gate_ignored = FaultScenario::new(
        "gate-ignored",
        vec![FaultEvent::permanent(
            start,
            FaultTarget::Core { core: 0 },
            FaultKind::GateIgnored,
        )],
    );
    vec![
        (
            "watchdog-clean",
            FaultConfig::protected(FaultScenario::ideal(), WatchdogConfig::enabled()),
        ),
        ("stuck-hot", FaultConfig::unprotected(stuck_hot.clone())),
        (
            "stuck-hot+floor",
            FaultConfig::protected(stuck_hot.clone(), WatchdogConfig::enabled()),
        ),
        (
            "stuck-hot+stopgo",
            FaultConfig::protected(stuck_hot, WatchdogConfig::enabled_stopgo()),
        ),
        ("stuck-cold", FaultConfig::unprotected(stuck_cold)),
        (
            "dropout+floor",
            FaultConfig::protected(dropout, WatchdogConfig::enabled()),
        ),
        (
            "drift+floor",
            FaultConfig::protected(drift, WatchdogConfig::enabled()),
        ),
        (
            "spike+floor",
            FaultConfig::protected(spike, WatchdogConfig::enabled()),
        ),
        ("stale", FaultConfig::unprotected(stale)),
        ("dvfs-stuck", FaultConfig::unprotected(dvfs_stuck)),
        ("gate-ignored", FaultConfig::unprotected(gate_ignored)),
    ]
}

/// Sums one robustness metric (seconds) over a policy's runs, in ms.
fn total_ms(runs: &[RunResult], f: impl Fn(&RunResult) -> f64) -> f64 {
    1e3 * runs.iter().map(f).sum::<f64>()
}

fn peak_overshoot(runs: &[RunResult]) -> f64 {
    runs.iter()
        .map(|r| r.robustness.peak_overshoot)
        .fold(0.0, f64::max)
}

fn robustness_cells(runs: &[RunResult]) -> [String; 5] {
    [
        format!("{:.2}", mean_bips(runs)),
        format!("{:.1}%", 100.0 * mean_duty(runs)),
        format!("{:.2}", total_ms(runs, |r| r.robustness.violation_time)),
        format!("{:.2}", total_ms(runs, |r| r.robustness.fallback_time)),
        format!(
            "{:.2}",
            total_ms(runs, |r| r.robustness.false_throttle_time)
        ),
    ]
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let args = SweepArgs::parse(argv);
    if smoke {
        run_smoke(&args);
        return;
    }

    let sim = SimConfig {
        duration: args.duration,
        ..SimConfig::default()
    };
    // Four representative Table 4 mixes keep the grid tractable:
    // 11 scenarios × 12 policies × 4 workloads = 528 cells.
    let workloads: Vec<_> = standard_workloads()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| [0, 4, 6, 11].contains(i))
        .map(|(_, w)| w)
        .collect();
    let axis = fault_axis(args.duration);
    let mut spec = SweepSpec::new(workloads).policies(PolicySpec::all());
    // `variant` replaces the implicit fault-free `base` entry (the
    // healthy numbers are exp_table8's job); the rest append.
    for (i, (name, faults)) in axis.iter().enumerate() {
        let v = ConfigVariant::new(*name, sim.clone(), DtmConfig::default())
            .with_faults(faults.clone());
        spec = if i == 0 {
            spec.variant(v)
        } else {
            spec.add_variant(v)
        };
    }
    // Distributable: `--dist host:port,...` shards the fault matrix
    // across remote dtm-serve workers (cells whose fault scenario has
    // no wire preset fall back to local execution automatically).
    let results = run_with_args(spec, &args).expect("sweep");

    // Table 1: every scenario under the paper's best policy.
    let best = PolicySpec::best();
    let mut scenarios = Table::new([
        "scenario (dist. DVFS)",
        "BIPS",
        "duty",
        "violation ms",
        "fallback ms",
        "false-throttle ms",
        "overshoot C",
    ])
    .with_title("fault scenarios under distributed DVFS");
    for (name, _) in &axis {
        let runs = results.policy_runs_in(name, best);
        let cells = robustness_cells(&runs);
        let mut row: Vec<String> = vec![name.to_string()];
        row.extend(cells);
        row.push(format!("{:.2}", peak_overshoot(&runs)));
        scenarios.row(row);
    }
    scenarios.print(args.json);

    // Table 2: the headline fault (stuck-hot sensor, frequency-floor
    // watchdog) across all twelve policies.
    let mut policies = Table::new([
        "policy (stuck-hot+floor)",
        "BIPS",
        "duty",
        "violation ms",
        "fallback ms",
        "false-throttle ms",
    ])
    .with_title("stuck-hot sensor with watchdog fallback, per policy");
    for p in PolicySpec::all() {
        let runs = results.policy_runs_in("stuck-hot+floor", p);
        let mut row: Vec<String> = vec![p.name().to_string()];
        row.extend(robustness_cells(&runs));
        policies.row(row);
    }
    policies.print(args.json);

    if !args.json {
        println!("\n(violation/fallback/false-throttle are summed over the workload set;");
        println!(" `stuck-hot` with no watchdog wastes throughput, `stuck-cold` risks");
        println!(" violations — the floor fallback converts both into bounded slowdown)");
        eprintln!("{}", results.summary());
    }
}

/// The CI smoke grid: 2 workloads × 3 policies × 2 scenarios at
/// test-length traces — exactly 12 ledger rows per invocation.
fn run_smoke(args: &SweepArgs) {
    let sim = SimConfig::fast_test();
    let start = 0.2 * sim.duration;
    let stuck_hot = FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, start);
    let workloads: Vec<_> = standard_workloads().into_iter().take(2).collect();
    let policies = [
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::best(),
    ];
    let spec = SweepSpec::new(workloads)
        .policies(policies)
        .variant(
            ConfigVariant::new("stuck-hot", sim.clone(), DtmConfig::default())
                .with_faults(FaultConfig::unprotected(stuck_hot.clone())),
        )
        .add_variant(
            ConfigVariant::new("stuck-hot+floor", sim, DtmConfig::default())
                .with_faults(FaultConfig::protected(stuck_hot, WatchdogConfig::enabled())),
        );
    let expected = spec.cells().len();

    let mut runner = SweepRunner::bare(TraceLibrary::new(TraceGenConfig::fast_test()))
        .with_cache(Some(ResultCache::default_location()))
        .with_ledger(Some(Ledger::default_location()));
    if let Some(n) = args.workers {
        runner = runner.with_workers(n);
    }
    if args.no_cache {
        runner = runner.with_cache(None);
    }
    let results = runner.run(spec).expect("smoke sweep");

    let mut table = Table::new([
        "scenario/policy",
        "BIPS",
        "duty",
        "violation ms",
        "fallback ms",
        "false-throttle ms",
    ])
    .with_title("exp_faults smoke grid");
    for variant in ["stuck-hot", "stuck-hot+floor"] {
        for p in policies {
            let runs = results.policy_runs_in(variant, p);
            let mut row: Vec<String> = vec![format!("{variant} / {}", p.name())];
            row.extend(robustness_cells(&runs));
            table.row(row);
        }
    }
    table.print(args.json);
    println!(
        "smoke: {} cells, {} ledger rows appended",
        expected, expected
    );
    eprintln!("{}", results.summary());
}
