//! §4 reproduction: the formal control design flow for thermal DVFS —
//! continuous PI design, discretization to the paper's published
//! difference equation, pole-based stability verification, settling
//! behaviour, and the PID (derivative-term) ablation supporting the
//! paper's "little benefit" remark.

use dtm_control::{
    closed_loop_routh, frequency_response, margins, response, C2dMethod, ClippedPi, PiGains,
    RouthVerdict, TransferFunction,
};

fn main() {
    let gains = PiGains::paper_defaults();
    println!("== Continuous design ==");
    println!(
        "  G(s) = Kp + Ki/s with Kp = {}, Ki = {}",
        gains.kp, gains.ki
    );
    println!(
        "  control period T = {:.4} us (100k cycles @ 3.6 GHz)",
        gains.dt * 1e6
    );

    let g = TransferFunction::pi(gains.kp, gains.ki);
    let d = g.c2d(gains.dt, C2dMethod::ForwardEuler);
    let (b, a) = d.difference_coeffs();
    println!("\n== Discretization (c2d, forward Euler) ==");
    println!(
        "  u[n] = {:+.4}*u[n-1] {:+.6}*e[n] {:+.6}*e[n-1]   (actuation sign)",
        -a[1], -b[0], -b[1]
    );
    println!("  paper: u[n] = u[n-1] - 0.0107*e[n] + 0.003796*e[n-1]");

    println!("\n== Stability (root locus criterion) ==");
    for (gain, tau) in [(30.0, 0.01), (15.0, 0.005), (60.0, 0.03)] {
        let plant = TransferFunction::first_order(gain, tau);
        let cl = g.series(&plant).unity_feedback();
        let poles = cl.poles();
        let stable = cl.is_stable();
        let worst = poles.iter().map(|p| p.re).fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  plant K={gain:>4} tau={tau:>6}: {}  (max Re(pole) = {worst:.1})",
            if stable { "STABLE" } else { "UNSTABLE" }
        );
    }

    println!("\n== Robustness to constant deviation (paper: 'can deviate significantly') ==");
    let plant = TransferFunction::first_order(30.0, 0.01);
    for scale in [0.1, 0.25, 1.0, 4.0, 10.0] {
        let gi = TransferFunction::pi(gains.kp * scale, gains.ki * scale);
        let cl = gi.series(&plant).unity_feedback();
        println!(
            "  gains x{scale:>5}: {}",
            if cl.is_stable() { "stable" } else { "unstable" }
        );
    }

    println!("\n== Routh–Hurwitz (algebraic) cross-check ==");
    let open = g.series(&plant);
    let verdict = closed_loop_routh(&open);
    println!("  closed-loop verdict: {verdict:?}");
    assert_eq!(verdict, RouthVerdict::Stable, "paper design must be stable");

    println!("\n== Frequency-domain margins ==");
    let sweep = frequency_response(&open, 1e-1, 1e6, 4000);
    let m = margins(&sweep);
    match m.gain_margin {
        Some(gm) => println!("  gain margin: {:.2}x", gm),
        None => println!("  gain margin: infinite (phase never reaches -180 deg)"),
    }
    match m.phase_margin {
        Some(pm) => println!("  phase margin: {:.1} deg", pm.to_degrees()),
        None => println!("  phase margin: n/a (no unity-gain crossover)"),
    }

    println!("\n== Closed-loop step response ==");
    let cl = g
        .series(&plant)
        .unity_feedback()
        .c2d(gains.dt, C2dMethod::Tustin);
    let n = (0.1 / gains.dt) as usize;
    let y = cl.simulate(&response::step_input(n));
    let ss = response::steady_state(&y);
    let settle = response::settling_index(&y, 1.0, 0.02).map(|i| i as f64 * gains.dt * 1e3);
    println!("  steady state: {ss:.4} (integral action -> zero error)");
    match settle {
        Some(ms) => println!("  2% settling time: {ms:.2} ms"),
        None => println!("  did not settle within 100 ms"),
    }
    println!("  overshoot: {:.1}%", 100.0 * response::overshoot(&y, 1.0));

    println!("\n== PID ablation (derivative term) ==");
    for kd in [0.0, 1e-6, 1e-5, 1e-4] {
        let ctl = if kd == 0.0 {
            TransferFunction::pi(gains.kp, gains.ki)
        } else {
            TransferFunction::pid(gains.kp, gains.ki, kd)
        };
        let cl = ctl
            .series(&plant)
            .unity_feedback()
            .c2d(gains.dt, C2dMethod::Tustin);
        let y = cl.simulate(&response::step_input(n));
        let settle = response::settling_index(&y, 1.0, 0.02)
            .map(|i| format!("{:.2} ms", i as f64 * gains.dt * 1e3))
            .unwrap_or_else(|| "none".into());
        println!(
            "  Kd = {kd:>7}: settling {settle}, overshoot {:.2}%",
            100.0 * response::overshoot(&y, 1.0)
        );
    }
    println!("  (the derivative term changes settling only marginally — the paper's");
    println!("   rationale for staying with PI)");

    println!("\n== Clipped hardware controller anti-windup check ==");
    let mut pi = ClippedPi::paper_thermal_dvfs();
    for _ in 0..100_000 {
        pi.update(10.0); // saturate low for ~2.8 s of control time
    }
    let mut steps = 0;
    loop {
        if pi.update(-5.0) >= 1.0 || steps > 1000 {
            break;
        }
        steps += 1;
    }
    println!("  recovery from deep saturation: {steps} control periods (no hidden windup)");
}
