//! §5.3 sensitivity claim: raising the temperature threshold to 100 °C
//! increases duty cycles by roughly 10–15 percentage points while the
//! relative performance tradeoffs remain as presented.

use dtm_bench::{duration_arg, mean_bips, mean_duty, run_all_workloads};
use dtm_core::{DtmConfig, Experiment, MigrationKind, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_workloads::{TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let policies = [
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    ];

    let mut per_threshold = Vec::new();
    for threshold in [84.2, 100.0] {
        let exp = Experiment::new(
            TraceLibrary::new(TraceGenConfig::default()),
            SimConfig {
                duration,
                ..SimConfig::default()
            },
            DtmConfig::with_threshold(threshold),
        );
        let results: Vec<_> = policies
            .iter()
            .map(|&p| run_all_workloads(&exp, p).expect("run"))
            .collect();
        per_threshold.push((threshold, results));
    }

    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "policy", "duty @84.2C", "duty @100C", "Δ (pp)"
    );
    for (i, p) in policies.iter().enumerate() {
        let d0 = 100.0 * mean_duty(&per_threshold[0].1[i]);
        let d1 = 100.0 * mean_duty(&per_threshold[1].1[i]);
        println!("{:<16} {:>15.1}% {:>15.1}% {:>+9.1}", p.name(), d0, d1, d1 - d0);
    }

    println!("\nrelative throughput ordering at each threshold (vs dist. stop-go):");
    for (threshold, results) in &per_threshold {
        let base = mean_bips(&results[1]);
        let rels: Vec<String> = policies
            .iter()
            .zip(results)
            .map(|(p, r)| format!("{} {:.2}x", p.name(), mean_bips(r) / base))
            .collect();
        println!("  @{threshold} C: {}", rels.join(" | "));
    }
    println!("\npaper: +10 to +15 percentage points of duty at 100 C; ordering unchanged.");
}
