//! §5.3 sensitivity claim: raising the temperature threshold to 100 °C
//! increases duty cycles by roughly 10–15 percentage points while the
//! relative performance tradeoffs remain as presented.

use dtm_bench::{mean_bips, mean_duty};
use dtm_core::{DtmConfig, MigrationKind, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_harness::{report, run_standard, ConfigVariant, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let policies = [
        PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
        PolicySpec::baseline(),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
    ];
    let sim = SimConfig {
        duration: args.duration,
        ..SimConfig::default()
    };
    // Two points on the configuration axis: the study threshold and the
    // §5.3 sensitivity threshold.
    let variants = [("threshold=84.2", 84.2), ("threshold=100", 100.0)];
    let spec = SweepSpec::standard(args.duration)
        .policies(policies)
        .variant(ConfigVariant::new(
            variants[0].0,
            sim.clone(),
            DtmConfig::with_threshold(variants[0].1),
        ))
        .add_variant(ConfigVariant::new(
            variants[1].0,
            sim,
            DtmConfig::with_threshold(variants[1].1),
        ));
    let results = run_standard(spec, &args).expect("sweep");

    let mut table = Table::new(["policy", "duty @84.2C", "duty @100C", "Δ (pp)"])
        .with_title("§5.3: duty-cycle sensitivity to the threshold");
    for p in policies {
        let d0 = 100.0 * mean_duty(&results.policy_runs_in(variants[0].0, p));
        let d1 = 100.0 * mean_duty(&results.policy_runs_in(variants[1].0, p));
        table.row([
            p.name(),
            format!("{d0:.1}%"),
            format!("{d1:.1}%"),
            format!("{:+.1}", d1 - d0),
        ]);
    }
    table.print(args.json);

    if !args.json {
        println!("\nrelative throughput ordering at each threshold (vs dist. stop-go):");
        for (name, threshold) in variants {
            let base = mean_bips(&results.policy_runs_in(name, PolicySpec::baseline()));
            let rels: Vec<String> = policies
                .iter()
                .map(|&p| {
                    format!(
                        "{} {}",
                        p.name(),
                        report::times(mean_bips(&results.policy_runs_in(name, p)) / base)
                    )
                })
                .collect();
            println!("  @{threshold} C: {}", rels.join(" | "));
        }
        println!("\npaper: +10 to +15 percentage points of duty at 100 C; ordering unchanged.");
        eprintln!("{}", results.summary());
    }
}
