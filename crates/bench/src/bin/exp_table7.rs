//! Table 7: sensor-based migration on the four throttle policies,
//! including the speedups over no migration and over counter-based
//! migration.

use dtm_bench::{mean_bips, mean_duty};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_harness::{report, run_standard, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let combos = [
        (ThrottleKind::StopGo, Scope::Global),
        (ThrottleKind::StopGo, Scope::Distributed),
        (ThrottleKind::Dvfs, Scope::Global),
        (ThrottleKind::Dvfs, Scope::Distributed),
    ];
    // Needs every migration flavor of every combo: the full Table 2 set.
    let spec = SweepSpec::standard(args.duration).policies(PolicySpec::all());
    let results = run_standard(spec, &args).expect("sweep");
    let base_bips = mean_bips(&results.policy_runs(PolicySpec::baseline()));

    let mut table = Table::new([
        "policy",
        "BIPS",
        "duty",
        "relative",
        "vs non-migr.",
        "vs counter",
    ])
    .with_title("Table 7: sensor-based migration");
    for (throttle, scope) in combos {
        let plain = results.policy_runs(PolicySpec::new(throttle, scope, MigrationKind::None));
        let counter = results.policy_runs(PolicySpec::new(
            throttle,
            scope,
            MigrationKind::CounterBased,
        ));
        let policy = PolicySpec::new(throttle, scope, MigrationKind::SensorBased);
        let runs = results.policy_runs(policy);
        table.row([
            policy.name(),
            report::num2(mean_bips(&runs)),
            report::pct(mean_duty(&runs)),
            report::times(mean_bips(&runs) / base_bips),
            report::times(mean_bips(&runs) / mean_bips(&plain)),
            report::times(mean_bips(&runs) / mean_bips(&counter)),
        ]);
    }
    table.print(args.json);

    if !args.json {
        println!("\npaper reference (BIPS, duty, rel, vs none, vs counter):");
        println!("  Stop-go + sensor       5.43 38.64% 1.20x 1.95x 1.02x");
        println!("  Dist. stop-go + sensor 9.27 66.61% 2.05x 2.05x 1.01x");
        println!("  Global DVFS + sensor   9.63 68.37% 2.13x 1.03x 0.97x");
        println!("  Dist. DVFS + sensor   11.70 82.64% 2.59x 1.03x 1.01x");
        eprintln!("{}", results.summary());
    }
}
