//! Table 7: sensor-based migration on the four throttle policies,
//! including the speedups over no migration and over counter-based
//! migration.

use dtm_bench::{duration_arg, experiment_with_duration, mean_bips, mean_duty, run_all_workloads};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let combos = [
        (ThrottleKind::StopGo, Scope::Global),
        (ThrottleKind::StopGo, Scope::Distributed),
        (ThrottleKind::Dvfs, Scope::Global),
        (ThrottleKind::Dvfs, Scope::Distributed),
    ];

    let baseline = run_all_workloads(&exp, PolicySpec::baseline()).expect("baseline");
    let base_bips = mean_bips(&baseline);

    println!(
        "{:<46} {:>7} {:>10} {:>9} {:>13} {:>12}",
        "policy", "BIPS", "duty", "relative", "vs non-migr.", "vs counter"
    );
    for (throttle, scope) in combos {
        let plain = run_all_workloads(&exp, PolicySpec::new(throttle, scope, MigrationKind::None))
            .expect("plain");
        let counter = run_all_workloads(
            &exp,
            PolicySpec::new(throttle, scope, MigrationKind::CounterBased),
        )
        .expect("counter");
        let policy = PolicySpec::new(throttle, scope, MigrationKind::SensorBased);
        let runs = run_all_workloads(&exp, policy).expect("sensor");
        println!(
            "{:<46} {:>7.2} {:>9.2}% {:>8.2}x {:>12.2}x {:>11.2}x",
            policy.name(),
            mean_bips(&runs),
            100.0 * mean_duty(&runs),
            mean_bips(&runs) / base_bips,
            mean_bips(&runs) / mean_bips(&plain),
            mean_bips(&runs) / mean_bips(&counter),
        );
    }
    println!("\npaper reference (BIPS, duty, rel, vs none, vs counter):");
    println!("  Stop-go + sensor       5.43 38.64% 1.20x 1.95x 1.02x");
    println!("  Dist. stop-go + sensor 9.27 66.61% 2.05x 2.05x 1.01x");
    println!("  Global DVFS + sensor   9.63 68.37% 2.13x 1.03x 0.97x");
    println!("  Dist. DVFS + sensor   11.70 82.64% 2.59x 1.03x 1.01x");
}
