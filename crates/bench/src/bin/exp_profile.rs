//! Profiling driver for the instrumented engine and harness
//! (`dtm-obs`). Each repetition runs a representative policy grid twice
//! — observability disabled, then enabled on a fresh handle — and the
//! binary reports
//!
//! - the per-phase wall-time breakdown of the engine hot loop
//!   (totals from [`dtm_core::PhaseProfile`], tail latencies from the
//!   per-phase histograms),
//! - harness-side cell timings (wall, queue wait) from the sweep
//!   runner's metrics,
//! - the instrumentation overhead — min-of-reps enabled vs disabled
//!   wall time — gated at < 3% (non-zero exit on failure),
//! - a chrome://tracing (Perfetto-loadable) span dump and a
//!   Prometheus-style metrics dump under `results/profile/`, next to
//!   the run ledger's directory.
//!
//! ```text
//! exp_profile [DURATION] [--workers N] [--json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the grid to test-length traces for CI. Timing
//! passes bypass the result cache and the ledger (a cache hit would
//! measure nothing), so this binary never appends to
//! `results/ledger.jsonl`.

use dtm_core::{
    DtmConfig, MigrationKind, ObsHandle, PolicySpec, Scope, SimConfig, ThrottleKind, ENGINE_PHASES,
};
use dtm_harness::{ConfigVariant, SweepArgs, SweepResults, SweepRunner, SweepSpec, Table};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary, Workload};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The instrumentation-overhead budget (fraction of disabled wall time).
const OVERHEAD_LIMIT: f64 = 0.03;

/// Timing repetitions (each runs the grid once disabled, once enabled).
const REPS: usize = 7;

/// Where the trace/metrics artifacts land.
const PROFILE_DIR: &str = "results/profile";

fn profile_grid(smoke: bool, duration: f64) -> (TraceLibrary, SweepSpec) {
    if smoke {
        // Large enough that a timing pass is ~0.5 s of wall time:
        // scheduler jitter on sub-200 ms passes drowns a percent-level
        // overhead signal.
        let lib = TraceLibrary::new(TraceGenConfig::fast_test());
        let workloads: Vec<Workload> = standard_workloads().into_iter().take(4).collect();
        let spec = SweepSpec::new(workloads)
            .policies([
                PolicySpec::baseline(),
                PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
                PolicySpec::best(),
            ])
            .variant(ConfigVariant::new(
                "profile",
                SimConfig::fast_test(),
                DtmConfig::default(),
            ));
        (lib, spec)
    } else {
        let lib = TraceLibrary::default().with_disk_cache("target/trace-cache");
        // Two representative mixes × three throttling styles keeps a
        // timing pass short enough to repeat.
        let workloads: Vec<Workload> = standard_workloads()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| [0, 6].contains(i))
            .map(|(_, w)| w)
            .collect();
        let sim = SimConfig {
            duration,
            ..SimConfig::default()
        };
        let spec = SweepSpec::new(workloads)
            .policies([
                PolicySpec::baseline(),
                PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
                PolicySpec::best(),
            ])
            .variant(ConfigVariant::new("profile", sim, DtmConfig::default()));
        (lib, spec)
    }
}

/// One full grid execution over the shared pre-warmed trace library —
/// no cache, no ledger — returning its wall time and results.
///
/// Both passes pin `lanes = 1`: profiled sims step scalar by contract
/// (per-phase timings need attributable phases), so an unpinned
/// baseline would batch its thermal phases and the gate would measure
/// the lockstep speedup as "instrumentation overhead".
fn timed_pass(
    lib: &Arc<TraceLibrary>,
    spec: &SweepSpec,
    workers: usize,
    obs: Option<&ObsHandle>,
) -> (Duration, SweepResults) {
    let mut runner = SweepRunner::bare_shared(Arc::clone(lib))
        .with_workers(workers)
        .with_lanes(1);
    if let Some(o) = obs {
        runner = runner.with_obs(o);
    }
    let t0 = Instant::now();
    let results = runner.run(spec.clone()).expect("profile sweep");
    (t0.elapsed(), results)
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let args = SweepArgs::parse(argv);

    let (lib, spec) = profile_grid(smoke, args.duration);
    let lib = Arc::new(lib);
    // One worker by default: timing two interleaved passes is about
    // wall-clock stability, not throughput.
    let workers = args.workers.unwrap_or(1);

    // Warm-up pass generates (or disk-loads) the traces, so no timing
    // repetition pays for trace generation.
    let _ = timed_pass(&lib, &spec, workers, None);

    let n_cells = spec.cells().len();
    let mut dis_cell_floor = vec![f64::INFINITY; n_cells];
    let mut en_cell_floor = vec![f64::INFINITY; n_cells];
    let mut ratios: Vec<f64> = Vec::with_capacity(REPS);
    let mut obs = ObsHandle::disabled();
    let mut profiled: Option<SweepResults> = None;
    let lower = |floors: &mut [f64], results: &SweepResults| {
        for (slot, o) in floors.iter_mut().zip(results.outcomes()) {
            *slot = slot.min(o.wall.as_secs_f64());
        }
    };
    for rep in 0..REPS {
        // A fresh handle per repetition keeps ring/histogram state
        // comparable across reps; the last one feeds the exports. The
        // pass order alternates so slow machine drift (frequency
        // scaling, cache state) cancels out of the per-rep ratio
        // instead of biasing it one way.
        let rep_obs = ObsHandle::enabled_default();
        let (dis, en, dis_results, en_results) = if rep % 2 == 0 {
            let (dis, dis_results) = timed_pass(&lib, &spec, workers, None);
            let (en, en_results) = timed_pass(&lib, &spec, workers, Some(&rep_obs));
            (dis, en, dis_results, en_results)
        } else {
            let (en, en_results) = timed_pass(&lib, &spec, workers, Some(&rep_obs));
            let (dis, dis_results) = timed_pass(&lib, &spec, workers, None);
            (dis, en, dis_results, en_results)
        };
        lower(&mut dis_cell_floor, &dis_results);
        lower(&mut en_cell_floor, &en_results);
        ratios.push(en.as_secs_f64() / dis.as_secs_f64().max(f64::MIN_POSITIVE));
        obs = rep_obs;
        profiled = Some(en_results);
    }
    let profiled = profiled.expect("at least one repetition ran");
    ratios.sort_by(f64::total_cmp);
    // Two independent overhead estimates. Primary: per-cell wall-time
    // floors — each cell's minimum over the reps discards the
    // preemption/frequency spikes (which only ever inflate a
    // measurement) cell by cell, so one noisy moment spoils one cell of
    // one rep, not a whole pass. Secondary: the median of the per-rep
    // paired whole-pass ratios. On a shared machine either one alone
    // can still catch a noise spike; a genuine regression moves both,
    // so the gate takes the smaller.
    let dis_floor_sum: f64 = dis_cell_floor.iter().sum();
    let en_floor_sum: f64 = en_cell_floor.iter().sum();
    let floor_overhead = en_floor_sum / dis_floor_sum.max(f64::MIN_POSITIVE) - 1.0;
    let median_overhead = ratios[ratios.len() / 2] - 1.0;
    let overhead = floor_overhead.min(median_overhead);

    // Per-phase breakdown: totals from the RunResult profiles, tail
    // latencies from the per-phase histograms.
    let mut totals = vec![0u64; ENGINE_PHASES.len()];
    let mut steps = 0u64;
    for o in profiled.outcomes() {
        let p = o.result.phases.as_ref().expect("profiled run has phases");
        steps += p.steps;
        for ph in &p.phases {
            let i = ENGINE_PHASES
                .iter()
                .position(|n| *n == ph.name)
                .expect("engine phase name");
            totals[i] += ph.ns;
        }
    }
    let grand: u64 = totals.iter().sum();
    let mut table = Table::new([
        "phase", "total ms", "share", "ns/step", "p50 ns", "p95 ns", "p99 ns",
    ])
    .with_title("engine hot-loop phase breakdown");
    for (i, name) in ENGINE_PHASES.iter().enumerate() {
        let h = obs.histogram(&format!("dtm_phase_{name}_ns"));
        table.row([
            name.to_string(),
            format!("{:.2}", totals[i] as f64 / 1e6),
            format!("{:.1}%", 100.0 * totals[i] as f64 / grand.max(1) as f64),
            format!("{:.0}", totals[i] as f64 / steps.max(1) as f64),
            format!("{}", h.p50()),
            format!("{}", h.p95()),
            format!("{}", h.p99()),
        ]);
    }
    table.print(args.json);

    let cell_wall = obs.histogram("dtm_cell_wall_ns");
    let cell_queue = obs.histogram("dtm_cell_queue_ns");

    // Artifacts: the Perfetto-loadable span trace and the Prometheus
    // text dump, next to the ledger's results/ directory.
    let dir = std::path::Path::new(PROFILE_DIR);
    std::fs::create_dir_all(dir).expect("create results/profile");
    let trace_path = dir.join("trace.json");
    let prom_path = dir.join("metrics.prom");
    std::fs::write(&trace_path, obs.chrome_trace()).expect("write chrome trace");
    std::fs::write(&prom_path, obs.prometheus()).expect("write prometheus dump");

    if !args.json {
        println!(
            "\ncells/pass: {} on {} worker(s); median cell wall {:.1} ms, queue wait {:.1} ms",
            profiled.outcomes().len(),
            workers,
            cell_wall.p50() as f64 / 1e6,
            cell_queue.p50() as f64 / 1e6,
        );
        println!("spans recorded: {}", obs.spans_recorded());
        println!("wrote {} and {}", trace_path.display(), prom_path.display());
    }
    println!(
        "instrumentation overhead: {:+.2}% over {} reps \
         (per-cell floors {:+.2}%: disabled {:.3} s vs enabled {:.3} s; \
         median paired pass ratio {:+.2}%)",
        100.0 * overhead,
        REPS,
        100.0 * floor_overhead,
        dis_floor_sum,
        en_floor_sum,
        100.0 * median_overhead,
    );
    if overhead > OVERHEAD_LIMIT {
        eprintln!(
            "error: instrumentation overhead {:.2}% exceeds the {:.0}% budget",
            100.0 * overhead,
            100.0 * OVERHEAD_LIMIT
        );
        std::process::exit(1);
    }
}
