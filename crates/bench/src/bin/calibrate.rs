//! Calibration probe: runs the four non-migration policies on a subset
//! of workloads and prints duty cycles, BIPS, and thermal stats so the
//! power/thermal constants can be tuned toward the paper's operating
//! point (Table 5 shape).

use dtm_core::{DtmConfig, Experiment, PolicySpec, SimConfig};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let duration: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let n_workloads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let sim = SimConfig {
        duration,
        ..SimConfig::default()
    };
    let exp = Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()),
        sim,
        DtmConfig::default(),
    );
    let workloads: Vec<_> = standard_workloads().into_iter().take(n_workloads).collect();

    println!(
        "{:<44} {:>7} {:>7} {:>8} {:>7} {:>9}",
        "run", "BIPS", "duty%", "maxT", "stalls", "emerg_ms"
    );
    for policy in PolicySpec::all().into_iter().take(4) {
        let mut bips = Vec::new();
        let mut duty = Vec::new();
        for w in &workloads {
            let r = exp.run(w, policy).expect("run");
            println!(
                "{:<44} {:>7.2} {:>7.1} {:>8.1} {:>7} {:>9.2}",
                format!("{} / {}", policy.name(), w.display_name()),
                r.bips(),
                100.0 * r.duty_cycle,
                r.max_temp,
                r.stalls,
                1e3 * r.emergency_time,
            );
            bips.push(r.bips());
            duty.push(r.duty_cycle);
        }
        println!(
            "  => {:<40} mean BIPS {:.2}, mean duty {:.1}%\n",
            policy.name(),
            dtm_core::mean(&bips),
            100.0 * dtm_core::mean(&duty)
        );
    }
}
