//! Extension experiment (§2.4's argument): "The more cores on the chip,
//! the more potential performance is lost due to the single hotspot" —
//! the global-vs-distributed gap should widen with core count.

use dtm_bench::duration_arg;
use dtm_core::{
    DtmConfig, MigrationKind, PolicySpec, Scope, SimConfig, ThermalTimingSim, ThrottleKind,
};
use dtm_workloads::{benchmark, TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let lib = TraceLibrary::new(TraceGenConfig::default());
    // One hot integer thread plus cooler companions, replicated to the
    // core count: the paper's single-hotspot asymmetry scenario.
    let names = [
        "gzip", "ammp", "swim", "equake", "art", "mgrid", "applu", "lucas",
    ];

    println!(
        "{:>6} {:>14} {:>14} {:>18}",
        "cores", "global DVFS", "dist DVFS", "dist/global gain"
    );
    for cores in [2usize, 4, 8] {
        let traces: Vec<_> = (0..cores)
            .map(|i| lib.trace(&benchmark(names[i % names.len()])))
            .collect();
        let mut results = Vec::new();
        for scope in [Scope::Global, Scope::Distributed] {
            let cfg = SimConfig {
                cores,
                duration,
                ..SimConfig::default()
            };
            let policy = PolicySpec::new(ThrottleKind::Dvfs, scope, MigrationKind::None);
            let mut sim = ThermalTimingSim::new(cfg, DtmConfig::default(), policy, traces.clone())
                .expect("construct");
            results.push(sim.run().expect("run"));
        }
        println!(
            "{:>6} {:>9.2} BIPS {:>9.2} BIPS {:>17.2}x",
            cores,
            results[0].bips(),
            results[1].bips(),
            results[1].bips() / results[0].bips()
        );
    }
    println!("\n(the distributed advantage should grow with the core count)");
}
