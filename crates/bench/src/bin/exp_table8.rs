//! Table 8: the full taxonomy grid — relative instruction throughput of
//! all 12 policy combinations against the distributed stop-go baseline.

use dtm_bench::mean_bips;
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_dist::run_with_args;
use dtm_harness::{report, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let spec = SweepSpec::standard(args.duration).policies(PolicySpec::all());
    // `--dist host:port,...` shards the grid across remote dtm-serve
    // workers; without it this is the classic local sweep.
    let results = run_with_args(spec, &args).expect("sweep");
    let base = mean_bips(&results.policy_runs(PolicySpec::baseline()));

    let mut table = Table::new([
        "",
        "No-mig stop-go",
        "No-mig DVFS",
        "Counter stop-go",
        "Counter DVFS",
        "Sensor stop-go",
        "Sensor DVFS",
    ])
    .with_title("Table 8: relative throughput of all 12 policies");
    for scope in [Scope::Global, Scope::Distributed] {
        let label = match scope {
            Scope::Global => "Global",
            Scope::Distributed => "Distributed",
        };
        let mut row = vec![label.to_string()];
        for migration in [
            MigrationKind::None,
            MigrationKind::CounterBased,
            MigrationKind::SensorBased,
        ] {
            for throttle in [ThrottleKind::StopGo, ThrottleKind::Dvfs] {
                let p = PolicySpec::new(throttle, scope, migration);
                row.push(if p == PolicySpec::baseline() {
                    "baseline".to_string()
                } else {
                    report::times(mean_bips(&results.policy_runs(p)) / base)
                });
            }
        }
        table.row(row);
    }
    table.print(args.json);

    if !args.json {
        println!("\npaper (Table 8):");
        println!("  Global        0.62x   2.1x     1.2x   2.2x     1.2x   2.1x");
        println!("  Distributed   base    2.5x     2.0x   2.6x     2.1x   2.6x");
        eprintln!("{}", results.summary());
    }
}
