//! Table 8: the full taxonomy grid — relative instruction throughput of
//! all 12 policy combinations against the distributed stop-go baseline.

use dtm_bench::{duration_arg, experiment_with_duration, mean_bips, run_all_workloads};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let baseline = run_all_workloads(&exp, PolicySpec::baseline()).expect("baseline");
    let base = mean_bips(&baseline);

    let migrations = [
        (MigrationKind::None, "No migration"),
        (MigrationKind::CounterBased, "Counter-based migration"),
        (MigrationKind::SensorBased, "Sensor-based migration"),
    ];

    println!(
        "{:<13} {:>23} {:>27} {:>26}",
        "", "No migration", "Counter-based migration", "Sensor-based migration"
    );
    println!(
        "{:<13} {:>11} {:>11} {:>13} {:>13} {:>13} {:>12}",
        "", "Stop-go", "DVFS", "Stop-go", "DVFS", "Stop-go", "DVFS"
    );
    for scope in [Scope::Global, Scope::Distributed] {
        let mut cells = Vec::new();
        for (migration, _) in migrations {
            for throttle in [ThrottleKind::StopGo, ThrottleKind::Dvfs] {
                let p = PolicySpec::new(throttle, scope, migration);
                let rel = if p == PolicySpec::baseline() {
                    "baseline".to_string()
                } else {
                    let runs = run_all_workloads(&exp, p).expect("run");
                    format!("{:.2}x", mean_bips(&runs) / base)
                };
                cells.push(rel);
            }
        }
        let label = match scope {
            Scope::Global => "Global",
            Scope::Distributed => "Distributed",
        };
        println!(
            "{:<13} {:>11} {:>11} {:>13} {:>13} {:>13} {:>12}",
            label, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    println!("\npaper (Table 8):");
    println!("  Global        0.62x   2.1x     1.2x   2.2x     1.2x   2.1x");
    println!("  Distributed   base    2.5x     2.0x   2.6x     2.1x   2.6x");
}
