//! Solver micro-benchmark: exact matrix-exponential propagator vs the
//! backward-Euler reference, on the study's 4-core floorplan (lumped
//! block model) and on the grid model.
//!
//! Reports ns/step for each backend, the one-time propagator build
//! cost, and the speedup, then writes the numbers to
//! `results/BENCH_solver.json` so CI can archive the comparison.
//!
//! Usage: `exp_solver_bench [--smoke]` — `--smoke` shrinks rep counts
//! for CI.

use std::fmt::Write as _;
use std::time::Instant;

use dtm_floorplan::Floorplan;
use dtm_thermal::{
    GridConfig, GridThermalModel, GridTransient, PackageConfig, SolverBackend, ThermalModel,
    TransientSolver,
};

/// Engine power-sample interval (s): one sample per 100k cycles at 3.6 GHz.
const DT: f64 = 100_000.0 / 3.6e9;

struct Timing {
    euler_ns: f64,
    prop_ns: f64,
    build_us: f64,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.euler_ns / self.prop_ns
    }
}

/// Median of per-rep mean ns/step over `reps` timed loops of `steps`
/// calls to `step`.
fn time_loop<F: FnMut()>(reps: usize, steps: usize, mut step: F) -> f64 {
    let mut per_rep: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..steps {
                step();
            }
            t0.elapsed().as_nanos() as f64 / steps as f64
        })
        .collect();
    per_rep.sort_by(|a, b| a.total_cmp(b));
    per_rep[reps / 2]
}

fn bench_lumped(reps: usize, steps: usize) -> Timing {
    let fp = Floorplan::ppc_cmp(4);
    let model = ThermalModel::new(&fp, &PackageConfig::default()).expect("model");
    let power = vec![0.6; fp.len()];

    let mut euler =
        TransientSolver::new(model.clone(), 7e-6).with_backend(SolverBackend::BackwardEuler);
    euler.init_steady(&power).expect("steady");
    euler.prewarm(DT).expect("warm"); // factor the LU outside the loop
    let euler_ns = time_loop(reps, steps, || euler.step(&power, DT).expect("step"));

    let mut prop = TransientSolver::new(model, 7e-6);
    prop.init_steady(&power).expect("steady");
    let t0 = Instant::now();
    prop.prewarm(DT).expect("warm"); // build E/F outside the loop
    let build_us = t0.elapsed().as_nanos() as f64 / 1e3;
    assert!(
        !prop.in_fallback(),
        "propagator must build on the study chip"
    );
    let prop_ns = time_loop(reps, steps, || prop.step(&power, DT).expect("step"));

    Timing {
        euler_ns,
        prop_ns,
        build_us,
    }
}

fn bench_grid(reps: usize, steps: usize, cfg: GridConfig) -> Timing {
    let fp = Floorplan::ppc_cmp(4);
    let model = GridThermalModel::new(&fp, &PackageConfig::default(), cfg).expect("model");
    let power = vec![0.6; fp.len()];

    let mut euler =
        GridTransient::new(model.clone(), 7e-6).with_backend(SolverBackend::BackwardEuler);
    euler.init_steady(&power).expect("steady");
    euler.prewarm(DT).expect("warm");
    let euler_ns = time_loop(reps, steps, || euler.step(&power, DT).expect("step"));

    let mut prop = GridTransient::new(model, 7e-6);
    prop.init_steady(&power).expect("steady");
    let t0 = Instant::now();
    prop.prewarm(DT).expect("warm");
    let build_us = t0.elapsed().as_nanos() as f64 / 1e3;
    assert!(
        !prop.in_fallback(),
        "propagator must build on the grid model"
    );
    let prop_ns = time_loop(reps, steps, || prop.step(&power, DT).expect("step"));

    Timing {
        euler_ns,
        prop_ns,
        build_us,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, steps) = if smoke { (5, 2_000) } else { (11, 20_000) };
    let grid_cfg = GridConfig { cols: 16, rows: 24 };

    let lumped = bench_lumped(reps, steps);
    let grid = bench_grid(reps, steps, grid_cfg);

    println!("== transient-solver step cost (median of {reps} reps x {steps} steps) ==\n");
    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>11}",
        "solver", "euler ns", "propagator", "speedup", "build us"
    );
    for (name, t) in [("lumped (4-core)", &lumped), ("grid 16x24", &grid)] {
        println!(
            "{:<22} {:>12.0} {:>12.0} {:>8.2}x {:>11.0}",
            name,
            t.euler_ns,
            t.prop_ns,
            t.speedup(),
            t.build_us
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"dt_s\": {DT:e},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"steps_per_rep\": {steps},");
    for (key, t, last) in [("lumped", &lumped, false), ("grid_16x24", &grid, true)] {
        let _ = writeln!(json, "  \"{key}\": {{");
        let _ = writeln!(
            json,
            "    \"backward_euler_ns_per_step\": {:.1},",
            t.euler_ns
        );
        let _ = writeln!(json, "    \"propagator_ns_per_step\": {:.1},", t.prop_ns);
        let _ = writeln!(json, "    \"propagator_build_us\": {:.1},", t.build_us);
        let _ = writeln!(json, "    \"speedup\": {:.3}", t.speedup());
        let _ = writeln!(json, "  }}{}", if last { "" } else { "," });
    }
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_solver.json", &json).expect("write json");
    println!("\nwrote results/BENCH_solver.json");
}
