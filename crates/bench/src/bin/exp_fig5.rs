//! Figure 5: temperatures and DVFS control across several migration
//! intervals for the gzip-twolf-ammp-lucas workload.
//!
//! Reproduces both panels for one core: (a) the two register-file hotspot
//! temperatures, and (b) the PI controller's frequency scale factor, over
//! a window containing several migrations, annotated with the thread
//! resident on the core.

use dtm_bench::{duration_arg, experiment_with_duration};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_workloads::standard_workloads;

fn main() {
    let exp = experiment_with_duration(duration_arg().max(0.1));
    let workload = &standard_workloads()[6]; // gzip-twolf-ammp-lucas
    let policy = PolicySpec::new(
        ThrottleKind::Dvfs,
        Scope::Distributed,
        MigrationKind::CounterBased,
    );
    // Record every other control step (~56 µs resolution).
    let (result, telemetry) = exp
        .run_with_telemetry(workload, policy, 2)
        .expect("simulation");
    println!(
        "run: {} on {} — BIPS {:.2}, duty {:.1}%, {} migrations\n",
        policy.name(),
        workload.display_name(),
        result.bips(),
        100.0 * result.duty_cycle,
        result.migrations
    );

    // Find the first window on core 0 that contains at least three
    // distinct resident threads (i.e. several migrations). The paper's
    // figure spans ~8 ms; with migrations rate-limited to one per 10 ms
    // (§6) we use a 45 ms window to capture several tenancies.
    let records = telemetry.records();
    let core = 0usize;
    let window_len = (45.0e-3 / (records[1].time - records[0].time)) as usize;
    let mut start = 0;
    for s in (0..records.len().saturating_sub(window_len)).step_by(window_len / 4) {
        let mut seen = std::collections::BTreeSet::new();
        for r in &records[s..s + window_len] {
            seen.insert(r.assignment[core]);
        }
        if seen.len() >= 3 {
            start = s;
            break;
        }
    }
    let window = &records[start..(start + window_len).min(records.len())];
    let t0 = window[0].time;

    println!("time is relative to window start at t = {:.1} ms", t0 * 1e3);
    println!(
        "{:>9} {:>10} {:>8} {:>8} {:>7}",
        "t (ms)", "thread", "intRF C", "fpRF C", "scale"
    );
    let names = &workload.benchmarks;
    let mut last_thread = usize::MAX;
    for r in window.iter().step_by(20) {
        let thread = r.assignment[core];
        let marker = if thread != last_thread {
            format!("<- {} arrives", names[thread])
        } else {
            String::new()
        };
        last_thread = thread;
        println!(
            "{:>9.2} {:>10} {:>8.2} {:>8.2} {:>7.2} {}",
            (r.time - t0) * 1e3,
            names[thread],
            r.sensor_temps[core][0],
            r.sensor_temps[core][1],
            r.scales[core],
            marker
        );
    }
}
