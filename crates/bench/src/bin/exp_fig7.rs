//! Figure 7: per-workload gains/losses of either migration policy in
//! conjunction with distributed DVFS (the best-performing practical
//! policy of the original four).

use dtm_bench::{duration_arg, experiment_with_duration, figure_label, run_all_workloads};
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_workloads::standard_workloads;

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let dvfs = |m| PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, m);
    let plain = run_all_workloads(&exp, dvfs(MigrationKind::None)).expect("plain");
    let counter = run_all_workloads(&exp, dvfs(MigrationKind::CounterBased)).expect("counter");
    let sensor = run_all_workloads(&exp, dvfs(MigrationKind::SensorBased)).expect("sensor");

    println!(
        "{:<44} {:>14} {:>14}",
        "workload", "counter Δ%", "sensor Δ%"
    );
    let mut counter_deltas = Vec::new();
    let mut sensor_deltas = Vec::new();
    for (i, w) in standard_workloads().iter().enumerate() {
        let base = plain[i].bips();
        let dc = 100.0 * (counter[i].bips() / base - 1.0);
        let ds = 100.0 * (sensor[i].bips() / base - 1.0);
        counter_deltas.push(dc);
        sensor_deltas.push(ds);
        println!("{:<44} {:>13.2}% {:>13.2}%", figure_label(w), dc, ds);
    }
    println!(
        "\nmean: counter {:+.2}%, sensor {:+.2}%",
        dtm_core::mean(&counter_deltas),
        dtm_core::mean(&sensor_deltas)
    );
    println!("paper: deltas range from about -2% to +7% per workload; both policies");
    println!("help on average (sensor slightly more) but not on every workload.");
}
