//! Figure 7: per-workload gains/losses of either migration policy in
//! conjunction with distributed DVFS (the best-performing practical
//! policy of the original four).

use dtm_bench::figure_label;
use dtm_core::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use dtm_harness::{report, run_standard, SweepArgs, SweepSpec, Table};

fn main() {
    let args = SweepArgs::from_env();
    let dvfs = |m| PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, m);
    let spec = SweepSpec::standard(args.duration).policies([
        dvfs(MigrationKind::None),
        dvfs(MigrationKind::CounterBased),
        dvfs(MigrationKind::SensorBased),
    ]);
    let results = run_standard(spec, &args).expect("sweep");
    let plain = results.policy_runs(dvfs(MigrationKind::None));
    let counter = results.policy_runs(dvfs(MigrationKind::CounterBased));
    let sensor = results.policy_runs(dvfs(MigrationKind::SensorBased));

    let mut table = Table::new(["workload", "counter Δ%", "sensor Δ%"])
        .with_title("Figure 7: migration deltas on dist. DVFS");
    let mut counter_deltas = Vec::new();
    let mut sensor_deltas = Vec::new();
    for (i, w) in results.spec().workload_axis().iter().enumerate() {
        let base = plain[i].bips();
        let dc = 100.0 * (counter[i].bips() / base - 1.0);
        let ds = 100.0 * (sensor[i].bips() / base - 1.0);
        counter_deltas.push(dc);
        sensor_deltas.push(ds);
        table.row([
            figure_label(w),
            report::signed_pct(dc),
            report::signed_pct(ds),
        ]);
    }
    table.print(args.json);

    if !args.json {
        println!(
            "\nmean: counter {:+.2}%, sensor {:+.2}%",
            dtm_core::mean(&counter_deltas),
            dtm_core::mean(&sensor_deltas)
        );
        println!("paper: deltas range from about -2% to +7% per workload; both policies");
        println!("help on average (sensor slightly more) but not on every workload.");
        eprintln!("{}", results.summary());
    }
}
