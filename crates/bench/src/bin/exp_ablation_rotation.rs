//! Ablation: what does the paper's *informed* migration matching
//! (Figure 4: imbalance-sorted cores × least-intense threads) add over a
//! blind round-robin rotation ("heat-and-run"-style activity migration,
//! the related work the paper builds on)?

use dtm_bench::{duration_arg, experiment_with_duration, mean_bips, mean_duty};
use dtm_core::{MigrationKind, PolicySpec, RotationMigration, Scope, ThrottleKind};
use dtm_workloads::standard_workloads;

fn main() {
    let exp = experiment_with_duration(duration_arg());
    let workloads = standard_workloads();

    let mut rows: Vec<(String, Vec<dtm_core::RunResult>)> = Vec::new();

    for (name, migration) in [
        ("no migration", MigrationKind::None),
        ("counter-based (Fig. 4)", MigrationKind::CounterBased),
        ("sensor-based (Fig. 6)", MigrationKind::SensorBased),
    ] {
        let policy = PolicySpec::new(ThrottleKind::StopGo, Scope::Distributed, migration);
        let runs: Vec<_> = workloads
            .iter()
            .map(|w| exp.run(w, policy).expect("run"))
            .collect();
        rows.push((name.to_string(), runs));
    }

    // Blind rotation: same stop-go substrate, custom policy.
    let rotation_runs: Vec<_> = workloads
        .iter()
        .map(|w| {
            let mut sim = exp
                .build(
                    w,
                    PolicySpec::new(
                        ThrottleKind::StopGo,
                        Scope::Distributed,
                        MigrationKind::CounterBased,
                    ),
                )
                .expect("build");
            sim.set_migration_policy(Box::new(RotationMigration::new()));
            sim.run().expect("run")
        })
        .collect();
    rows.insert(1, ("blind rotation".to_string(), rotation_runs));

    let base = mean_bips(&rows[0].1);
    println!(
        "{:<26} {:>7} {:>9} {:>10} {:>12}",
        "dist. stop-go +", "BIPS", "duty", "vs none", "migrations"
    );
    for (name, runs) in &rows {
        let migs: u64 = runs.iter().map(|r| r.migrations).sum();
        println!(
            "{:<26} {:>7.2} {:>8.1}% {:>9.2}x {:>12}",
            name,
            mean_bips(runs),
            100.0 * mean_duty(runs),
            mean_bips(runs) / base,
            migs
        );
    }
    println!("\n(informed matching should beat blind rotation: rotation pays the same");
    println!(" penalties but sometimes parks a hot thread on an already-hot core)");
}
