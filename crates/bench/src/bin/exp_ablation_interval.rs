//! Ablation: sensitivity of the migration benefit to the OS decision
//! interval. The paper fixes migrations to at most one per 10 ms
//! (the Linux timer-interrupt scale); this sweep shows the tradeoff the
//! choice sits on: too fast thrashes (penalties, cold structures), too
//! slow misses balancing opportunities.

use dtm_bench::{duration_arg, mean_bips, mean_duty, run_all_workloads};
use dtm_core::{DtmConfig, Experiment, MigrationKind, PolicySpec, Scope, SimConfig, ThrottleKind};
use dtm_workloads::{TraceGenConfig, TraceLibrary};

fn main() {
    let duration = duration_arg();
    let policy = PolicySpec::new(
        ThrottleKind::StopGo,
        Scope::Distributed,
        MigrationKind::CounterBased,
    );

    println!(
        "{:>14} {:>8} {:>9} {:>12}",
        "interval (ms)", "BIPS", "duty", "migrations"
    );
    for interval_ms in [2.0, 5.0, 10.0, 20.0, 50.0] {
        let dtm = DtmConfig {
            migration_interval: interval_ms * 1e-3,
            ..DtmConfig::default()
        };
        let exp = Experiment::new(
            TraceLibrary::new(TraceGenConfig::default()),
            SimConfig {
                duration,
                ..SimConfig::default()
            },
            dtm,
        );
        let runs = run_all_workloads(&exp, policy).expect("run");
        let migs: u64 = runs.iter().map(|r| r.migrations).sum();
        println!(
            "{:>14} {:>8.2} {:>8.1}% {:>12}",
            interval_ms,
            mean_bips(&runs),
            100.0 * mean_duty(&runs),
            migs
        );
    }
    println!("\n(the paper's 10 ms choice should sit near the top of this curve)");
}
