//! Shared experiment-driver utilities for the table/figure reproductions.

use dtm_core::{Experiment, PolicySpec, RunResult, SimError};
use dtm_workloads::{standard_workloads, Workload};

/// Runs every standard workload under one policy, returning results in
/// Table 4 order.
///
/// # Errors
///
/// Propagates the first simulation failure.
pub fn run_all_workloads(exp: &Experiment, policy: PolicySpec) -> Result<Vec<RunResult>, SimError> {
    standard_workloads()
        .iter()
        .map(|w| exp.run(w, policy))
        .collect()
}

/// Formats a workload the way the paper's figures label them:
/// `gzip-twolf-ammp-lucas (IIFF)`.
pub fn figure_label(w: &Workload) -> String {
    format!("{} ({})", w.display_name(), w.mix_label())
}

/// Mean BIPS over a set of runs.
pub fn mean_bips(results: &[RunResult]) -> f64 {
    dtm_core::mean(&results.iter().map(|r| r.bips()).collect::<Vec<_>>())
}

/// Mean duty cycle over a set of runs.
pub fn mean_duty(results: &[RunResult]) -> f64 {
    dtm_core::mean(&results.iter().map(|r| r.duty_cycle).collect::<Vec<_>>())
}

/// Parses the run duration (seconds of silicon time) from the first CLI
/// argument, defaulting to the study's 0.5 s.
pub fn duration_arg() -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// Builds the standard experiment context with a chosen run duration.
pub fn experiment_with_duration(duration: f64) -> Experiment {
    use dtm_core::{DtmConfig, SimConfig};
    use dtm_workloads::{TraceGenConfig, TraceLibrary};
    let sim = SimConfig {
        duration,
        ..SimConfig::default()
    };
    Experiment::new(
        TraceLibrary::new(TraceGenConfig::default()).with_disk_cache("target/trace-cache"),
        sim,
        DtmConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_label_format() {
        let w = &standard_workloads()[6];
        assert_eq!(figure_label(w), "gzip-twolf-ammp-lucas (IIFF)");
    }
}
