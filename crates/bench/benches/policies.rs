//! Criterion benchmarks of full policy simulations: one millisecond of
//! silicon time for representative policies, measuring simulator
//! throughput (the cost of regenerating the paper's tables).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dtm_core::{DtmConfig, PolicySpec, SimConfig, ThermalTimingSim};
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};
use std::hint::black_box;
use std::sync::OnceLock;

fn traces() -> Vec<std::sync::Arc<dtm_power::PowerTrace>> {
    static LIB: OnceLock<Vec<std::sync::Arc<dtm_power::PowerTrace>>> = OnceLock::new();
    LIB.get_or_init(|| {
        let lib = TraceLibrary::new(TraceGenConfig::fast_test());
        standard_workloads()[6]
            .resolve()
            .iter()
            .map(|b| lib.trace(b))
            .collect()
    })
    .clone()
}

fn policy_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_1ms");
    for policy in [PolicySpec::baseline(), PolicySpec::best()] {
        group.bench_function(policy.name(), |b| {
            b.iter_batched(
                || {
                    ThermalTimingSim::new(
                        SimConfig {
                            duration: 1e-3,
                            ..SimConfig::default()
                        },
                        DtmConfig::default(),
                        policy,
                        traces(),
                    )
                    .expect("construct")
                },
                |mut sim| black_box(sim.run().expect("run")),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = policy_sim
}
criterion_main!(benches);
