//! Criterion micro-benchmarks for the simulation substrates: the thermal
//! solver, the PI controller, the branch predictor, the cache model, and
//! the out-of-order core model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dtm_control::ClippedPi;
use dtm_floorplan::Floorplan;
use dtm_microarch::{CoreConfig, CoreSim, SetAssocCache, StreamProfile};
use dtm_thermal::linalg::{affine_matvec, matmul_strided, LANE_BLOCK};
use dtm_thermal::{PackageConfig, SolverBackend, ThermalModel, TransientSolver};
use std::hint::black_box;

fn thermal(c: &mut Criterion) {
    let fp = Floorplan::ppc_cmp(4);
    let model = ThermalModel::new(&fp, &PackageConfig::default()).unwrap();
    let power = vec![0.5; model.n_blocks()];

    c.bench_function("thermal/steady_state_4core", |b| {
        b.iter(|| model.steady_state(black_box(&power)).unwrap())
    });

    // The default exact-propagator backend: one matvec per sample.
    c.bench_function("thermal/transient_step_27us", |b| {
        let mut sim = TransientSolver::new(model.clone(), 7e-6);
        sim.init_steady(&power).unwrap();
        sim.prewarm(27.78e-6).unwrap();
        b.iter(|| sim.step(black_box(&power), 27.78e-6).unwrap())
    });

    // The backward-Euler reference: ~4 LU solves per sample.
    c.bench_function("thermal/transient_step_27us_euler", |b| {
        let mut sim =
            TransientSolver::new(model.clone(), 7e-6).with_backend(SolverBackend::BackwardEuler);
        sim.init_steady(&power).unwrap();
        sim.prewarm(27.78e-6).unwrap();
        b.iter(|| sim.step(black_box(&power), 27.78e-6).unwrap())
    });
}

/// The batched-lockstep kernel pair: a propagator-shaped affine matvec
/// repeated once per lane vs one cache-blocked [`matmul_strided`] call
/// over a full lane block.
fn batched_kernel(c: &mut Criterion) {
    // Propagator shape on the study chip: n rows, n + n_inputs columns.
    let (rows, cols) = (63, 116);
    let fill = |seed: u64, len: usize| -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    };
    let a = fill(1, rows * cols);
    let bias = fill(2, rows);
    let x = fill(3, LANE_BLOCK * cols);
    let mut y = vec![0.0; LANE_BLOCK * rows];

    c.bench_function("linalg/matvec_x8", |b| {
        b.iter(|| {
            for l in 0..LANE_BLOCK {
                affine_matvec(
                    cols,
                    black_box(&a),
                    &bias,
                    black_box(&x[l * cols..(l + 1) * cols]),
                    &mut y[l * rows..(l + 1) * rows],
                );
            }
        })
    });

    c.bench_function("linalg/matmul_strided_8lanes", |b| {
        b.iter(|| {
            matmul_strided(
                rows,
                cols,
                black_box(&a),
                &bias,
                black_box(&x),
                cols,
                &mut y,
                rows,
                LANE_BLOCK,
            )
        })
    });
}

fn control(c: &mut Criterion) {
    c.bench_function("control/pi_update", |b| {
        let mut pi = ClippedPi::paper_thermal_dvfs();
        let mut e = 0.0;
        b.iter(|| {
            e = (e + 0.37) % 8.0 - 4.0;
            black_box(pi.update(e))
        })
    });
}

fn microarch(c: &mut Criterion) {
    c.bench_function("microarch/run_sample_x5", |b| {
        b.iter_batched(
            || {
                let mut core = CoreSim::new(CoreConfig::default(), StreamProfile::generic_int(), 1);
                core.run_cycles(100_000);
                core
            },
            |mut core| black_box(core.run_sample(5)),
            BatchSize::LargeInput,
        )
    });

    c.bench_function("microarch/cache_access", |b| {
        let geo = CoreConfig::default().l1d;
        let mut cache = SetAssocCache::new(geo, 1.0);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x4df3).wrapping_mul(7) % (1 << 20);
            black_box(cache.access(addr))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = thermal, batched_kernel, control, microarch
}
criterion_main!(benches);
