//! Multicore dynamic thermal management: classification and exploration.
//!
//! This crate implements the contribution of Donald & Martonosi's ISCA'06
//! study: a taxonomy of CMP thermal-management schemes along three
//! orthogonal axes — throttle mechanism (stop-go vs control-theoretic
//! DVFS), scope (global vs distributed), and OS-level migration (none,
//! counter-based, sensor-based) — and a power-trace-driven
//! thermal/timing simulator that evaluates all twelve combinations.
//!
//! # Architecture (Figures 1 and 2 of the paper)
//!
//! The toolflow is a two-loop control system over a layered simulation:
//!
//! ```text
//!   synthetic streams ─► dtm-microarch (Turandot role)
//!                      ─► dtm-power    (PowerTimer role)   per-thread
//!                      ─► PowerTrace   (28 µs samples)     power traces
//!                                           │
//!   ┌───────────── ThermalTimingSim ────────▼────────────────┐
//!   │  inner loop (hardware, 28 µs): clipped PI DVFS per core│
//!   │     sensors at both register files ─► PI ─► freq scale │
//!   │  outer loop (OS, 1–10 ms): migration policy            │
//!   │     counter proxies / thread×core thermal-trend table  │
//!   │  thermal substrate: dtm-thermal RC network + leakage   │
//!   └─────────────────────────────────────────────────────────┘
//! ```
//!
//! The OS flow for sensor-based migration (Figure 6): on each kernel
//! trap, record sensor gradients and DVFS scale factors into the
//! thread-core thermal table; if the table cannot yet estimate every
//! thread-core combination, set migration targets to profile more;
//! otherwise estimate all threads' hotspot intensities and apply the
//! matching algorithm of Figure 4.
//!
//! # Examples
//!
//! Compare the paper's baseline with its best policy on one workload:
//!
//! ```no_run
//! use dtm_core::{Experiment, PolicySpec};
//! use dtm_workloads::standard_workloads;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let exp = Experiment::paper_defaults();
//! let workload = &standard_workloads()[6]; // gzip-twolf-ammp-lucas
//! let base = exp.run(workload, PolicySpec::baseline())?;
//! let best = exp.run(workload, PolicySpec::best())?;
//! assert!(best.bips() > base.bips());
//! assert!(best.emergency_free());
//! # Ok(())
//! # }
//! ```

mod batch;
mod config;
mod engine;
mod metrics;
mod migration;
mod policy;
mod runner;
mod telemetry;

pub use batch::LockstepBatch;
pub use config::{DtmConfig, LeakageConfig, SimConfig, PAPER_PI_KI, PAPER_PI_KP};
pub use dtm_control::GainScheduleConfig;
pub use dtm_faults::{
    FallbackKind, FaultConfig, FaultEvent, FaultKind, FaultScenario, FaultState, FaultTarget,
    Watchdog, WatchdogConfig,
};
pub use dtm_obs::{Counter, Gauge, Histogram, ObsHandle};
pub use dtm_thermal::SolverBackend;
pub use engine::{SimError, ThermalTimingSim, ENGINE_PHASES};
pub use metrics::{
    geometric_mean, mean, GainStats, PhaseNs, PhaseProfile, Robustness, RunResult, ThreadStats,
};
pub use migration::{
    CounterMigration, MigrationPolicy, NoMigration, OsObservation, RotationMigration,
    SensorMigration, ThreadCounters, HOTSPOT_FP, HOTSPOT_INT,
};
pub use policy::{MigrationKind, PolicySpec, Scope, ThrottleKind};
pub use runner::{
    unconstrained_single_core, unconstrained_steady_temp, Experiment, SteadyTempSummary,
};
pub use telemetry::{Telemetry, TelemetryRecord};
