//! Time-series recording for trace plots (Figure 5 reproduction).

use serde::{Deserialize, Serialize};

/// One recorded instant of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Simulation time (s).
    pub time: f64,
    /// Per-core hotspot sensor readings `[int_rf, fp_rf]` (°C).
    pub sensor_temps: Vec<[f64; 2]>,
    /// Per-core effective frequency scale factors.
    pub scales: Vec<f64>,
    /// Core → thread assignment.
    pub assignment: Vec<usize>,
    /// Per-core watchdog fallback latch (all `false` when no watchdog
    /// is installed).
    pub in_fallback: Vec<bool>,
}

/// A sampling recorder attached to a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    every: usize,
    counter: usize,
    records: Vec<TelemetryRecord>,
}

impl Telemetry {
    /// Records every `every`-th simulation step.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn every(every: usize) -> Self {
        assert!(every > 0, "sampling stride must be positive");
        Telemetry {
            every,
            counter: 0,
            records: Vec::new(),
        }
    }

    /// Offers a record; keeps it if the stride matches.
    pub fn offer(&mut self, record: impl FnOnce() -> TelemetryRecord) {
        if self.counter.is_multiple_of(self.every) {
            self.records.push(record());
        }
        self.counter += 1;
    }

    /// The recorded series.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// Consumes the recorder, returning its records.
    pub fn into_records(self) -> Vec<TelemetryRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64) -> TelemetryRecord {
        TelemetryRecord {
            time: t,
            sensor_temps: vec![[50.0, 51.0]],
            scales: vec![1.0],
            assignment: vec![0],
            in_fallback: vec![false],
        }
    }

    #[test]
    fn records_every_nth() {
        let mut t = Telemetry::every(3);
        for i in 0..10 {
            t.offer(|| rec(i as f64));
        }
        let times: Vec<f64> = t.records().iter().map(|r| r.time).collect();
        assert_eq!(times, vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn every_one_records_all() {
        let mut t = Telemetry::every(1);
        for i in 0..5 {
            t.offer(|| rec(i as f64));
        }
        assert_eq!(t.records().len(), 5);
        assert_eq!(t.into_records().len(), 5);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        Telemetry::every(0);
    }
}
