//! Run metrics: instruction throughput (BIPS) and the adjusted duty
//! cycle (§3.5 of the paper).

use serde::{Deserialize, Serialize};

/// Per-thread accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Instructions retired.
    pub instructions: f64,
    /// Work time weighted by frequency scale (s of full-speed-equivalent
    /// execution).
    pub scaled_work: f64,
    /// Number of times the thread migrated.
    pub migrations: u64,
}

/// Robustness accounting for one run (the fault-injection study's
/// metrics; all zero for fault-free runs under a disabled watchdog).
///
/// Unlike [`RunResult::emergency_time`], which counts what the
/// *sensors* report, these are measured against the **true** block
/// temperatures at the sensor sites — the distinction is the whole
/// point once sensors can lie.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Robustness {
    /// Time the true hotspot temperature spent above the thermal
    /// threshold (s).
    pub violation_time: f64,
    /// Peak true-temperature excess over the threshold (°C, ≥ 0).
    pub peak_overshoot: f64,
    /// Time the chip spent throttled while the true hotspot sat safely
    /// below the control setpoint (s) — throughput burned on faults,
    /// not on heat.
    pub false_throttle_time: f64,
    /// Time at least one core spent in watchdog fallback (s).
    pub fallback_time: f64,
    /// Fallback episodes entered.
    pub fallback_entries: u64,
    /// Fallback episodes exited (entries minus exits = episodes still
    /// latched at run end).
    pub fallback_exits: u64,
    /// Sensor readings the watchdog flagged as implausible.
    pub watchdog_flags: u64,
}

/// Observed adaptive-gain statistics for one run, aggregated across
/// the run's DVFS controllers (`None` on the fixed-gain path, so
/// fixed-gain results stay bit-identical to pre-adaptive builds).
/// Bounds are the *effective* gains (base gain × observed multiplier
/// extremes); the control-equivalence suite checks they stay inside
/// the schedule's declared clamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GainStats {
    /// Smallest effective proportional gain applied.
    pub kp_min: f64,
    /// Largest effective proportional gain applied.
    pub kp_max: f64,
    /// Smallest effective integral gain applied.
    pub ki_min: f64,
    /// Largest effective integral gain applied.
    pub ki_max: f64,
    /// Control steps on which some controller's multiplier changed.
    pub adaptations: u64,
}

/// Steady-state temperature summary of a run: the hottest sensor over
/// the second half, sampled at the engine's telemetry-compatible
/// steady stride. For a single benchmark on one unconstrained core
/// this is the Table 1 reproduction primitive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyTempSummary {
    /// Mean hottest-sensor temperature over the analysis window (°C).
    pub mean: f64,
    /// Minimum over the window (°C).
    pub min: f64,
    /// Maximum over the window (°C).
    pub max: f64,
}

impl SteadyTempSummary {
    /// Whether the benchmark holds a steady temperature (the paper's
    /// Table 1a vs 1b distinction), given an oscillation tolerance (°C).
    pub fn is_steady(&self, tolerance: f64) -> bool {
        self.max - self.min <= tolerance
    }
}

/// Accumulated wall time of one named engine phase (ns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseNs {
    /// Phase name, e.g. `thermal` or `microarch`.
    pub name: String,
    /// Total nanoseconds spent in the phase across the run.
    pub ns: u64,
}

/// Per-phase wall-time breakdown of the engine's step loop, recorded
/// only when an enabled `ObsHandle` is attached (profiling runs).
/// Totals are whole-run estimates scaled up from the engine's sampled
/// timed steps (see `TIMED_SAMPLE_STRIDE` in the engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Engine steps executed.
    pub steps: u64,
    /// Accumulated time per phase, in the engine's phase order.
    pub phases: Vec<PhaseNs>,
}

impl PhaseProfile {
    /// Total instrumented time across all phases (ns).
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.ns).sum()
    }

    /// Accumulated time of one phase by name (0 if absent).
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.ns)
    }
}

/// The result of one (workload, policy) simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Simulated duration (s).
    pub duration: f64,
    /// Number of cores.
    pub cores: usize,
    /// Total instructions retired across all threads.
    pub instructions: f64,
    /// Adjusted duty cycle: scaled work over total possible work.
    pub duty_cycle: f64,
    /// Hottest sensor reading observed (°C).
    pub max_temp: f64,
    /// Total time any sensor spent above the emergency threshold (s).
    pub emergency_time: f64,
    /// Migrations performed.
    pub migrations: u64,
    /// DVFS transitions applied.
    pub dvfs_transitions: u64,
    /// Stop-go stalls issued.
    pub stalls: u64,
    /// Total energy dissipated by the chip over the run (J), including
    /// leakage.
    pub energy: f64,
    /// Fault/watchdog robustness accounting (all zero when nothing was
    /// injected and the watchdog was off).
    pub robustness: Robustness,
    /// Steady-state summary of the hottest sensor over the second half
    /// of the run (`None` for runs too short to produce a sample).
    pub steady: Option<SteadyTempSummary>,
    /// Per-phase engine wall-time breakdown (`None` unless the run was
    /// profiled through an enabled `ObsHandle`, so fault-free results
    /// stay bit-identical to unprofiled builds).
    pub phases: Option<PhaseProfile>,
    /// Adaptive-gain statistics (`None` unless the run selected an
    /// adaptive [`gain schedule`](dtm_control::GainScheduleConfig), so
    /// fixed-gain results keep their pre-adaptive encoding).
    pub gain_stats: Option<GainStats>,
    /// Per-thread statistics.
    pub threads: Vec<ThreadStats>,
}

impl RunResult {
    /// Instruction throughput in billions of instructions per second.
    pub fn bips(&self) -> f64 {
        self.instructions / self.duration / 1e9
    }

    /// Throughput relative to a baseline run.
    pub fn relative_throughput(&self, baseline: &RunResult) -> f64 {
        self.bips() / baseline.bips()
    }

    /// Whether the run avoided all thermal emergencies.
    pub fn emergency_free(&self) -> bool {
        self.emergency_time == 0.0
    }

    /// Average chip power over the run (W).
    pub fn avg_power(&self) -> f64 {
        self.energy / self.duration
    }

    /// Energy per instruction (nJ) — an efficiency view of the policy.
    pub fn energy_per_instruction_nj(&self) -> f64 {
        if self.instructions == 0.0 {
            0.0
        } else {
            1e9 * self.energy / self.instructions
        }
    }

    /// Whether the run kept the *true* temperature below the threshold
    /// the whole time — the robustness analogue of
    /// [`RunResult::emergency_free`], immune to lying sensors.
    pub fn violation_free(&self) -> bool {
        self.robustness.violation_time == 0.0
    }
}

/// Mean of a slice of values.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(instructions: f64, duration: f64) -> RunResult {
        RunResult {
            duration,
            cores: 4,
            instructions,
            duty_cycle: 0.5,
            max_temp: 80.0,
            emergency_time: 0.0,
            migrations: 0,
            dvfs_transitions: 0,
            stalls: 0,
            energy: 5.0,
            robustness: Robustness::default(),
            steady: None,
            phases: None,
            gain_stats: None,
            threads: vec![],
        }
    }

    #[test]
    fn bips_computes() {
        let r = result(2.5e9, 0.5);
        assert!((r.bips() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn relative_throughput_ratios() {
        let a = result(10e9, 0.5);
        let b = result(4e9, 0.5);
        assert!((a.relative_throughput(&b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn emergency_free_flag() {
        let mut r = result(1e9, 0.5);
        assert!(r.emergency_free());
        r.emergency_time = 1e-3;
        assert!(!r.emergency_free());
    }

    #[test]
    fn energy_metrics() {
        let r = result(1e9, 0.5);
        assert!((r.avg_power() - 10.0).abs() < 1e-12);
        assert!((r.energy_per_instruction_nj() - 5.0).abs() < 1e-12);
        let idle = RunResult {
            instructions: 0.0,
            ..result(1.0, 0.5)
        };
        assert_eq!(idle.energy_per_instruction_nj(), 0.0);
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn phase_profile_totals_and_lookup() {
        let p = PhaseProfile {
            steps: 100,
            phases: vec![
                PhaseNs {
                    name: "microarch".into(),
                    ns: 300,
                },
                PhaseNs {
                    name: "thermal".into(),
                    ns: 700,
                },
            ],
        };
        assert_eq!(p.total_ns(), 1_000);
        assert_eq!(p.phase_ns("thermal"), 700);
        assert_eq!(p.phase_ns("absent"), 0);
    }
}
