//! Simulation and DTM configuration (Table 3's global and DVFS/migration
//! parameter blocks).

use dtm_control::GainScheduleConfig;
use dtm_microarch::CoreConfig;
use dtm_thermal::{PackageConfig, SensorSpec, SolverBackend};
use serde::{Deserialize, Serialize};

/// The paper's proportional DVFS gain (`Kp = 0.0107`).
pub const PAPER_PI_KP: f64 = 0.0107;

/// The paper's integral DVFS gain (`Ki = 248.5`).
pub const PAPER_PI_KI: f64 = 248.5;

/// Dynamic-thermal-management parameters.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtmConfig {
    /// Thermal emergency threshold (°C); no sensor may exceed this.
    pub threshold: f64,
    /// Margin below the threshold at which stop-go trips (°C).
    pub stopgo_trip_margin: f64,
    /// Stop-go stall duration (s); 30 ms in the study.
    pub stopgo_stall: f64,
    /// DVFS setpoint margin below the threshold (°C); the PI controller
    /// regulates to `threshold − margin`.
    pub dvfs_setpoint_margin: f64,
    /// Minimum DVFS frequency-scale factor (0.2 = 720 MHz).
    pub dvfs_min_scale: f64,
    /// Minimum applied DVFS transition (fraction of range; 2 %).
    pub dvfs_min_transition: f64,
    /// Voltage/frequency transition dead time (s); 10 µs.
    pub dvfs_transition_penalty: f64,
    /// Per-core migration penalty (s); 100 µs.
    pub migration_penalty: f64,
    /// OS timer-interrupt period (s); 1 ms.
    pub os_tick: f64,
    /// Minimum interval between migration decisions (s); 10 ms.
    pub migration_interval: f64,
    /// Proportional gain of the DVFS PI controller ([`PAPER_PI_KP`]
    /// unless tuned — an exploration knob, see `dtm-explore`).
    pub pi_kp: f64,
    /// Integral gain of the DVFS PI controller ([`PAPER_PI_KI`] unless
    /// tuned).
    pub pi_ki: f64,
    /// Online gain schedule for the DVFS PI controller. `Fixed` (the
    /// default) selects the paper's fixed-gain controller and keeps
    /// every pre-adaptive cache key; adaptive schedules rescale the
    /// gains from the observed temperature trajectory (see
    /// `dtm_control::adaptive`).
    pub gain_schedule: GainScheduleConfig,
}

impl Default for DtmConfig {
    fn default() -> Self {
        DtmConfig {
            threshold: 84.2,
            stopgo_trip_margin: 0.2,
            stopgo_stall: 30e-3,
            dvfs_setpoint_margin: 2.4,
            dvfs_min_scale: 0.2,
            dvfs_min_transition: 0.02,
            dvfs_transition_penalty: 10e-6,
            migration_penalty: 100e-6,
            os_tick: 1e-3,
            migration_interval: 10e-3,
            pi_kp: PAPER_PI_KP,
            pi_ki: PAPER_PI_KI,
            gain_schedule: GainScheduleConfig::Fixed,
        }
    }
}

/// The result cache addresses cells by the `Debug` spelling of their
/// configs, so this impl *is* cache-key format: it reproduces the
/// pre-PR-8 derived output exactly and appends the PI-gain fields only
/// when they differ from the paper constants. Paper-gain configs
/// therefore keep every cache entry written before the gains became
/// tunable (the same discipline `FaultConfig` uses for the ideal
/// scenario). Pinned by `debug_repr_is_cache_key_stable`.
impl std::fmt::Debug for DtmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("DtmConfig");
        d.field("threshold", &self.threshold)
            .field("stopgo_trip_margin", &self.stopgo_trip_margin)
            .field("stopgo_stall", &self.stopgo_stall)
            .field("dvfs_setpoint_margin", &self.dvfs_setpoint_margin)
            .field("dvfs_min_scale", &self.dvfs_min_scale)
            .field("dvfs_min_transition", &self.dvfs_min_transition)
            .field("dvfs_transition_penalty", &self.dvfs_transition_penalty)
            .field("migration_penalty", &self.migration_penalty)
            .field("os_tick", &self.os_tick)
            .field("migration_interval", &self.migration_interval);
        if self.has_tuned_gains() {
            d.field("pi_kp", &self.pi_kp).field("pi_ki", &self.pi_ki);
        }
        if self.has_adaptive_schedule() {
            d.field("gain_schedule", &self.gain_schedule);
        }
        d.finish()
    }
}

impl DtmConfig {
    /// Whether the PI gains differ from the paper's constants (and so
    /// must appear in the cache-key `Debug` repr).
    pub fn has_tuned_gains(&self) -> bool {
        self.pi_kp != PAPER_PI_KP || self.pi_ki != PAPER_PI_KI
    }

    /// Whether a non-default (adaptive) gain schedule is selected (and
    /// so must appear in the cache-key `Debug` repr).
    pub fn has_adaptive_schedule(&self) -> bool {
        !self.gain_schedule.is_fixed()
    }

    /// DVFS temperature setpoint (°C).
    pub fn dvfs_setpoint(&self) -> f64 {
        self.threshold - self.dvfs_setpoint_margin
    }

    /// Stop-go trip temperature (°C).
    pub fn stopgo_trip(&self) -> f64 {
        self.threshold - self.stopgo_trip_margin
    }

    /// A configuration with the threshold raised to 100 °C (the paper's
    /// sensitivity check in §5.3).
    pub fn with_threshold(threshold: f64) -> Self {
        DtmConfig {
            threshold,
            ..DtmConfig::default()
        }
    }

    /// An effectively unconstrained configuration (for unthrottled
    /// reference runs such as the Table 1 reproduction).
    pub fn unconstrained() -> Self {
        DtmConfig::with_threshold(f64::INFINITY)
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on non-positive durations or out-of-range scales.
    pub fn validate(&self) {
        assert!(self.threshold > 0.0, "threshold must be positive");
        assert!(self.stopgo_stall > 0.0, "stall must be positive");
        assert!(
            self.dvfs_min_scale > 0.0 && self.dvfs_min_scale < 1.0,
            "min scale must be in (0,1)"
        );
        assert!(
            (0.0..1.0).contains(&self.dvfs_min_transition),
            "min transition must be in [0,1)"
        );
        assert!(self.os_tick > 0.0, "OS tick must be positive");
        assert!(
            self.migration_interval >= self.os_tick,
            "migration interval must be at least one OS tick"
        );
        assert!(
            self.pi_kp.is_finite() && self.pi_kp > 0.0,
            "PI proportional gain must be finite and positive"
        );
        assert!(
            self.pi_ki.is_finite() && self.pi_ki > 0.0,
            "PI integral gain must be finite and positive"
        );
        self.gain_schedule.validate();
    }
}

/// Leakage calibration for the simulated chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageConfig {
    /// Logic leakage density at the reference temperature (W/m²).
    pub logic_density: f64,
    /// SRAM leakage density at the reference temperature (W/m²).
    pub sram_density: f64,
    /// Reference temperature (°C).
    pub t_ref: f64,
    /// Exponential temperature coefficient (1/K).
    pub beta: f64,
}

impl Default for LeakageConfig {
    fn default() -> Self {
        LeakageConfig {
            logic_density: dtm_power::DEFAULT_LOGIC_LEAKAGE,
            sram_density: dtm_power::DEFAULT_SRAM_LEAKAGE,
            t_ref: 45.0,
            beta: (2.0f64).ln() / 40.0,
        }
    }
}

/// Full simulation configuration: chip, package, leakage, sensors, and
/// run length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores (4 in the study).
    pub cores: usize,
    /// Core microarchitecture (Table 3).
    pub core: CoreConfig,
    /// Cooling package.
    pub package: PackageConfig,
    /// Leakage calibration.
    pub leakage: LeakageConfig,
    /// Sensor non-idealities.
    pub sensor: SensorSpec,
    /// Simulated silicon time per run (s); 0.5 s in the study.
    pub duration: f64,
    /// Thermal-solver substep ceiling (s); only exercised by the
    /// backward-Euler backend (directly, or as the propagator's
    /// fallback).
    pub thermal_substep: f64,
    /// Transient thermal integration backend. The default exact
    /// matrix-exponential propagator advances a whole power sample in
    /// one matvec; `BackwardEuler` selects the substepping reference
    /// integrator.
    pub thermal_solver: SolverBackend,
    /// Initialization margin (°C): the package starts at the steady
    /// state whose hottest sensor sits this far below the threshold,
    /// emulating a chip that has long been running at its throttled
    /// equilibrium. (The heat sink's time constant is ~1 min, far beyond
    /// the 0.5 s runs, so the package state is effectively an initial
    /// condition.)
    pub init_hotspot_margin: f64,
    /// Seed for sensor noise.
    pub seed: u64,
    /// Per-core maximum frequency-scale factors for heterogeneous
    /// (asymmetric) CMPs — the extension axis the paper names in §9.
    /// Empty means every core is a full-speed core (the paper's
    /// homogeneous configuration).
    pub core_max_scale: Vec<f64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 4,
            core: CoreConfig::default(),
            package: PackageConfig::default(),
            leakage: LeakageConfig::default(),
            sensor: SensorSpec::ideal(),
            duration: 0.5,
            thermal_substep: 7e-6,
            thermal_solver: SolverBackend::default(),
            init_hotspot_margin: 1.0,
            seed: 0x5eed,
            core_max_scale: Vec::new(),
        }
    }
}

impl SimConfig {
    /// A short-duration configuration for unit tests.
    pub fn fast_test() -> Self {
        SimConfig {
            duration: 0.05,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let d = DtmConfig::default();
        assert!((d.threshold - 84.2).abs() < 1e-12);
        assert!((d.stopgo_stall - 30e-3).abs() < 1e-12);
        assert!((d.dvfs_min_scale - 0.2).abs() < 1e-12);
        assert!((d.dvfs_min_transition - 0.02).abs() < 1e-12);
        assert!((d.dvfs_transition_penalty - 10e-6).abs() < 1e-18);
        assert!((d.migration_penalty - 100e-6).abs() < 1e-18);
        assert!((d.migration_interval - 10e-3).abs() < 1e-12);
        d.validate();
    }

    #[test]
    fn setpoint_is_below_threshold() {
        let d = DtmConfig::default();
        assert!(d.dvfs_setpoint() < d.threshold);
        assert!(d.stopgo_trip() < d.threshold);
        assert!(d.stopgo_trip() > d.dvfs_setpoint());
    }

    #[test]
    fn unconstrained_never_trips() {
        let d = DtmConfig::unconstrained();
        assert!(d.stopgo_trip() == f64::INFINITY);
        d.validate();
    }

    #[test]
    fn sim_defaults_are_study_scale() {
        let s = SimConfig::default();
        assert_eq!(s.cores, 4);
        assert!((s.duration - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min scale")]
    fn bad_min_scale_rejected() {
        let d = DtmConfig {
            dvfs_min_scale: 1.5,
            ..DtmConfig::default()
        };
        d.validate();
    }

    #[test]
    #[should_panic(expected = "at least one OS tick")]
    fn migration_interval_must_cover_tick() {
        let mut d = DtmConfig::default();
        d.migration_interval = d.os_tick / 2.0;
        d.validate();
    }

    #[test]
    #[should_panic(expected = "proportional gain")]
    fn non_finite_kp_rejected() {
        let d = DtmConfig {
            pi_kp: f64::NAN,
            ..DtmConfig::default()
        };
        d.validate();
    }

    /// The harness addresses cache cells by `format!("{dtm:?}")`, so the
    /// paper-gain `Debug` output must stay byte-identical to the derived
    /// repr that PR 6/7 hashed. If this string changes, every cached
    /// result silently rotates.
    #[test]
    fn debug_repr_is_cache_key_stable() {
        let legacy = "DtmConfig { threshold: 84.2, stopgo_trip_margin: 0.2, \
             stopgo_stall: 0.03, dvfs_setpoint_margin: 2.4, dvfs_min_scale: 0.2, \
             dvfs_min_transition: 0.02, dvfs_transition_penalty: 1e-5, \
             migration_penalty: 0.0001, os_tick: 0.001, migration_interval: 0.01 }";
        assert_eq!(format!("{:?}", DtmConfig::default()), legacy);
        assert!(!DtmConfig::default().has_tuned_gains());
        assert!(!DtmConfig::with_threshold(100.0).has_tuned_gains());

        // Tuned gains must change the repr (distinct cache addresses).
        let tuned = DtmConfig {
            pi_kp: 0.02,
            ..DtmConfig::default()
        };
        assert!(tuned.has_tuned_gains());
        let repr = format!("{tuned:?}");
        assert!(repr.starts_with(&legacy[..legacy.len() - 2]));
        assert!(repr.contains("pi_kp: 0.02"));
        assert!(repr.contains("pi_ki: 248.5"));
    }

    /// Same discipline for the gain schedule: the default (fixed)
    /// schedule is spelled nowhere, so fixed-gain cache keys are
    /// byte-identical to pre-adaptive builds; adaptive schedules
    /// append and therefore rekey.
    #[test]
    fn adaptive_schedule_rekeys_but_fixed_does_not() {
        let fixed = DtmConfig::default();
        assert!(!fixed.has_adaptive_schedule());
        assert!(!format!("{fixed:?}").contains("gain_schedule"));

        let adaptive = DtmConfig {
            gain_schedule: GainScheduleConfig::rao_default(),
            ..DtmConfig::default()
        };
        assert!(adaptive.has_adaptive_schedule());
        adaptive.validate();
        let repr = format!("{adaptive:?}");
        assert!(repr.contains("gain_schedule: Rao { alpha: 1.0, tau_s: 0.002 }"));
        assert_ne!(repr, format!("{fixed:?}"));
    }

    #[test]
    #[should_panic(expected = "selftune rate")]
    fn invalid_schedule_rejected_by_validate() {
        let d = DtmConfig {
            gain_schedule: GainScheduleConfig::SelfTuning {
                rate: 2.0,
                window_s: 1e-3,
            },
            ..DtmConfig::default()
        };
        d.validate();
    }
}
