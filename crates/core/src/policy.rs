//! The DTM policy taxonomy (Table 2): three orthogonal axes forming
//! twelve thermal-management schemes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Low-level throttling mechanism (first axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThrottleKind {
    /// Stop-go / global clock gating: freeze the core for a fixed stall
    /// interval when a sensor trips.
    StopGo,
    /// Control-theoretic DVFS: a clipped PI controller continuously
    /// selects a voltage/frequency scaling factor.
    Dvfs,
}

/// Scope at which the throttle acts (second axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// One decision for the whole chip (all cores stall/scale together).
    Global,
    /// Independent per-core decisions.
    Distributed,
}

/// OS-level process migration policy (third axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationKind {
    /// Threads never move.
    None,
    /// Performance-counter proxies estimate per-thread resource
    /// intensities (Figure 4's algorithm).
    CounterBased,
    /// An OS-maintained thread×core thermal-trend table fed by the PI
    /// controllers' telemetry (Figure 6's flow).
    SensorBased,
}

/// One cell of Table 2: a complete thermal-management scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Throttle mechanism.
    pub throttle: ThrottleKind,
    /// Global or distributed application.
    pub scope: Scope,
    /// Migration policy layered on top.
    pub migration: MigrationKind,
}

impl PolicySpec {
    /// Builds a policy from its three axes.
    pub fn new(throttle: ThrottleKind, scope: Scope, migration: MigrationKind) -> Self {
        PolicySpec {
            throttle,
            scope,
            migration,
        }
    }

    /// The paper's baseline: distributed stop-go, no migration.
    pub fn baseline() -> Self {
        PolicySpec::new(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::None,
        )
    }

    /// The paper's best performer: distributed DVFS + sensor-based
    /// migration (the two-loop design).
    pub fn best() -> Self {
        PolicySpec::new(
            ThrottleKind::Dvfs,
            Scope::Distributed,
            MigrationKind::SensorBased,
        )
    }

    /// All twelve policy combinations, in Table 2's reading order
    /// (migration axis outermost, then scope, then throttle).
    pub fn all() -> Vec<PolicySpec> {
        let mut v = Vec::with_capacity(12);
        for migration in [
            MigrationKind::None,
            MigrationKind::CounterBased,
            MigrationKind::SensorBased,
        ] {
            for scope in [Scope::Global, Scope::Distributed] {
                for throttle in [ThrottleKind::StopGo, ThrottleKind::Dvfs] {
                    v.push(PolicySpec::new(throttle, scope, migration));
                }
            }
        }
        v
    }

    /// Compact machine-readable spelling for wire protocols and CLIs:
    /// `throttle/scope/migration`, e.g. `dvfs/dist/sensor`. The inverse
    /// of [`PolicySpec::parse_wire`].
    pub fn wire_name(&self) -> String {
        let throttle = match self.throttle {
            ThrottleKind::StopGo => "stopgo",
            ThrottleKind::Dvfs => "dvfs",
        };
        let scope = match self.scope {
            Scope::Global => "global",
            Scope::Distributed => "dist",
        };
        let migration = match self.migration {
            MigrationKind::None => "none",
            MigrationKind::CounterBased => "counter",
            MigrationKind::SensorBased => "sensor",
        };
        format!("{throttle}/{scope}/{migration}")
    }

    /// Parses the [`PolicySpec::wire_name`] spelling
    /// (`throttle/scope/migration`). This is how untrusted input — a
    /// network request, a CLI flag — names a policy, so unknown axes
    /// are an `Err`, never a panic.
    ///
    /// # Errors
    ///
    /// Describes the unrecognized segment.
    pub fn parse_wire(s: &str) -> Result<Self, String> {
        let mut parts = s.split('/');
        let (Some(t), Some(sc), Some(m), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "policy `{s}` is not of the form throttle/scope/migration \
                 (e.g. `dvfs/dist/sensor`)"
            ));
        };
        let throttle = match t {
            "stopgo" => ThrottleKind::StopGo,
            "dvfs" => ThrottleKind::Dvfs,
            other => return Err(format!("unknown throttle `{other}` (stopgo|dvfs)")),
        };
        let scope = match sc {
            "global" => Scope::Global,
            "dist" => Scope::Distributed,
            other => return Err(format!("unknown scope `{other}` (global|dist)")),
        };
        let migration = match m {
            "none" => MigrationKind::None,
            "counter" => MigrationKind::CounterBased,
            "sensor" => MigrationKind::SensorBased,
            other => return Err(format!("unknown migration `{other}` (none|counter|sensor)")),
        };
        Ok(PolicySpec::new(throttle, scope, migration))
    }

    /// Short name in the paper's style, e.g. `Dist. DVFS + sensor-based
    /// migration`.
    pub fn name(&self) -> String {
        let scope = match self.scope {
            Scope::Global => "Global",
            Scope::Distributed => "Dist.",
        };
        let throttle = match self.throttle {
            ThrottleKind::StopGo => "stop-go",
            ThrottleKind::Dvfs => "DVFS",
        };
        let migration = match self.migration {
            MigrationKind::None => "",
            MigrationKind::CounterBased => " + counter-based migration",
            MigrationKind::SensorBased => " + sensor-based migration",
        };
        format!("{scope} {throttle}{migration}")
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_twelve_policies() {
        let all = PolicySpec::all();
        assert_eq!(all.len(), 12);
        // All distinct.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn baseline_is_distributed_stop_go() {
        let b = PolicySpec::baseline();
        assert_eq!(b.throttle, ThrottleKind::StopGo);
        assert_eq!(b.scope, Scope::Distributed);
        assert_eq!(b.migration, MigrationKind::None);
        assert!(PolicySpec::all().contains(&b));
    }

    #[test]
    fn best_policy_is_two_loop_design() {
        let b = PolicySpec::best();
        assert_eq!(b.name(), "Dist. DVFS + sensor-based migration");
    }

    #[test]
    fn names_match_paper_style() {
        assert_eq!(
            PolicySpec::new(ThrottleKind::StopGo, Scope::Global, MigrationKind::None).name(),
            "Global stop-go"
        );
        assert_eq!(
            PolicySpec::new(
                ThrottleKind::Dvfs,
                Scope::Global,
                MigrationKind::CounterBased
            )
            .name(),
            "Global DVFS + counter-based migration"
        );
    }

    #[test]
    fn wire_names_round_trip() {
        for p in PolicySpec::all() {
            let wire = p.wire_name();
            assert_eq!(PolicySpec::parse_wire(&wire), Ok(p), "{wire}");
        }
        assert_eq!(PolicySpec::best().wire_name(), "dvfs/dist/sensor");
        assert_eq!(PolicySpec::baseline().wire_name(), "stopgo/dist/none");
    }

    #[test]
    fn malformed_wire_names_are_errors() {
        for bad in [
            "",
            "dvfs",
            "dvfs/dist",
            "dvfs/dist/sensor/extra",
            "turbo/dist/none",
            "dvfs/chip/none",
            "dvfs/dist/teleport",
        ] {
            assert!(PolicySpec::parse_wire(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let all = PolicySpec::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
