//! The thermal/timing simulator (§3.3): replays per-thread power traces
//! under a DTM policy, closing the loop through the HotSpot-style
//! thermal model with temperature-dependent leakage.
//!
//! Time advances in power-sample steps (27.78 µs). Because DVFS changes
//! the length of a cycle — and each core may run at a different cycle
//! time — progress through each thread's trace is tracked in *absolute
//! time*: a core at frequency scale `s` consumes `s` samples of trace per
//! wall-clock sample and dissipates `s³` of the trace's nominal dynamic
//! power, while a stalled core dissipates only leakage.

use crate::config::{DtmConfig, SimConfig};
use crate::metrics::{
    PhaseNs, PhaseProfile, Robustness, RunResult, SteadyTempSummary, ThreadStats,
};
use crate::migration::{
    CounterMigration, MigrationPolicy, NoMigration, OsObservation, SensorMigration, ThreadCounters,
};
use crate::policy::{MigrationKind, PolicySpec, Scope, ThrottleKind};
use crate::telemetry::{Telemetry, TelemetryRecord};
use dtm_control::{DvfsController, PiGains};
use dtm_faults::{FallbackKind, FaultConfig, FaultScenario, FaultState, Watchdog, WatchdogConfig};
use dtm_floorplan::{Floorplan, UnitKind};
use dtm_obs::{Histogram, ObsHandle};
use dtm_power::{leakage_reference, PowerTrace, N_CORE_UNITS};
use dtm_thermal::{LeakageModel, SensorBank, ThermalError, ThermalModel, TransientSolver};
use std::sync::Arc;

/// Margin below the DVFS setpoint under which a throttled chip is
/// counted as *falsely* throttled: the true hotspot sits this far below
/// where the controller would want it, so the lost throughput bought no
/// thermal safety.
const FALSE_THROTTLE_MARGIN: f64 = 2.0;

/// The engine's per-step phases, in execution order. Phase timing
/// histograms are registered as `dtm_phase_<name>_ns`.
pub const ENGINE_PHASES: [&str; 9] = [
    "microarch",
    "power",
    "thermal",
    "sensors",
    "watchdog",
    "accounting",
    "control",
    "migration",
    "telemetry",
];

const PH_MICROARCH: usize = 0;
const PH_POWER: usize = 1;
const PH_THERMAL: usize = 2;
const PH_SENSORS: usize = 3;
const PH_WATCHDOG: usize = 4;
const PH_ACCOUNTING: usize = 5;
const PH_CONTROL: usize = 6;
const PH_MIGRATION: usize = 7;
const PH_TELEMETRY: usize = 8;

/// Phase timing is itself sampled: every `TIMED_SAMPLE_STRIDE`-th step
/// reads the clock around each phase (durations go to the phase
/// histograms and, scaled by the stride, to the run's phase totals).
/// Nine clock reads per step would otherwise cost a few percent of the
/// hot loop — sampling keeps the instrumented build within its < 3%
/// overhead budget while the ~28 µs steps stay statistically identical.
const TIMED_SAMPLE_STRIDE: u64 = 8;

/// Full span records (ring pushes behind a mutex) are sampled more
/// sparsely still — every `SPAN_SAMPLE_STRIDE`-th step contributes its
/// nine phase spans to the trace. A multiple of [`TIMED_SAMPLE_STRIDE`],
/// so span steps are always timed steps.
const SPAN_SAMPLE_STRIDE: u64 = 32;

/// Hottest-sensor steady-state samples are taken every this many steps
/// (~1 ms), matching the telemetry stride the Table 1 characterization
/// has always used, so steady summaries are bit-compatible with it.
const STEADY_SAMPLE_EVERY: u64 = 36;

/// Per-phase profiling state, present only while an enabled
/// [`ObsHandle`] is attached.
struct EngineProf {
    obs: ObsHandle,
    hists: [Histogram; ENGINE_PHASES.len()],
    /// Nanoseconds measured on the timed (sampled) steps only; scaled
    /// up by `steps / timed_steps` when the profile is reported.
    phase_ns: [u64; ENGINE_PHASES.len()],
    steps: u64,
    timed_steps: u64,
}

/// Step-local clock state for phase marking.
pub(crate) struct StepClock {
    last_ns: u64,
    /// Whether this step's phases are also recorded as trace spans.
    sample: bool,
}

/// Errors surfaced while building or running a simulation.
#[derive(Debug)]
pub enum SimError {
    /// The thermal substrate failed.
    Thermal(ThermalError),
    /// Inputs were inconsistent (wrong trace count, empty workload…).
    BadInput(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Thermal(e) => write!(f, "thermal model error: {e}"),
            SimError::BadInput(msg) => write!(f, "invalid simulation input: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ThermalError> for SimError {
    fn from(e: ThermalError) -> Self {
        SimError::Thermal(e)
    }
}

/// The power-trace-driven thermal/timing simulator for one
/// (workload, policy) run.
///
/// # Examples
///
/// ```no_run
/// use dtm_core::{DtmConfig, PolicySpec, SimConfig, ThermalTimingSim};
/// use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TraceLibrary::new(TraceGenConfig::default());
/// let workload = &standard_workloads()[0];
/// let traces: Vec<_> = workload.resolve().iter().map(|b| lib.trace(b)).collect();
/// let mut sim = ThermalTimingSim::new(
///     SimConfig::default(),
///     DtmConfig::default(),
///     PolicySpec::best(),
///     traces,
/// )?;
/// let result = sim.run()?;
/// println!("{:.2} BIPS at duty {:.1}%", result.bips(), 100.0 * result.duty_cycle);
/// # Ok(())
/// # }
/// ```
pub struct ThermalTimingSim {
    cfg: SimConfig,
    dtm: DtmConfig,
    policy: PolicySpec,
    floorplan: Floorplan,
    thermal: TransientSolver,
    leakage: LeakageModel,
    traces: Vec<Arc<PowerTrace>>,
    dt: f64,

    // Layout lookups.
    unit_blocks: Vec<[usize; N_CORE_UNITS]>,
    sensor_blocks: Vec<[usize; 2]>,
    l2_block: usize,
    l2_idle: f64,

    // Per-thread state.
    cursor: Vec<f64>,
    counters: Vec<ThreadCounters>,
    thread_stats: Vec<ThreadStats>,

    // Per-core state.
    assignment: Vec<usize>,
    scale: Vec<f64>,
    stall_until: Vec<f64>,
    /// Thread that caused each core's active stop-go stall.
    trip_thread: Vec<Option<usize>>,
    /// Per-core: tripped since the last migration decision.
    tripped_since_decision: Vec<bool>,
    /// Unit (0 = int RF, 1 = fp RF) that caused each core's last trip.
    last_trip_unit: Vec<usize>,
    penalty_until: Vec<f64>,
    pi: Vec<DvfsController>,
    sensor_temps: Vec<[f64; 2]>,

    migration: Box<dyn MigrationPolicy>,
    sensors: SensorBank,

    // Fault injection and the watchdog safety layer. Both `None` (the
    // default) on the fault-free path, which therefore stays
    // bit-identical to the pre-fault engine.
    faults: Option<FaultState>,
    watchdog: Option<Watchdog>,
    /// True (fault-free, noise-free) block temperatures at each core's
    /// `[int_rf, fp_rf]` sensor sites — what the chip actually does,
    /// regardless of what the sensors claim.
    true_sensor_temps: Vec<[f64; 2]>,
    max_true_temp: f64,
    violation_time: f64,
    false_throttle_time: f64,
    fallback_time: f64,

    // Clocks and accumulators.
    time: f64,
    next_os_tick: f64,
    last_migration: f64,
    duty_acc: f64,
    max_temp: f64,
    emergency_time: f64,
    migrations: u64,
    dvfs_transitions: u64,
    stalls: u64,
    energy: f64,

    telemetry: Option<Telemetry>,
    power_buf: Vec<f64>,
    /// Per-core effective scales computed by the pre-thermal phase and
    /// consumed by the post-thermal one (accounting, migration,
    /// telemetry); a field so the step can be split around a batched
    /// thermal advance without reallocating.
    scales_now: Vec<f64>,

    // Observability (None / empty on the unprofiled fast path).
    prof: Option<EngineProf>,
    /// Hottest sensor reading every [`STEADY_SAMPLE_EVERY`] steps, for
    /// the steady-state summary in [`RunResult::steady`].
    steady_hot: Vec<f64>,
    steady_counter: u64,
}

impl std::fmt::Debug for ThermalTimingSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThermalTimingSim")
            .field("policy", &self.policy)
            .field("time", &self.time)
            .field("assignment", &self.assignment)
            .finish_non_exhaustive()
    }
}

impl ThermalTimingSim {
    /// Builds a simulator for `traces.len()` threads on a
    /// `cfg.cores`-core chip under `policy`.
    ///
    /// # Errors
    ///
    /// Fails if the thread count does not match the core count (this
    /// study pins one thread per core), if traces disagree on sample
    /// period, or if the thermal model cannot be constructed.
    pub fn new(
        cfg: SimConfig,
        dtm: DtmConfig,
        policy: PolicySpec,
        traces: Vec<Arc<PowerTrace>>,
    ) -> Result<Self, SimError> {
        dtm.validate();
        if traces.len() != cfg.cores {
            return Err(SimError::BadInput(format!(
                "{} traces for {} cores (one thread per core required)",
                traces.len(),
                cfg.cores
            )));
        }
        if !cfg.core_max_scale.is_empty() {
            if cfg.core_max_scale.len() != cfg.cores {
                return Err(SimError::BadInput(format!(
                    "{} core_max_scale entries for {} cores",
                    cfg.core_max_scale.len(),
                    cfg.cores
                )));
            }
            if cfg
                .core_max_scale
                .iter()
                .any(|&s| !(s.is_finite() && s > 0.0 && s <= 1.0))
            {
                return Err(SimError::BadInput(
                    "core_max_scale entries must be in (0, 1]".into(),
                ));
            }
        }
        let dt = traces[0].dt();
        if traces.iter().any(|t| (t.dt() - dt).abs() > 1e-12) {
            return Err(SimError::BadInput(
                "all traces must share one sample period".into(),
            ));
        }

        let floorplan = Floorplan::ppc_cmp(cfg.cores);
        let model = ThermalModel::new(&floorplan, &cfg.package)?;
        let mut thermal =
            TransientSolver::new(model, cfg.thermal_substep).with_backend(cfg.thermal_solver);
        // The sample period is fixed for the whole run, so pay the
        // solver's one-time per-dt construction (propagator or LU) here
        // rather than inside the profiled step loop.
        thermal.prewarm(dt)?;

        let leak_ref = leakage_reference(
            &floorplan,
            cfg.leakage.logic_density,
            cfg.leakage.sram_density,
        );
        let leakage = LeakageModel::new(leak_ref, cfg.leakage.t_ref, cfg.leakage.beta);

        let mut unit_blocks = Vec::with_capacity(cfg.cores);
        let mut sensor_blocks = Vec::with_capacity(cfg.cores);
        let mut sensor_flat = Vec::with_capacity(cfg.cores * 2);
        for core in 0..cfg.cores {
            let mut blocks = [0usize; N_CORE_UNITS];
            for (i, &kind) in UnitKind::per_core().iter().enumerate() {
                blocks[i] = floorplan
                    .block_of(core, kind)
                    .expect("validated floorplan has every per-core unit");
            }
            unit_blocks.push(blocks);
            let int_rf = floorplan
                .block_of(core, UnitKind::IntRegFile)
                .expect("int RF");
            let fp_rf = floorplan
                .block_of(core, UnitKind::FpRegFile)
                .expect("fp RF");
            sensor_blocks.push([int_rf, fp_rf]);
            sensor_flat.push(int_rf);
            sensor_flat.push(fp_rf);
        }
        let l2_block = floorplan.blocks_of_kind(UnitKind::L2)[0];
        let sensors = SensorBank::new(sensor_flat, cfg.sensor, cfg.seed);

        let n_pi = match policy.scope {
            Scope::Global => 1,
            Scope::Distributed => cfg.cores,
        };
        let gains = PiGains {
            kp: dtm.pi_kp,
            ki: dtm.pi_ki,
            dt,
        };
        let pi = (0..n_pi)
            .map(|_| DvfsController::from_config(gains, dtm.gain_schedule, dtm.dvfs_min_scale, 1.0))
            .collect();

        let migration: Box<dyn MigrationPolicy> = match policy.migration {
            MigrationKind::None => Box::new(NoMigration),
            MigrationKind::CounterBased => Box::new(CounterMigration::new()),
            MigrationKind::SensorBased => Box::new(SensorMigration::new(3)),
        };

        // L2 idle power (clock/standby) charged once chip-wide, taken
        // from the default calibration.
        let l2_idle = dtm_power::PowerModel::default_90nm(cfg.core.clock_hz).l2_idle_power();

        let cores = cfg.cores;
        let n_threads = traces.len();
        let mut sim = ThermalTimingSim {
            cfg,
            dtm,
            policy,
            floorplan,
            thermal,
            leakage,
            traces,
            dt,
            unit_blocks,
            sensor_blocks,
            l2_block,
            l2_idle,
            cursor: vec![0.0; n_threads],
            counters: vec![ThreadCounters::default(); n_threads],
            thread_stats: vec![ThreadStats::default(); n_threads],
            assignment: (0..cores).collect(),
            scale: vec![1.0; cores],
            stall_until: vec![f64::NEG_INFINITY; cores],
            trip_thread: vec![None; cores],
            tripped_since_decision: vec![false; cores],
            last_trip_unit: vec![0; cores],
            penalty_until: vec![f64::NEG_INFINITY; cores],
            pi,
            sensor_temps: vec![[0.0; 2]; cores],
            migration,
            sensors,
            faults: None,
            watchdog: None,
            true_sensor_temps: vec![[0.0; 2]; cores],
            max_true_temp: f64::NEG_INFINITY,
            violation_time: 0.0,
            false_throttle_time: 0.0,
            fallback_time: 0.0,
            time: 0.0,
            next_os_tick: 0.0,
            last_migration: f64::NEG_INFINITY,
            duty_acc: 0.0,
            max_temp: f64::NEG_INFINITY,
            emergency_time: 0.0,
            migrations: 0,
            dvfs_transitions: 0,
            stalls: 0,
            energy: 0.0,
            telemetry: None,
            power_buf: Vec::new(),
            scales_now: Vec::new(),
            prof: None,
            steady_hot: Vec::new(),
            steady_counter: 0,
        };
        sim.initialize_temperatures()?;
        sim.read_sensors(&mut None);
        Ok(sim)
    }

    /// Attaches an observability handle. An enabled handle turns on
    /// per-phase timing (histograms named `dtm_phase_<name>_ns` plus
    /// sampled trace spans) and binds the watchdog's counters; a
    /// disabled handle detaches profiling.
    pub fn attach_obs(&mut self, obs: &ObsHandle) {
        if obs.is_enabled() {
            let hists = std::array::from_fn(|i| {
                obs.histogram(&format!("dtm_phase_{}_ns", ENGINE_PHASES[i]))
            });
            self.prof = Some(EngineProf {
                obs: obs.clone(),
                hists,
                phase_ns: [0; ENGINE_PHASES.len()],
                steps: 0,
                timed_steps: 0,
            });
            if let Some(wd) = &mut self.watchdog {
                wd.bind_obs(obs);
            }
        } else {
            self.prof = None;
        }
    }

    /// Closes the phase that ran since the last mark: its duration goes
    /// to the phase histogram and the run's phase totals, and — on
    /// sampled steps — into the span ring.
    #[inline]
    fn mark(&mut self, phase: usize, clk: &mut Option<StepClock>) {
        if let (Some(p), Some(c)) = (&mut self.prof, clk.as_mut()) {
            let now = p.obs.now_ns();
            let d = now - c.last_ns;
            p.hists[phase].record(d);
            p.phase_ns[phase] += d;
            if c.sample {
                p.obs
                    .record_span("engine", ENGINE_PHASES[phase], c.last_ns, d);
            }
            c.last_ns = now;
        }
    }

    /// Replaces the migration policy with a custom implementation
    /// (e.g. [`crate::RotationMigration`] or a user-defined
    /// [`MigrationPolicy`]). The policy axis of the constructor's
    /// [`PolicySpec`] only selects the built-in policies; this hook lets
    /// downstream users explore new points in the design space.
    pub fn set_migration_policy(&mut self, policy: Box<dyn MigrationPolicy>) {
        self.migration = policy;
    }

    /// Installs a fault schedule. The ideal scenario clears any
    /// previous one and restores the fault-free fast path.
    pub fn set_fault_scenario(&mut self, scenario: FaultScenario) {
        self.faults = if scenario.is_ideal() {
            None
        } else {
            Some(FaultState::new(scenario))
        };
    }

    /// Installs the watchdog. A disabled configuration clears it and
    /// restores the unscreened fast path.
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = if cfg.enabled {
            let mut wd = Watchdog::new(cfg, self.cfg.cores, 2);
            if let Some(p) = &self.prof {
                wd.bind_obs(&p.obs);
            }
            Some(wd)
        } else {
            None
        };
    }

    /// Installs a complete robustness configuration (scenario plus
    /// watchdog).
    pub fn set_fault_config(&mut self, cfg: &FaultConfig) {
        self.set_fault_scenario(cfg.scenario.clone());
        self.set_watchdog(cfg.watchdog);
    }

    /// Attaches a telemetry recorder (replacing any previous one).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Detaches and returns the telemetry recorder.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    /// The policy being simulated.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// Current simulation time (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current core → thread assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The chip floorplan in use.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Latest per-core hotspot sensor readings `[int_rf, fp_rf]` (°C),
    /// after fault injection and watchdog screening — what the
    /// controllers see.
    pub fn sensor_temps(&self) -> &[[f64; 2]] {
        &self.sensor_temps
    }

    /// Latest *true* block temperatures at the sensor sites (°C) —
    /// unaffected by sensor noise, faults, or the watchdog.
    pub fn true_sensor_temps(&self) -> &[[f64; 2]] {
        &self.true_sensor_temps
    }

    /// The watchdog's per-core fallback latch; `None` when no watchdog
    /// is installed.
    pub fn watchdog_fallback(&self) -> Option<&[bool]> {
        self.watchdog.as_ref().map(|w| w.in_fallback())
    }

    /// Floorplan block indices of each core's `[int_rf, fp_rf]` sensors.
    pub fn sensor_blocks(&self) -> &[[usize; 2]] {
        &self.sensor_blocks
    }

    /// Package initialization: the heat sink's time constant (~1 min)
    /// dwarfs the 0.5 s runs, so the package state is effectively an
    /// initial condition. We start at the *throttled equilibrium*: the
    /// steady state of the largest fraction of full-speed mean power
    /// whose hottest sensor stays `init_hotspot_margin` °C below the
    /// threshold (capped at full power for workloads that never
    /// overheat).
    fn initialize_temperatures(&mut self) -> Result<(), SimError> {
        let nb = self.floorplan.len();
        let mut p_full = vec![0.0; nb];
        for core in 0..self.cfg.cores {
            let trace = &self.traces[self.assignment[core]];
            for (u, &kind) in UnitKind::per_core().iter().enumerate() {
                p_full[self.unit_blocks[core][u]] += trace.mean_unit_power(kind);
            }
        }
        p_full[self.l2_block] += self.l2_idle;

        // Steady temperatures at a power fraction, with the leakage
        // feedback converged by fixed-point iteration.
        let steady = |alpha: f64| -> Result<(Vec<f64>, Vec<f64>), SimError> {
            let mut temps = vec![self.cfg.leakage.t_ref; self.thermal.model().n_nodes()];
            let mut p: Vec<f64> = Vec::new();
            for _ in 0..20 {
                p = p_full.iter().map(|w| w * alpha).collect();
                self.leakage.add_power(&temps[..nb], &mut p);
                let solved = self.thermal.model().steady_state(&p)?;
                // Damped update, clamped: keeps the iteration finite even
                // when the chip is past the thermal-runaway point (the
                // binary search then backs the power fraction off).
                for (t, s) in temps.iter_mut().zip(&solved) {
                    *t = (0.5 * *t + 0.5 * s).min(250.0);
                }
            }
            Ok((temps, p))
        };
        let fast_r = self.thermal.model().fast_resistance().to_vec();
        let hottest_sensor = |temps: &[f64], power: &[f64]| -> f64 {
            self.sensor_blocks
                .iter()
                .flat_map(|pair| pair.iter())
                .map(|&b| temps[b] + fast_r[b] * power[b])
                .fold(f64::NEG_INFINITY, f64::max)
        };

        let target = self.dtm.threshold - self.cfg.init_hotspot_margin;
        let mut alpha = 1.0;
        let full = steady(1.0)?;
        if target.is_finite() && hottest_sensor(&full.0, &full.1) > target {
            let (mut lo, mut hi) = (0.02, 1.0);
            for _ in 0..20 {
                let mid = 0.5 * (lo + hi);
                let (temps, p) = steady(mid)?;
                if hottest_sensor(&temps, &p) > target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            alpha = lo;
        }
        let (_, p) = steady(alpha)?;
        self.thermal.init_steady(&p)?;
        Ok(())
    }

    /// A core's architectural frequency ceiling (1.0 unless the chip is
    /// configured as an asymmetric CMP).
    fn max_scale(&self, core: usize) -> f64 {
        self.cfg.core_max_scale.get(core).copied().unwrap_or(1.0)
    }

    /// Effective frequency scale of a core right now: 0 while stalled or
    /// paying a transition/migration penalty; the DVFS factor (or the
    /// core's architectural ceiling under stop-go) otherwise.
    pub fn effective_scale(&self, core: usize) -> f64 {
        // A broken stop-go gate means stall commands are issued and
        // accounted but never bite.
        let gate_ignored = self
            .faults
            .as_ref()
            .is_some_and(|f| f.gate_ignored(self.time, core));
        if (self.time < self.stall_until[core] && !gate_ignored)
            || self.time < self.penalty_until[core]
        {
            return 0.0;
        }
        let ceiling = self.max_scale(core);
        let s = match self.policy.throttle {
            ThrottleKind::StopGo => ceiling,
            ThrottleKind::Dvfs => self.scale[core].min(ceiling),
        };
        // Watchdog limp-home mode: while any core's sensors are
        // implausible, the chip is clamped to the minimum DVFS scale.
        if let Some(wd) = &self.watchdog {
            if wd.config().fallback == FallbackKind::FreqFloor && wd.any_fallback() {
                return s.min(self.dtm.dvfs_min_scale);
            }
        }
        s
    }

    fn read_sensors(&mut self, clk: &mut Option<StepClock>) {
        // Sensors sit at the within-block hotspots, so they see the
        // lumped node temperature plus the sub-block fast-mode excess.
        let temps = self.thermal.hot_block_temps();
        let mut flat = self.sensors.read_all(&temps);
        for core in 0..self.cfg.cores {
            self.true_sensor_temps[core] = [
                temps[self.sensor_blocks[core][0]],
                temps[self.sensor_blocks[core][1]],
            ];
        }
        if let Some(faults) = &mut self.faults {
            for core in 0..self.cfg.cores {
                for (k, slot) in flat[core * 2..core * 2 + 2].iter_mut().enumerate() {
                    *slot = faults.apply_sensor(self.time, core, k, *slot);
                }
            }
        }
        self.mark(PH_SENSORS, clk);
        if let Some(wd) = &mut self.watchdog {
            wd.assess(self.time, &mut flat);
        }
        self.mark(PH_WATCHDOG, clk);
        for core in 0..self.cfg.cores {
            self.sensor_temps[core] = [flat[core * 2], flat[core * 2 + 1]];
        }
    }

    /// Advances the simulation by one power sample (27.78 µs).
    ///
    /// # Errors
    ///
    /// Propagates thermal-solver failures.
    pub fn step(&mut self) -> Result<(), SimError> {
        let mut clk = self.begin_clock();
        self.step_pre_thermal(&mut clk);
        // ---- Thermal integration ----
        self.thermal.step(&self.power_buf, self.dt)?;
        self.step_post_thermal(&mut clk);
        Ok(())
    }

    /// Opens this step's phase clock (profiled builds only) and counts
    /// the step against the sampling strides.
    pub(crate) fn begin_clock(&mut self) -> Option<StepClock> {
        match &mut self.prof {
            Some(p) => {
                let timed = p.steps.is_multiple_of(TIMED_SAMPLE_STRIDE);
                let sample = p.steps.is_multiple_of(SPAN_SAMPLE_STRIDE);
                p.steps += 1;
                if timed {
                    p.timed_steps += 1;
                    Some(StepClock {
                        last_ns: p.obs.now_ns(),
                        sample,
                    })
                } else {
                    None
                }
            }
            None => None,
        }
    }

    /// Everything a step does *before* the thermal solve: assembles
    /// block power into `power_buf` (advancing trace cursors and work
    /// accounting) and adds leakage. Split out so a lockstep batch
    /// driver can run many lanes' pre-phases, one batched thermal
    /// advance, then the post-phases — see [`crate::LockstepBatch`].
    pub(crate) fn step_pre_thermal(&mut self, clk: &mut Option<StepClock>) {
        let dt = self.dt;
        let cores = self.cfg.cores;

        // ---- Assemble block power and advance work ----
        self.power_buf.clear();
        self.power_buf.resize(self.floorplan.len(), 0.0);
        let mut l2_power = self.l2_idle;
        // Effective scales are reused by the post-thermal accounting,
        // migration, and telemetry phases; the buffer lives on the sim
        // so the split carries it across without reallocation.
        let mut scales_now = std::mem::take(&mut self.scales_now);
        scales_now.clear();
        scales_now.resize(cores, 0.0);
        for (core, scale_slot) in scales_now.iter_mut().enumerate() {
            let s = self.effective_scale(core);
            *scale_slot = s;
            let thread = self.assignment[core];
            let sample = self.traces[thread]
                .sample(self.cursor[thread] as u64)
                .clone();
            if s > 0.0 {
                let s3 = s * s * s;
                for u in 0..N_CORE_UNITS {
                    self.power_buf[self.unit_blocks[core][u]] += sample.units[u] * s3;
                }
                l2_power += sample.l2 * s;
                self.cursor[thread] += s;
                let stats = &mut self.thread_stats[thread];
                stats.instructions += s * sample.instructions as f64;
                stats.scaled_work += s * dt;
                self.duty_acc += s * dt;
                // Windowed counter state (≈1 ms horizon).
                let k = (s * dt / 1e-3).min(1.0);
                let c = &mut self.counters[thread];
                c.int_rf_per_cycle += k * (sample.int_rf_per_cycle - c.int_rf_per_cycle);
                c.fp_rf_per_cycle += k * (sample.fp_rf_per_cycle - c.fp_rf_per_cycle);
            }
        }
        self.power_buf[self.l2_block] += l2_power;
        self.scales_now = scales_now;
        self.mark(PH_MICROARCH, clk);
        let temps_now = self.thermal.block_temps().to_vec();
        self.leakage.add_power(&temps_now, &mut self.power_buf);
        self.energy += self.power_buf.iter().sum::<f64>() * dt;
        self.mark(PH_POWER, clk);
    }

    /// Everything a step does *after* the thermal solve: advances the
    /// clock, reads sensors, runs accounting, control, migration, and
    /// telemetry. Must be preceded by [`Self::step_pre_thermal`] and a
    /// thermal advance of `power_buf` over `dt` (scalar or batched).
    pub(crate) fn step_post_thermal(&mut self, clk: &mut Option<StepClock>) {
        let dt = self.dt;
        let cores = self.cfg.cores;
        let scales_now = std::mem::take(&mut self.scales_now);
        self.time += dt;
        self.mark(PH_THERMAL, clk);
        self.read_sensors(clk);

        // ---- Emergency accounting ----
        let hottest = self
            .sensor_temps
            .iter()
            .flat_map(|t| t.iter())
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        self.max_temp = self.max_temp.max(hottest);
        if hottest > self.dtm.threshold {
            self.emergency_time += dt;
        }

        // ---- Robustness accounting (against *true* temperatures) ----
        let true_hot = self
            .true_sensor_temps
            .iter()
            .flat_map(|t| t.iter())
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        self.max_true_temp = self.max_true_temp.max(true_hot);
        if true_hot > self.dtm.threshold {
            self.violation_time += dt;
        }
        if self.watchdog.as_ref().is_some_and(|w| w.any_fallback()) {
            self.fallback_time += dt;
        }
        let throttled = (0..cores).any(|c| scales_now[c] < self.max_scale(c) - 1e-12);
        if throttled && true_hot < self.dtm.dvfs_setpoint() - FALSE_THROTTLE_MARGIN {
            self.false_throttle_time += dt;
        }
        self.mark(PH_ACCOUNTING, clk);

        // ---- Throttle control ----
        match self.policy.throttle {
            ThrottleKind::StopGo => self.control_stopgo(),
            ThrottleKind::Dvfs => self.control_dvfs(),
        }
        self.control_fallback_stopgo();
        self.mark(PH_CONTROL, clk);

        // ---- OS tick: migration ----
        if self.time >= self.next_os_tick {
            self.next_os_tick += self.dtm.os_tick;
            self.os_tick(&scales_now);
        }
        self.mark(PH_MIGRATION, clk);

        // ---- Telemetry ----
        if let Some(tel) = &mut self.telemetry {
            let time = self.time;
            let sensor_temps = self.sensor_temps.clone();
            let assignment = self.assignment.clone();
            let in_fallback = match &self.watchdog {
                Some(w) => w.in_fallback().to_vec(),
                None => vec![false; cores],
            };
            tel.offer(|| TelemetryRecord {
                time,
                sensor_temps,
                scales: scales_now.clone(),
                assignment,
                in_fallback,
            });
        }
        // Steady-state sampling mirrors `Telemetry::every(36)` exactly
        // (record, then count), so `RunResult::steady` is bit-compatible
        // with the telemetry-based Table 1 characterization it replaced.
        if self.steady_counter.is_multiple_of(STEADY_SAMPLE_EVERY) {
            self.steady_hot.push(hottest);
        }
        self.steady_counter += 1;
        self.scales_now = scales_now;
        self.mark(PH_TELEMETRY, clk);
    }

    /// The thermal lane this sim contributes to a lockstep batch: its
    /// solver, the block power assembled by the pre-phase, and `dt`.
    pub(crate) fn thermal_lane(&mut self) -> (&mut TransientSolver, &[f64], f64) {
        (&mut self.thermal, &self.power_buf, self.dt)
    }

    /// Whether this sim still has simulated time left before
    /// `cfg.duration` (the lane-retirement test).
    pub(crate) fn lane_active(&self) -> bool {
        self.time < self.cfg.duration
    }

    /// Whether per-phase profiling is attached. Lockstep batching would
    /// attribute the shared thermal phase to one arbitrary lane, so a
    /// profiled sim is stepped scalar instead.
    pub(crate) fn is_profiled(&self) -> bool {
        self.prof.is_some()
    }

    /// Whether `core`'s DVFS actuator is currently stuck by a fault.
    fn dvfs_stuck(&self, core: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.dvfs_stuck(self.time, core))
    }

    /// The [`FallbackKind::StopGoLastGood`] fail-safe: cores whose
    /// sensors are implausible run stop-go on their last plausible
    /// reading instead of the (untrustworthy) live one.
    fn control_fallback_stopgo(&mut self) {
        let Some(wd) = &self.watchdog else {
            return;
        };
        if wd.config().fallback != FallbackKind::StopGoLastGood || !wd.any_fallback() {
            return;
        }
        let trip = self.dtm.stopgo_trip();
        for core in 0..self.cfg.cores {
            if !wd.in_fallback()[core] || self.time < self.stall_until[core] {
                continue;
            }
            let last_good = wd.last_good(core * 2).max(wd.last_good(core * 2 + 1));
            if last_good >= trip {
                self.stall_until[core] = self.time + self.dtm.stopgo_stall;
                self.stalls += 1;
            }
        }
    }

    fn control_stopgo(&mut self) {
        let trip = self.dtm.stopgo_trip();
        match self.policy.scope {
            Scope::Distributed => {
                for core in 0..self.cfg.cores {
                    let hot = self.sensor_temps[core][0].max(self.sensor_temps[core][1]);
                    if hot >= trip && self.time >= self.stall_until[core] {
                        self.stall_until[core] = self.time + self.dtm.stopgo_stall;
                        self.trip_thread[core] = Some(self.assignment[core]);
                        self.tripped_since_decision[core] = true;
                        self.last_trip_unit[core] =
                            if self.sensor_temps[core][0] >= self.sensor_temps[core][1] {
                                0
                            } else {
                                1
                            };
                        self.stalls += 1;
                    } else if self.time < self.stall_until[core]
                        && self.trip_thread[core] != Some(self.assignment[core])
                        && hot < trip - 1.0
                    {
                        // The OS migrated a different process onto this
                        // core and it has cooled safely below the trip
                        // point: the thermal governor lets it resume
                        // rather than serving out the offender's stall.
                        self.stall_until[core] = self.time;
                    }
                }
            }
            Scope::Global => {
                let chip_stalled = self.time < self.stall_until[0];
                let hot = self
                    .sensor_temps
                    .iter()
                    .flat_map(|t| t.iter())
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                if hot >= trip && !chip_stalled {
                    for core in 0..self.cfg.cores {
                        self.stall_until[core] = self.time + self.dtm.stopgo_stall;
                        let t = self.sensor_temps[core];
                        if t[0].max(t[1]) >= trip {
                            self.tripped_since_decision[core] = true;
                            self.last_trip_unit[core] = if t[0] >= t[1] { 0 } else { 1 };
                        }
                    }
                    self.stalls += 1;
                }
            }
        }
    }

    fn control_dvfs(&mut self) {
        let setpoint = self.dtm.dvfs_setpoint();
        let range = 1.0 - self.dtm.dvfs_min_scale;
        match self.policy.scope {
            Scope::Distributed => {
                for core in 0..self.cfg.cores {
                    let hot = self.sensor_temps[core][0].max(self.sensor_temps[core][1]);
                    // The PI state advances even when the actuator is
                    // stuck: the controller keeps observing, it just
                    // cannot act.
                    let u = self.pi[core].update(hot - setpoint);
                    if self.dvfs_stuck(core) {
                        continue;
                    }
                    if (u - self.scale[core]).abs() >= self.dtm.dvfs_min_transition * range {
                        self.scale[core] = u;
                        self.penalty_until[core] = self.time + self.dtm.dvfs_transition_penalty;
                        self.dvfs_transitions += 1;
                    }
                }
            }
            Scope::Global => {
                let hot = self
                    .sensor_temps
                    .iter()
                    .flat_map(|t| t.iter())
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                let u = self.pi[0].update(hot - setpoint);
                // Fault-free, all scales move in lockstep and this is
                // exactly the single scale[0] comparison; with a stuck
                // core, the healthy cores still track the controller.
                let mut moved = false;
                for core in 0..self.cfg.cores {
                    if self.dvfs_stuck(core) {
                        continue;
                    }
                    if (u - self.scale[core]).abs() >= self.dtm.dvfs_min_transition * range {
                        self.scale[core] = u;
                        self.penalty_until[core] = self.time + self.dtm.dvfs_transition_penalty;
                        moved = true;
                    }
                }
                if moved {
                    self.dvfs_transitions += 1;
                }
            }
        }
    }

    fn os_tick(&mut self, scales_now: &[f64]) {
        let obs = OsObservation {
            time: self.time,
            assignment: &self.assignment,
            scale: scales_now,
            sensor_temps: &self.sensor_temps,
            counters: &self.counters,
            tripped: &self.tripped_since_decision,
            trip_unit: &self.last_trip_unit,
        };
        self.migration.observe(&obs);
        if self.time - self.last_migration < self.dtm.migration_interval {
            return;
        }
        // Migration exists to balance *thermal* load; when no sensor is
        // anywhere near the limit there is nothing to balance and a
        // migration would only cost its penalty.
        let hottest = self
            .sensor_temps
            .iter()
            .flat_map(|t| t.iter())
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if hottest < self.dtm.threshold - 4.0 {
            return;
        }
        let plan = self.migration.decide(&obs);
        self.tripped_since_decision.fill(false);
        if let Some(plan) = plan {
            debug_assert_eq!(plan.len(), self.cfg.cores);
            let mut moved = 0;
            let trip = self.dtm.stopgo_trip();
            for (core, &target) in plan.iter().enumerate() {
                if target != self.assignment[core] {
                    moved += 1;
                    self.penalty_until[core] =
                        self.penalty_until[core].max(self.time + self.dtm.migration_penalty);
                    self.thread_stats[target].migrations += 1;
                    // A stop-go stall exists to cool the core below its
                    // trip point; when the OS installs a different
                    // process on a core that has already cooled, the
                    // stall is released (it re-trips immediately if the
                    // core is still too hot).
                    let hot = self.sensor_temps[core][0].max(self.sensor_temps[core][1]);
                    if self.time < self.stall_until[core] && hot < trip {
                        self.stall_until[core] = self.time;
                    }
                }
            }
            if moved > 0 {
                self.assignment = plan;
                self.migrations += moved as u64;
                self.last_migration = self.time;
            }
        }
    }

    /// Runs until `cfg.duration` and returns the metrics.
    ///
    /// # Errors
    ///
    /// Propagates thermal-solver failures.
    pub fn run(&mut self) -> Result<RunResult, SimError> {
        while self.time < self.cfg.duration {
            self.step()?;
        }
        Ok(self.result())
    }

    /// Metrics for the simulation so far.
    pub fn result(&self) -> RunResult {
        let instructions: f64 = self.thread_stats.iter().map(|t| t.instructions).sum();
        let duration = self.time.max(f64::MIN_POSITIVE);
        RunResult {
            duration,
            cores: self.cfg.cores,
            instructions,
            duty_cycle: self.duty_acc / (self.cfg.cores as f64 * duration),
            max_temp: self.max_temp,
            emergency_time: self.emergency_time,
            migrations: self.migrations,
            dvfs_transitions: self.dvfs_transitions,
            stalls: self.stalls,
            energy: self.energy,
            robustness: Robustness {
                violation_time: self.violation_time,
                peak_overshoot: (self.max_true_temp - self.dtm.threshold).max(0.0),
                false_throttle_time: self.false_throttle_time,
                fallback_time: self.fallback_time,
                fallback_entries: self.watchdog.as_ref().map_or(0, |w| w.entries()),
                fallback_exits: self.watchdog.as_ref().map_or(0, |w| w.exits()),
                watchdog_flags: self.watchdog.as_ref().map_or(0, |w| w.flags()),
            },
            steady: self.steady_summary(),
            gain_stats: self.gain_stats(),
            phases: self.prof.as_ref().map(|p| {
                // Measured nanoseconds cover only the timed (sampled)
                // steps; scale them to whole-run estimates.
                let scale = |ns: u64| -> u64 {
                    if p.timed_steps == 0 {
                        return 0;
                    }
                    (ns as u128 * p.steps as u128 / p.timed_steps as u128) as u64
                };
                PhaseProfile {
                    steps: p.steps,
                    phases: ENGINE_PHASES
                        .iter()
                        .zip(p.phase_ns)
                        .map(|(name, ns)| PhaseNs {
                            name: (*name).to_string(),
                            ns: scale(ns),
                        })
                        .collect(),
                }
            }),
            threads: self.thread_stats.clone(),
        }
    }

    /// Effective-gain bounds and adaptation count aggregated across
    /// the run's DVFS controllers (`None` on the fixed-gain path).
    fn gain_stats(&self) -> Option<crate::metrics::GainStats> {
        if !self.dtm.has_adaptive_schedule() {
            return None;
        }
        let mut m_lo = f64::INFINITY;
        let mut m_hi = f64::NEG_INFINITY;
        let mut adaptations = 0;
        for c in &self.pi {
            let a = c
                .adaptive()
                .expect("adaptive schedule builds adaptive controllers");
            let (lo, hi) = a.multiplier_range();
            m_lo = m_lo.min(lo);
            m_hi = m_hi.max(hi);
            adaptations += a.adaptations();
        }
        Some(crate::metrics::GainStats {
            kp_min: self.dtm.pi_kp * m_lo,
            kp_max: self.dtm.pi_kp * m_hi,
            ki_min: self.dtm.pi_ki * m_lo,
            ki_max: self.dtm.pi_ki * m_hi,
            adaptations,
        })
    }

    /// Hottest-sensor summary over the second half of the steady
    /// samples (`None` before the first step).
    fn steady_summary(&self) -> Option<SteadyTempSummary> {
        if self.steady_hot.is_empty() {
            return None;
        }
        let window = &self.steady_hot[self.steady_hot.len() / 2..];
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &hot in window {
            min = min.min(hot);
            max = max.max(hot);
            sum += hot;
        }
        Some(SteadyTempSummary {
            mean: sum / window.len() as f64,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MigrationKind;
    use dtm_power::CorePowerSample;

    /// A constant synthetic trace with the register files as the main
    /// heat sources. Powers are at nominal V/f.
    fn const_trace(name: &str, int_rf: f64, fp_rf: f64, base: f64) -> Arc<PowerTrace> {
        let mut s = CorePowerSample::zero();
        // per_core order: Fetch, BPred, I$, D$, Rename, IssInt, IssFp,
        // IntRF, FpRF, Fxu, Fpu, Lsu, Bxu
        s.units = [
            base,
            base,
            base,
            base,
            base,
            base,
            base * 0.5,
            int_rf,
            fp_rf,
            base,
            base * 0.8,
            base,
            base * 0.4,
        ];
        s.l2 = 0.2;
        s.instructions = 200_000; // IPC 2
        s.int_rf_per_cycle = 10.0 * int_rf;
        s.fp_rf_per_cycle = 10.0 * fp_rf;
        Arc::new(PowerTrace::new(name, 1.0e5 / 3.6e9, vec![s]))
    }

    fn hot_int() -> Arc<PowerTrace> {
        const_trace("hot_int", 2.6, 0.2, 0.6)
    }

    fn hot_fp() -> Arc<PowerTrace> {
        const_trace("hot_fp", 0.9, 2.4, 0.6)
    }

    fn cool() -> Arc<PowerTrace> {
        const_trace("cool", 0.3, 0.05, 0.12)
    }

    /// Active but individually below the thermal limit; three of these
    /// plus one hot core heat the package enough that the hot core is
    /// thermally limited (the paper's "performance asymmetry" case).
    fn warm() -> Arc<PowerTrace> {
        const_trace("warm", 1.7, 0.3, 0.55)
    }

    fn spec(throttle: ThrottleKind, scope: Scope, migration: MigrationKind) -> PolicySpec {
        PolicySpec::new(throttle, scope, migration)
    }

    fn run_policy(policy: PolicySpec, traces: Vec<Arc<PowerTrace>>) -> RunResult {
        let mut sim =
            ThermalTimingSim::new(SimConfig::fast_test(), DtmConfig::default(), policy, traces)
                .expect("construction");
        sim.run().expect("run")
    }

    #[test]
    fn wrong_trace_count_is_rejected() {
        let err = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            PolicySpec::baseline(),
            vec![hot_int()],
        );
        assert!(matches!(err, Err(SimError::BadInput(_))));
    }

    #[test]
    fn cool_workload_runs_at_full_speed() {
        let r = run_policy(
            spec(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            vec![cool(), cool(), cool(), cool()],
        );
        assert!(r.duty_cycle > 0.99, "duty = {}", r.duty_cycle);
        assert!(r.emergency_free());
        assert_eq!(r.stalls, 0);
    }

    #[test]
    fn hot_workload_under_dvfs_is_throttled_but_emergency_free() {
        let r = run_policy(
            spec(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            vec![hot_int(), hot_int(), hot_int(), hot_int()],
        );
        assert!(
            r.duty_cycle < 0.99,
            "should throttle, duty = {}",
            r.duty_cycle
        );
        assert!(r.duty_cycle > 0.2, "duty collapsed: {}", r.duty_cycle);
        assert!(
            r.emergency_time < 0.002,
            "emergency time = {}",
            r.emergency_time
        );
        assert!(r.dvfs_transitions > 0);
    }

    #[test]
    fn hot_workload_under_stop_go_stalls() {
        let r = run_policy(
            spec(
                ThrottleKind::StopGo,
                Scope::Distributed,
                MigrationKind::None,
            ),
            vec![hot_int(), hot_int(), hot_int(), hot_int()],
        );
        assert!(r.stalls > 0);
        assert!(r.duty_cycle < 0.95);
    }

    #[test]
    fn global_stop_go_is_worse_with_asymmetric_load() {
        let asym = vec![hot_int(), warm(), warm(), warm()];
        let dist = run_policy(
            spec(
                ThrottleKind::StopGo,
                Scope::Distributed,
                MigrationKind::None,
            ),
            asym.clone(),
        );
        let global = run_policy(
            spec(ThrottleKind::StopGo, Scope::Global, MigrationKind::None),
            asym,
        );
        assert!(
            global.duty_cycle < dist.duty_cycle,
            "global {} vs dist {}",
            global.duty_cycle,
            dist.duty_cycle
        );
    }

    #[test]
    fn global_dvfs_slows_cool_cores_too() {
        let asym = vec![hot_int(), warm(), warm(), warm()];
        let dist = run_policy(
            spec(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            asym.clone(),
        );
        let global = run_policy(
            spec(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
            asym,
        );
        assert!(
            global.duty_cycle < dist.duty_cycle,
            "global {} vs dist {}",
            global.duty_cycle,
            dist.duty_cycle
        );
    }

    #[test]
    fn dvfs_beats_stop_go_on_hot_workloads() {
        let hot = vec![hot_int(), hot_fp(), hot_int(), hot_fp()];
        let sg = run_policy(
            spec(
                ThrottleKind::StopGo,
                Scope::Distributed,
                MigrationKind::None,
            ),
            hot.clone(),
        );
        let dvfs = run_policy(
            spec(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            hot,
        );
        assert!(
            dvfs.bips() > sg.bips(),
            "dvfs {} vs stop-go {}",
            dvfs.bips(),
            sg.bips()
        );
    }

    #[test]
    fn counter_migration_fires_on_mixed_workloads() {
        let mixed = vec![hot_int(), hot_int(), hot_fp(), hot_fp()];
        let r = run_policy(
            spec(
                ThrottleKind::Dvfs,
                Scope::Distributed,
                MigrationKind::CounterBased,
            ),
            mixed,
        );
        assert!(r.migrations > 0, "no migrations happened");
    }

    #[test]
    fn sensor_migration_profiles_and_migrates() {
        let mixed = vec![hot_int(), hot_int(), hot_fp(), hot_fp()];
        let r = run_policy(
            spec(
                ThrottleKind::Dvfs,
                Scope::Distributed,
                MigrationKind::SensorBased,
            ),
            mixed,
        );
        assert!(r.migrations > 0, "no migrations happened");
    }

    #[test]
    fn duty_cycle_counts_penalties_as_lost_work() {
        // A workload migrating often must lose some duty to penalties:
        // compare no-migration vs counter-based on identical traces and
        // check duty stays in a sane band.
        let mixed = vec![hot_int(), hot_int(), hot_fp(), hot_fp()];
        let r = run_policy(
            spec(
                ThrottleKind::Dvfs,
                Scope::Distributed,
                MigrationKind::CounterBased,
            ),
            mixed,
        );
        assert!(r.duty_cycle > 0.0 && r.duty_cycle <= 1.0);
    }

    #[test]
    fn unconstrained_threshold_never_throttles() {
        let r = {
            let mut sim = ThermalTimingSim::new(
                SimConfig::fast_test(),
                DtmConfig::unconstrained(),
                PolicySpec::baseline(),
                vec![hot_int(), hot_int(), hot_int(), hot_int()],
            )
            .unwrap();
            sim.run().unwrap()
        };
        assert_eq!(r.stalls, 0);
        assert!((r.duty_cycle - 1.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_records_run() {
        let mut sim = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            PolicySpec::best(),
            vec![hot_int(), hot_int(), hot_fp(), hot_fp()],
        )
        .unwrap();
        sim.attach_telemetry(Telemetry::every(36));
        sim.run().unwrap();
        let tel = sim.take_telemetry().unwrap();
        assert!(tel.records().len() > 10);
        let r = &tel.records()[0];
        assert_eq!(r.sensor_temps.len(), 4);
        assert_eq!(r.scales.len(), 4);
    }

    #[test]
    fn result_is_consistent_mid_run() {
        let mut sim = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            PolicySpec::baseline(),
            vec![cool(), cool(), cool(), cool()],
        )
        .unwrap();
        for _ in 0..100 {
            sim.step().unwrap();
        }
        let r = sim.result();
        assert_eq!(r.cores, 4);
        assert!(r.instructions > 0.0);
        assert!(r.duration > 0.0);
    }
}

#[cfg(test)]
mod energy_and_policy_tests {
    use super::*;
    use crate::migration::RotationMigration;
    use crate::policy::MigrationKind;
    use dtm_power::CorePowerSample;
    use dtm_thermal::SensorSpec;

    fn trace(int_rf: f64, fp_rf: f64, base: f64) -> Arc<PowerTrace> {
        let mut s = CorePowerSample::zero();
        s.units = [
            base,
            base,
            base,
            base,
            base,
            base,
            base * 0.5,
            int_rf,
            fp_rf,
            base,
            base * 0.8,
            base,
            base * 0.4,
        ];
        s.l2 = 0.2;
        s.instructions = 150_000;
        s.int_rf_per_cycle = 10.0 * int_rf;
        s.fp_rf_per_cycle = 10.0 * fp_rf;
        Arc::new(PowerTrace::new("t", 1.0e5 / 3.6e9, vec![s]))
    }

    fn quad(int_rf: f64, fp_rf: f64, base: f64) -> Vec<Arc<PowerTrace>> {
        (0..4).map(|_| trace(int_rf, fp_rf, base)).collect()
    }

    #[test]
    fn energy_accumulates_and_scales_with_duration() {
        let mut short = ThermalTimingSim::new(
            SimConfig {
                duration: 0.01,
                ..SimConfig::default()
            },
            DtmConfig::unconstrained(),
            PolicySpec::baseline(),
            quad(1.0, 0.2, 0.4),
        )
        .unwrap();
        let rs = short.run().unwrap();
        let mut long = ThermalTimingSim::new(
            SimConfig {
                duration: 0.02,
                ..SimConfig::default()
            },
            DtmConfig::unconstrained(),
            PolicySpec::baseline(),
            quad(1.0, 0.2, 0.4),
        )
        .unwrap();
        let rl = long.run().unwrap();
        assert!(rs.energy > 0.0);
        // Unthrottled constant workload: energy is close to linear in
        // duration (leakage drifts slightly with temperature).
        let ratio = rl.energy / rs.energy;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
        assert!(rs.avg_power() > 5.0 && rs.avg_power() < 200.0);
    }

    #[test]
    fn throttled_run_uses_less_energy_than_unthrottled() {
        let make = |dtm: DtmConfig| {
            let mut sim = ThermalTimingSim::new(
                SimConfig::fast_test(),
                dtm,
                PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
                quad(2.6, 0.2, 0.6),
            )
            .unwrap();
            sim.run().unwrap()
        };
        let throttled = make(DtmConfig::default());
        let free = make(DtmConfig::unconstrained());
        assert!(throttled.energy < free.energy);
        // And the throttled run is more efficient per instruction (cubic
        // power at sub-nominal voltage).
        assert!(
            throttled.energy_per_instruction_nj() < free.energy_per_instruction_nj(),
            "throttled EPI {} vs free {}",
            throttled.energy_per_instruction_nj(),
            free.energy_per_instruction_nj()
        );
    }

    #[test]
    fn custom_rotation_policy_can_be_injected() {
        let mut sim = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            PolicySpec::new(
                ThrottleKind::StopGo,
                Scope::Distributed,
                MigrationKind::CounterBased,
            ),
            quad(2.6, 0.3, 0.6),
        )
        .unwrap();
        sim.set_migration_policy(Box::new(RotationMigration::new()));
        let r = sim.run().unwrap();
        assert!(r.migrations > 0, "rotation never fired");
    }

    #[test]
    fn noisy_sensors_still_regulate() {
        let mut sim = ThermalTimingSim::new(
            SimConfig {
                sensor: SensorSpec {
                    noise_std: 1.0,
                    quantization: 0.5,
                    offset: 0.0,
                },
                ..SimConfig::fast_test()
            },
            DtmConfig::default(),
            PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            quad(2.6, 0.2, 0.6),
        )
        .unwrap();
        let r = sim.run().unwrap();
        // Regulation holds within the noise amplitude.
        assert!(
            r.emergency_time < 0.1 * r.duration,
            "emergency {}",
            r.emergency_time
        );
        assert!(r.duty_cycle > 0.2);
    }

    #[test]
    fn global_dvfs_keeps_cores_in_lockstep() {
        let mut sim = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            PolicySpec::new(ThrottleKind::Dvfs, Scope::Global, MigrationKind::None),
            vec![
                trace(2.6, 0.2, 0.6),
                trace(0.4, 0.1, 0.2),
                trace(0.4, 0.1, 0.2),
                trace(0.4, 0.1, 0.2),
            ],
        )
        .unwrap();
        sim.attach_telemetry(Telemetry::every(100));
        sim.run().unwrap();
        let tel = sim.take_telemetry().unwrap();
        for rec in tel.records() {
            let s0 = rec.scales[0];
            for &s in &rec.scales[1..] {
                // All cores share the single PI controller's output
                // (individual cores may be 0 when paying a penalty).
                if s > 0.0 && s0 > 0.0 {
                    assert!((s - s0).abs() < 1e-12, "scales diverged: {s} vs {s0}");
                }
            }
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::policy::MigrationKind;
    use dtm_faults::{FaultEvent, FaultKind, FaultTarget};
    use dtm_power::CorePowerSample;

    fn trace(int_rf: f64, fp_rf: f64, base: f64) -> Arc<PowerTrace> {
        let mut s = CorePowerSample::zero();
        s.units = [
            base,
            base,
            base,
            base,
            base,
            base,
            base * 0.5,
            int_rf,
            fp_rf,
            base,
            base * 0.8,
            base,
            base * 0.4,
        ];
        s.l2 = 0.2;
        s.instructions = 200_000;
        s.int_rf_per_cycle = 10.0 * int_rf;
        s.fp_rf_per_cycle = 10.0 * fp_rf;
        Arc::new(PowerTrace::new("t", 1.0e5 / 3.6e9, vec![s]))
    }

    fn quad_hot() -> Vec<Arc<PowerTrace>> {
        (0..4).map(|_| trace(2.6, 0.2, 0.6)).collect()
    }

    fn dist_dvfs() -> PolicySpec {
        PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None)
    }

    fn sim(policy: PolicySpec, faults: &FaultConfig) -> ThermalTimingSim {
        let mut sim = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            policy,
            quad_hot(),
        )
        .expect("construction");
        sim.set_fault_config(faults);
        sim
    }

    #[test]
    fn ideal_fault_config_is_bit_identical_to_fault_free() {
        // The acceptance bar for the whole subsystem: installing the
        // ideal FaultConfig must not perturb a single bit of the result,
        // so fault-free sweep cells keep their cached contents.
        let mut plain = ThermalTimingSim::new(
            SimConfig::fast_test(),
            DtmConfig::default(),
            dist_dvfs(),
            quad_hot(),
        )
        .unwrap();
        let a = plain.run().unwrap();
        let b = sim(dist_dvfs(), &FaultConfig::ideal()).run().unwrap();
        assert_eq!(a.duty_cycle.to_bits(), b.duty_cycle.to_bits());
        assert_eq!(a.max_temp.to_bits(), b.max_temp.to_bits());
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        assert_eq!(a.instructions.to_bits(), b.instructions.to_bits());
        assert_eq!(a, b);
    }

    #[test]
    fn stuck_hot_sensor_latches_fallback_within_one_control_period() {
        let fault_start = 0.01;
        let cfg = FaultConfig::protected(
            FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, fault_start),
            WatchdogConfig::enabled(),
        );
        let mut s = sim(dist_dvfs(), &cfg);
        let dt = 1.0e5 / 3.6e9;
        while s.time() < fault_start + 1.5 * dt {
            s.step().unwrap();
        }
        assert!(
            s.watchdog_fallback().unwrap()[0],
            "watchdog did not latch within one control period of the fault"
        );
        let r = s.run().unwrap();
        assert!(r.robustness.fallback_entries >= 1);
        assert!(r.robustness.watchdog_flags > 0);
        assert!(
            r.robustness.fallback_time > 0.8 * (r.duration - fault_start),
            "fallback_time {} for a permanent fault over {}",
            r.robustness.fallback_time,
            r.duration - fault_start
        );
        assert_eq!(
            r.robustness.violation_time, 0.0,
            "limp-home mode overheated"
        );
        // Limp-home clamps the chip, so throughput is sacrificed while
        // the true temperature sits safely low: false throttle time.
        assert!(r.robustness.false_throttle_time > 0.0);
    }

    #[test]
    fn stuck_cold_chip_without_watchdog_overheats() {
        // All sensors frozen at a comfortable reading, no safety net:
        // the controller sees no reason to throttle and the true
        // temperature sails past the threshold.
        let cfg = FaultConfig::unprotected(FaultScenario::new(
            "stuck-cold",
            vec![FaultEvent::permanent(
                0.0,
                FaultTarget::Chip,
                FaultKind::SensorStuck { value: 60.0 },
            )],
        ));
        let r = sim(dist_dvfs(), &cfg).run().unwrap();
        assert!(
            r.robustness.violation_time > 0.0,
            "stuck-cold sensors should cook the chip"
        );
        assert!(r.robustness.peak_overshoot > 0.0);
        assert_eq!(r.emergency_time, 0.0, "the sensors never admit it");
        assert_eq!(r.robustness.fallback_time, 0.0, "no watchdog installed");
    }

    #[test]
    fn dropout_without_watchdog_stops_throttling() {
        // NaN readings defeat every `hot >= trip` comparison: ungraceful
        // degradation by design.
        let cfg = FaultConfig::unprotected(FaultScenario::new(
            "dropout-chip",
            vec![FaultEvent::permanent(
                0.0,
                FaultTarget::Chip,
                FaultKind::SensorDropout,
            )],
        ));
        let faulty = sim(dist_dvfs(), &cfg).run().unwrap();
        let clean = sim(dist_dvfs(), &FaultConfig::ideal()).run().unwrap();
        assert!(
            faulty.duty_cycle > clean.duty_cycle,
            "blind chip should run unthrottled: {} vs {}",
            faulty.duty_cycle,
            clean.duty_cycle
        );
        assert!(faulty.robustness.violation_time > 0.0);
    }

    #[test]
    fn stopgo_last_good_fallback_trades_overshoot_for_throughput() {
        // A sensor stuck at 150 °C under distributed stop-go with no
        // watchdog stalls its core forever (the reading never drops
        // below trip). The stop-go-on-last-good fallback filters the
        // lie and keeps the core running on its last plausible
        // temperature — buying throughput at the cost of a small,
        // bounded true-temperature overshoot while the frozen last-good
        // value understates the heating.
        let policy = PolicySpec::new(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::None,
        );
        let fault_start = 0.01;
        let scenario = FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, fault_start);
        let unprotected = sim(policy, &FaultConfig::unprotected(scenario.clone()))
            .run()
            .unwrap();
        let protected = sim(
            policy,
            &FaultConfig::protected(scenario, WatchdogConfig::enabled_stopgo()),
        )
        .run()
        .unwrap();
        assert!(protected.robustness.fallback_time > 0.0);
        assert!(
            protected.duty_cycle > unprotected.duty_cycle,
            "fallback should outperform a permanently stalled core: {} vs {}",
            protected.duty_cycle,
            unprotected.duty_cycle
        );
        let exposed = protected.duration - fault_start;
        assert!(
            protected.robustness.violation_time < 0.2 * exposed,
            "overshoot must stay bounded: {} of {} s exposed",
            protected.robustness.violation_time,
            exposed
        );
    }

    #[test]
    fn gate_ignored_fault_defeats_stop_go() {
        let cfg = FaultConfig::unprotected(FaultScenario::new(
            "gate-ignored",
            vec![FaultEvent::permanent(
                0.0,
                FaultTarget::Chip,
                FaultKind::GateIgnored,
            )],
        ));
        let policy = PolicySpec::new(
            ThrottleKind::StopGo,
            Scope::Distributed,
            MigrationKind::None,
        );
        let broken = sim(policy, &cfg).run().unwrap();
        let healthy = sim(policy, &FaultConfig::ideal()).run().unwrap();
        assert!(broken.stalls > 0, "stalls are still issued and counted");
        assert!(
            broken.duty_cycle > healthy.duty_cycle,
            "ignored gates should keep the cores running: {} vs {}",
            broken.duty_cycle,
            healthy.duty_cycle
        );
        assert!(broken.robustness.violation_time > healthy.robustness.violation_time);
    }

    #[test]
    fn dvfs_stuck_core_keeps_its_pre_fault_scale() {
        let fault_start = 0.0;
        let cfg = FaultConfig::unprotected(FaultScenario::new(
            "dvfs-stuck",
            vec![FaultEvent::permanent(
                fault_start,
                FaultTarget::Core { core: 0 },
                FaultKind::DvfsStuck,
            )],
        ));
        let mut s = sim(dist_dvfs(), &cfg);
        s.attach_telemetry(Telemetry::every(36));
        s.run().unwrap();
        let tel = s.take_telemetry().unwrap();
        // Core 0's actuator froze at its initial scale (1.0); the
        // healthy cores throttle below it on this hot workload.
        let last = tel.records().last().unwrap();
        assert!(
            (last.scales[0] - 1.0).abs() < 1e-12 || last.scales[0] == 0.0,
            "stuck core should hold its pre-fault scale, got {}",
            last.scales[0]
        );
        let healthy_throttled = tel
            .records()
            .iter()
            .any(|r| r.scales[1] > 0.0 && r.scales[1] < 0.9);
        assert!(healthy_throttled, "healthy cores never throttled");
    }

    #[test]
    fn telemetry_reports_fallback_latch() {
        let cfg = FaultConfig::protected(
            FaultScenario::stuck_sensor("stuck-hot", 2, 1, 150.0, 0.01),
            WatchdogConfig::enabled(),
        );
        let mut s = sim(dist_dvfs(), &cfg);
        s.attach_telemetry(Telemetry::every(36));
        s.run().unwrap();
        let tel = s.take_telemetry().unwrap();
        assert!(tel.records().iter().all(|r| r.in_fallback.len() == 4));
        assert!(tel.records().iter().any(|r| r.in_fallback[2]));
        assert!(tel.records().iter().all(|r| !r.in_fallback[0]));
    }
}

#[cfg(test)]
mod asymmetric_tests {
    use super::*;
    use crate::policy::MigrationKind;
    use dtm_power::CorePowerSample;

    fn trace() -> Arc<PowerTrace> {
        let mut s = CorePowerSample::zero();
        s.units = [0.3; dtm_power::N_CORE_UNITS];
        s.instructions = 150_000;
        Arc::new(PowerTrace::new("t", 1.0e5 / 3.6e9, vec![s]))
    }

    #[test]
    fn asymmetric_ceilings_cap_throughput() {
        let cfg = SimConfig {
            duration: 0.01,
            core_max_scale: vec![1.0, 1.0, 0.5, 0.5],
            ..SimConfig::default()
        };
        let mut sim = ThermalTimingSim::new(
            cfg,
            DtmConfig::unconstrained(),
            PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            (0..4).map(|_| trace()).collect(),
        )
        .unwrap();
        let r = sim.run().unwrap();
        // Two full cores + two half-speed cores, unthrottled: duty = 75%.
        assert!((r.duty_cycle - 0.75).abs() < 0.01, "duty {}", r.duty_cycle);
        let full = r.threads[0].scaled_work;
        let slow = r.threads[2].scaled_work;
        assert!((slow / full - 0.5).abs() < 0.02);
    }

    #[test]
    fn mismatched_ceiling_vector_is_rejected() {
        let cfg = SimConfig {
            core_max_scale: vec![1.0, 0.5],
            ..SimConfig::fast_test()
        };
        let err = ThermalTimingSim::new(
            cfg,
            DtmConfig::default(),
            PolicySpec::baseline(),
            (0..4).map(|_| trace()).collect(),
        );
        assert!(matches!(err, Err(SimError::BadInput(_))));
    }

    #[test]
    fn out_of_range_ceiling_is_rejected() {
        let cfg = SimConfig {
            core_max_scale: vec![1.0, 1.5, 1.0, 1.0],
            ..SimConfig::fast_test()
        };
        let err = ThermalTimingSim::new(
            cfg,
            DtmConfig::default(),
            PolicySpec::baseline(),
            (0..4).map(|_| trace()).collect(),
        );
        assert!(matches!(err, Err(SimError::BadInput(_))));
    }
}
