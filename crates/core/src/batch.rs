//! Lockstep execution of many independent simulations with one batched
//! thermal phase per step.
//!
//! A sweep's cells share one floorplan and one trace sample period, so
//! their [`ThermalTimingSim`]s all advance with the same shared
//! propagator. [`LockstepBatch`] steps a group of them in lockstep:
//! every active lane runs its scalar pre-thermal phase (power assembly,
//! leakage), then one [`dtm_thermal::step_lumped_batch`] call advances
//! all lanes' temperatures at once, then every lane runs its scalar
//! post-thermal phase (sensors, accounting, control, migration,
//! telemetry). Control, policy, fault, and sensor logic are untouched —
//! only the thermal matvec is fused across lanes.
//!
//! Lanes are independent simulations (no shared mutable state — the
//! process-wide propagator cache hands out immutable `Arc`s), so the
//! interleaving across lanes cannot affect any lane's trajectory, and
//! the batched kernel is bit-identical per lane to the scalar one: a
//! lane's [`RunResult`] is byte-for-byte what its own `run()` would
//! have produced.
//!
//! **Retirement.** Lanes may have different durations: a lane retires
//! (stops stepping) as soon as its simulated time reaches its
//! configured duration, and the rest of the batch continues. **Scalar
//! fallback.** When the group is not batchable — a lane in
//! backward-Euler or latched fallback, mixed thermal configurations,
//! mixed `dt`, or profiling attached — lanes are stepped through their
//! ordinary scalar path instead, with identical results.

use crate::engine::{SimError, ThermalTimingSim};
use crate::metrics::RunResult;
use dtm_thermal::{step_lumped_batch, BatchWorkspace, TransientSolver};

/// A group of independent simulations stepped in lockstep with a
/// batched thermal phase.
///
/// # Examples
///
/// ```no_run
/// use dtm_core::{DtmConfig, LockstepBatch, PolicySpec, SimConfig, ThermalTimingSim};
/// use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TraceLibrary::new(TraceGenConfig::default());
/// let sims: Vec<ThermalTimingSim> = standard_workloads()[..3]
///     .iter()
///     .map(|w| {
///         let traces = w.resolve().iter().map(|b| lib.trace(b)).collect();
///         ThermalTimingSim::new(SimConfig::default(), DtmConfig::default(), PolicySpec::best(), traces)
///     })
///     .collect::<Result<_, _>>()?;
/// let results = LockstepBatch::new(sims).run()?;
/// assert_eq!(results.len(), 3);
/// # Ok(())
/// # }
/// ```
pub struct LockstepBatch {
    sims: Vec<ThermalTimingSim>,
    ws: BatchWorkspace,
}

impl LockstepBatch {
    /// Wraps `sims` as the lanes of one batch. Lane order is preserved
    /// in [`LockstepBatch::run`]'s results.
    pub fn new(sims: Vec<ThermalTimingSim>) -> Self {
        LockstepBatch {
            sims,
            ws: BatchWorkspace::new(),
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Runs every lane to its configured duration and returns their
    /// results in lane order.
    ///
    /// # Errors
    ///
    /// Propagates the first lane failure (the same thermal-solver
    /// errors a scalar `run` would raise); remaining lanes are left
    /// mid-flight.
    pub fn run(mut self) -> Result<Vec<RunResult>, SimError> {
        // Profiled sims must step scalar so phase timings keep their
        // meaning; mixed sample periods cannot share a lockstep clock.
        // Either way the scalar path produces identical physics.
        let profiled = self.sims.iter().any(|s| s.is_profiled());
        let mixed_dt = {
            let mut dts = self.sims.iter_mut().map(|s| s.thermal_lane().2.to_bits());
            let first = dts.next();
            dts.any(|d| Some(d) != first)
        };
        if profiled || mixed_dt {
            return self.sims.iter_mut().map(|s| s.run()).collect();
        }

        let mut active: Vec<usize> = (0..self.sims.len())
            .filter(|&i| self.sims[i].lane_active())
            .collect();
        while !active.is_empty() {
            for &i in &active {
                let mut clk = self.sims[i].begin_clock();
                self.sims[i].step_pre_thermal(&mut clk);
            }

            // ---- Batched thermal phase over the active lanes ----
            {
                let mut want = active.iter().copied().peekable();
                let mut lanes: Vec<(&mut TransientSolver, &[f64])> =
                    Vec::with_capacity(active.len());
                let mut dt = 0.0;
                for (i, sim) in self.sims.iter_mut().enumerate() {
                    if want.peek() == Some(&i) {
                        want.next();
                        let (solver, power, lane_dt) = sim.thermal_lane();
                        dt = lane_dt;
                        lanes.push((solver, power));
                    }
                }
                if !step_lumped_batch(&mut lanes, dt, &mut self.ws)? {
                    // Not batchable (fallback lane, mixed configs, or a
                    // single survivor): scalar thermal steps instead.
                    drop(lanes);
                    for &i in &active {
                        let (solver, power, lane_dt) = self.sims[i].thermal_lane();
                        solver.step(power, lane_dt)?;
                    }
                }
            }

            for &i in &active {
                let mut clk = None;
                self.sims[i].step_post_thermal(&mut clk);
            }
            // Independent retirement: a lane whose trace (duration) has
            // ended drops out; the batch narrows and keeps going.
            active.retain(|&i| self.sims[i].lane_active());
        }
        Ok(self.sims.iter().map(|s| s.result()).collect())
    }
}

impl std::fmt::Debug for LockstepBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockstepBatch")
            .field("lanes", &self.sims.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DtmConfig, SimConfig};
    use crate::policy::{MigrationKind, PolicySpec, Scope, ThrottleKind};
    use dtm_power::{CorePowerSample, PowerTrace};
    use dtm_thermal::SolverBackend;
    use std::sync::Arc;

    fn const_trace(name: &str, int_rf: f64, fp_rf: f64, base: f64) -> Arc<PowerTrace> {
        let mut s = CorePowerSample::zero();
        s.units = [
            base,
            base,
            base,
            base,
            base,
            base,
            base * 0.5,
            int_rf,
            fp_rf,
            base,
            base * 0.8,
            base,
            base * 0.4,
        ];
        s.l2 = 0.2;
        s.instructions = 200_000;
        s.int_rf_per_cycle = 10.0 * int_rf;
        s.fp_rf_per_cycle = 10.0 * fp_rf;
        Arc::new(PowerTrace::new(name, 1.0e5 / 3.6e9, vec![s]))
    }

    fn traces(kind: usize) -> Vec<Arc<PowerTrace>> {
        let t = match kind {
            0 => const_trace("hot_int", 2.6, 0.2, 0.6),
            1 => const_trace("warm", 1.7, 0.3, 0.55),
            _ => const_trace("cool", 0.3, 0.05, 0.12),
        };
        vec![t.clone(), t.clone(), t.clone(), t]
    }

    fn build(policy: PolicySpec, kind: usize, cfg: SimConfig) -> ThermalTimingSim {
        ThermalTimingSim::new(cfg, DtmConfig::default(), policy, traces(kind)).expect("build")
    }

    fn policies() -> [PolicySpec; 3] {
        [
            PolicySpec::new(ThrottleKind::Dvfs, Scope::Distributed, MigrationKind::None),
            PolicySpec::new(
                ThrottleKind::StopGo,
                Scope::Global,
                MigrationKind::CounterBased,
            ),
            PolicySpec::new(
                ThrottleKind::Dvfs,
                Scope::Global,
                MigrationKind::SensorBased,
            ),
        ]
    }

    #[test]
    fn lockstep_results_are_bit_identical_to_scalar_runs() {
        let cfg = SimConfig::fast_test();
        let sims: Vec<ThermalTimingSim> = policies()
            .iter()
            .enumerate()
            .map(|(k, &p)| build(p, k, cfg.clone()))
            .collect();
        let batched = LockstepBatch::new(sims).run().expect("batched run");
        for (k, &p) in policies().iter().enumerate() {
            let scalar = build(p, k, cfg.clone()).run().expect("scalar run");
            assert_eq!(
                format!("{:?}", batched[k]),
                format!("{scalar:?}"),
                "lane {k} diverged from its scalar run"
            );
        }
    }

    #[test]
    fn lanes_retire_independently_when_durations_differ() {
        let mut short_cfg = SimConfig::fast_test();
        short_cfg.duration = 0.01;
        let long_cfg = SimConfig::fast_test(); // 0.05 s
        let p = policies()[0];
        let sims = vec![
            build(p, 0, short_cfg.clone()),
            build(p, 1, long_cfg.clone()),
            build(p, 2, long_cfg.clone()),
        ];
        let batched = LockstepBatch::new(sims).run().expect("batched run");
        assert!(batched[0].duration < 0.011, "short lane over-ran");
        assert!(batched[1].duration > 0.049, "long lane under-ran");
        for (k, (kind, cfg)) in [(0, &short_cfg), (1, &long_cfg), (2, &long_cfg)]
            .into_iter()
            .enumerate()
        {
            let scalar = build(p, kind, cfg.clone()).run().expect("scalar run");
            assert_eq!(
                format!("{:?}", batched[k]),
                format!("{scalar:?}"),
                "lane {k} diverged after mid-batch retirement"
            );
        }
    }

    #[test]
    fn backward_euler_lane_falls_back_scalar_with_identical_results() {
        let mut be_cfg = SimConfig::fast_test();
        be_cfg.duration = 0.01;
        be_cfg.thermal_solver = SolverBackend::BackwardEuler;
        let mut prop_cfg = SimConfig::fast_test();
        prop_cfg.duration = 0.01;
        let p = policies()[0];
        let sims = vec![build(p, 0, be_cfg.clone()), build(p, 1, prop_cfg.clone())];
        let batched = LockstepBatch::new(sims).run().expect("batched run");
        let s0 = build(p, 0, be_cfg).run().expect("scalar");
        let s1 = build(p, 1, prop_cfg).run().expect("scalar");
        assert_eq!(format!("{:?}", batched[0]), format!("{s0:?}"));
        assert_eq!(format!("{:?}", batched[1]), format!("{s1:?}"));
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let results = LockstepBatch::new(Vec::new()).run().expect("empty run");
        assert!(results.is_empty());
    }
}
