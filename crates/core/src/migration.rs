//! OS-level thread-migration policies (the taxonomy's third axis).
//!
//! Both policies implement the decision algorithm of Figure 4 — sort
//! cores by critical-hotspot imbalance, then greedily match each core
//! with the least-intense remaining thread for its critical hotspot —
//! and differ only in how per-thread hotspot *intensities* are estimated:
//!
//! - [`CounterMigration`] uses performance-counter proxies (register-file
//!   accesses per adjusted cycle).
//! - [`SensorMigration`] maintains the OS thread×core thermal-trend table
//!   of Figure 6, filled from the inner PI loop's temperature telemetry
//!   (scaled by the cubic DVFS relation), and profiles unseen
//!   thread/core pairs by rotating assignments until the table supports
//!   estimating every combination.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of the integer-RF sensor in per-core sensor arrays.
pub const HOTSPOT_INT: usize = 0;
/// Index of the FP-RF sensor in per-core sensor arrays.
pub const HOTSPOT_FP: usize = 1;

/// Windowed performance-counter state for one thread, maintained by the
/// simulator from the thread's consumed trace samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Integer register-file accesses per (adjusted) cycle.
    pub int_rf_per_cycle: f64,
    /// FP register-file accesses per (adjusted) cycle.
    pub fp_rf_per_cycle: f64,
}

impl ThreadCounters {
    /// The counter proxy for a hotspot unit.
    pub fn intensity(&self, unit: usize) -> f64 {
        match unit {
            HOTSPOT_INT => self.int_rf_per_cycle,
            HOTSPOT_FP => self.fp_rf_per_cycle,
            _ => panic!("unknown hotspot unit index {unit}"),
        }
    }
}

/// Everything the OS sees at a timer interrupt.
#[derive(Debug, Clone)]
pub struct OsObservation<'a> {
    /// Current simulation time (s).
    pub time: f64,
    /// Core → thread assignment.
    pub assignment: &'a [usize],
    /// Per-core current frequency scale factor (0 when stalled).
    pub scale: &'a [f64],
    /// Per-core hotspot sensor readings `[int_rf, fp_rf]` (°C).
    pub sensor_temps: &'a [[f64; 2]],
    /// Per-thread windowed counters.
    pub counters: &'a [ThreadCounters],
    /// Per-core: did the local thermal control signal a trip (stop-go
    /// stall) since the last migration decision? A mid-stall core reads
    /// cool, so without this signal the OS would mistake the most
    /// thermally troubled cores for the healthiest ones.
    pub tripped: &'a [bool],
    /// The hotspot unit that caused each core's most recent trip
    /// (meaningful where `tripped` is set).
    pub trip_unit: &'a [usize],
}

impl OsObservation<'_> {
    /// The hotter sensor index (critical hotspot) of a core; for a core
    /// that tripped since the last decision, the unit that tripped it.
    pub fn critical_unit(&self, core: usize) -> usize {
        if self.tripped[core] {
            return self.trip_unit[core];
        }
        let t = self.sensor_temps[core];
        if t[HOTSPOT_INT] >= t[HOTSPOT_FP] {
            HOTSPOT_INT
        } else {
            HOTSPOT_FP
        }
    }

    /// Hotspot imbalance of a core: critical minus secondary hotspot
    /// temperature (Figure 4's sort key).
    pub fn imbalance(&self, core: usize) -> f64 {
        let t = self.sensor_temps[core];
        (t[HOTSPOT_INT] - t[HOTSPOT_FP]).abs()
    }
}

/// A migration policy: observes the chip at OS ticks and occasionally
/// proposes a new core→thread assignment.
pub trait MigrationPolicy: std::fmt::Debug + Send {
    /// Called when the OS is willing to migrate (the engine enforces the
    /// 10 ms rate limit). Returns a proposed assignment or `None`.
    fn decide(&mut self, obs: &OsObservation<'_>) -> Option<Vec<usize>>;

    /// Called every OS tick regardless of migration eligibility, letting
    /// policies accumulate telemetry.
    fn observe(&mut self, _obs: &OsObservation<'_>) {}
}

/// The no-migration base case.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMigration;

impl MigrationPolicy for NoMigration {
    fn decide(&mut self, _obs: &OsObservation<'_>) -> Option<Vec<usize>> {
        None
    }
}

/// Figure 4's greedy matching: cores in order of decreasing hotspot
/// imbalance each claim the remaining thread with the least intensity
/// for their critical hotspot. `intensity(thread, core, unit)` supplies
/// the estimate.
///
/// The incumbent thread of each core receives a 20 % intensity discount:
/// "in some cases, the best candidate for a thread to migrate will be
/// itself, in which case a migration is not done" — the discount keeps
/// near-tied estimates from churning the whole assignment every
/// decision interval.
fn greedy_assignment<F>(obs: &OsObservation<'_>, intensity: F) -> Vec<usize>
where
    F: Fn(usize, usize, usize) -> f64,
{
    let n = obs.assignment.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Tripped cores are the most thermally troubled regardless of their
    // (mid-stall, cooled) sensor readings; they sort first.
    let key = |c: usize| obs.imbalance(c) + if obs.tripped[c] { 1e3 } else { 0.0 };
    order.sort_by(|&a, &b| key(b).total_cmp(&key(a)));

    let mut remaining: Vec<usize> = obs.assignment.to_vec();
    let mut out = vec![usize::MAX; n];
    for &core in &order {
        let unit = obs.critical_unit(core);
        let incumbent = obs.assignment[core];
        let score = |t: usize| {
            let raw = intensity(t, core, unit);
            if t == incumbent {
                raw - 0.2 * raw.abs()
            } else {
                raw
            }
        };
        let (pos, &thread) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &t1), (_, &t2)| score(t1).total_cmp(&score(t2)))
            .expect("one thread per core");
        out[core] = thread;
        remaining.swap_remove(pos);
    }
    out
}

/// Tracks each core's critical hotspot across decisions, implementing
/// the paper's trigger: "migration decisions are actuated when the local
/// thermal control of at least two individual cores signals that their
/// critical hotspots have changed".
#[derive(Debug, Clone, Default)]
struct CriticalTracker {
    last: Vec<usize>,
}

impl CriticalTracker {
    /// Returns whether a decision should fire now, updating the
    /// remembered critical hotspots. The first call always fires.
    fn should_fire(&mut self, obs: &OsObservation<'_>) -> bool {
        let current: Vec<usize> = (0..obs.assignment.len())
            .map(|c| obs.critical_unit(c))
            .collect();
        if self.last.is_empty() {
            self.last = current;
            return true;
        }
        let changed = current
            .iter()
            .zip(&self.last)
            .filter(|(a, b)| a != b)
            .count();
        self.last = current;
        changed >= 2
    }
}

/// Performance-counter-based migration (§6.1).
#[derive(Debug, Clone, Default)]
pub struct CounterMigration {
    tracker: CriticalTracker,
}

impl CounterMigration {
    /// Creates the policy.
    pub fn new() -> Self {
        CounterMigration::default()
    }
}

impl MigrationPolicy for CounterMigration {
    fn decide(&mut self, obs: &OsObservation<'_>) -> Option<Vec<usize>> {
        let fire = self.tracker.should_fire(obs) || obs.tripped.iter().any(|&t| t);
        if !fire {
            return None;
        }
        let proposal = greedy_assignment(obs, |t, _core, unit| obs.counters[t].intensity(unit));
        if proposal == obs.assignment {
            None
        } else {
            Some(proposal)
        }
    }
}

/// A fixed-cadence round-robin rotation, in the spirit of
/// activity-migration / "heat-and-run" proposals the paper compares
/// against (Heo et al., Powell et al.): every eligible decision it
/// shifts every thread to the next core, regardless of temperatures.
///
/// Not part of the paper's taxonomy — provided as a comparison baseline
/// to quantify what the Figure-4 *informed* matching adds over blind
/// rotation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RotationMigration;

impl RotationMigration {
    /// Creates the policy.
    pub fn new() -> Self {
        RotationMigration
    }
}

impl MigrationPolicy for RotationMigration {
    fn decide(&mut self, obs: &OsObservation<'_>) -> Option<Vec<usize>> {
        let n = obs.assignment.len();
        Some((0..n).map(|c| obs.assignment[(c + 1) % n]).collect())
    }
}

/// Accumulated thermal-trend statistics for one (thread, core) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct TrendStat {
    sum: [f64; 2],
    n: u32,
}

impl TrendStat {
    fn mean(&self, unit: usize) -> Option<f64> {
        (self.n > 0).then(|| self.sum[unit] / self.n as f64)
    }
}

/// Sensor-based migration (§6.3, Figure 6).
///
/// The OS maintains a thread×core table of thermal trends. Each OS tick,
/// the per-core intensity observed for the thread running there —
/// combining the hotspot's elevation over the chip mean with its slope,
/// both normalized by the cubic DVFS relation — is folded into the
/// table. When the table cannot yet estimate every thread-core
/// combination, migration targets are set to profile more (a rotation);
/// once coverage is sufficient, an additive thread+core-effects model
/// estimates all combinations and Figure 4's algorithm runs on the
/// estimates.
#[derive(Debug, Clone)]
pub struct SensorMigration {
    table: HashMap<(usize, usize), TrendStat>,
    last_temps: Vec<[f64; 2]>,
    last_assignment: Vec<usize>,
    last_time: f64,
    min_samples_per_pair: u32,
    tracker: CriticalTracker,
}

impl SensorMigration {
    /// Creates the policy; `min_samples_per_pair` OS ticks of data are
    /// required before a (thread, core) cell counts as profiled.
    pub fn new(min_samples_per_pair: u32) -> Self {
        SensorMigration {
            table: HashMap::new(),
            last_temps: Vec::new(),
            last_assignment: Vec::new(),
            last_time: f64::NAN,
            min_samples_per_pair: min_samples_per_pair.max(1),
            tracker: CriticalTracker::default(),
        }
    }

    /// Number of profiled (thread, core) cells.
    pub fn profiled_pairs(&self) -> usize {
        self.table
            .values()
            .filter(|s| s.n >= self.min_samples_per_pair)
            .count()
    }

    /// Whether the table supports estimating every thread-core
    /// combination: each thread profiled on at least one core and each
    /// core profiled with at least one thread (the additive model then
    /// fills in the rest).
    fn coverage_ok(&self, n_threads: usize, n_cores: usize) -> bool {
        let profiled = |t: usize, c: usize| {
            self.table
                .get(&(t, c))
                .is_some_and(|s| s.n >= self.min_samples_per_pair)
        };
        (0..n_threads).all(|t| (0..n_cores).any(|c| profiled(t, c)))
            && (0..n_cores).all(|c| (0..n_threads).any(|t| profiled(t, c)))
    }
}

impl MigrationPolicy for SensorMigration {
    fn observe(&mut self, obs: &OsObservation<'_>) {
        let n_cores = obs.assignment.len();
        if self.last_temps.len() == n_cores && self.last_time.is_finite() {
            let dt = obs.time - self.last_time;
            if dt > 0.0 {
                let chip_mean: f64 = obs.sensor_temps.iter().flat_map(|t| t.iter()).sum::<f64>()
                    / (2 * n_cores) as f64;
                for core in 0..n_cores {
                    // Attribute the interval to the thread only if it ran
                    // on this core for the whole tick.
                    if self.last_assignment.get(core) != Some(&obs.assignment[core]) {
                        continue;
                    }
                    let s = obs.scale[core];
                    if s < 1e-6 {
                        continue; // stalled: no thermal signal to attribute
                    }
                    let s3 = s * s * s;
                    let thread = obs.assignment[core];
                    let stat = self.table.entry((thread, core)).or_default();
                    for unit in 0..2 {
                        let level = obs.sensor_temps[core][unit] - chip_mean;
                        let slope =
                            (obs.sensor_temps[core][unit] - self.last_temps[core][unit]) / dt;
                        // Intensity: level plus slope weighted by a
                        // thermal-time-constant-scale window (10 ms),
                        // normalized by the cubic frequency relation.
                        stat.sum[unit] += (level + 0.01 * slope) / s3;
                        stat.n += 1;
                    }
                }
            }
        }
        self.last_temps = obs.sensor_temps.to_vec();
        self.last_assignment = obs.assignment.to_vec();
        self.last_time = obs.time;
    }

    fn decide(&mut self, obs: &OsObservation<'_>) -> Option<Vec<usize>> {
        let n_cores = obs.assignment.len();
        let n_threads = obs.counters.len();
        let fire = self.tracker.should_fire(obs) || obs.tripped.iter().any(|&t| t);
        if !self.coverage_ok(n_threads, n_cores) {
            // Insufficient profiling data: rotate assignments to fill the
            // thread-core thermal table (Figure 6's "profile more" arm).
            let rotated = (0..n_cores)
                .map(|c| obs.assignment[(c + 1) % n_cores])
                .collect();
            return Some(rotated);
        }
        if !fire {
            return None;
        }
        // Coverage is sufficient: fit the additive model and estimate
        // every (thread, core, unit) intensity.
        let min_n = self.min_samples_per_pair;
        let fit = |unit: usize| -> (Vec<f64>, Vec<f64>) {
            let mut thread_eff = vec![0.0f64; n_threads];
            let mut core_eff = vec![0.0f64; n_cores];
            for _ in 0..4 {
                for (t, te) in thread_eff.iter_mut().enumerate() {
                    let (mut acc, mut n) = (0.0, 0);
                    for (c, ce) in core_eff.iter().enumerate() {
                        if let Some(v) = self
                            .table
                            .get(&(t, c))
                            .filter(|s| s.n >= min_n)
                            .and_then(|s| s.mean(unit))
                        {
                            acc += v - ce;
                            n += 1;
                        }
                    }
                    if n > 0 {
                        *te = acc / n as f64;
                    }
                }
                for (c, ce) in core_eff.iter_mut().enumerate() {
                    let (mut acc, mut n) = (0.0, 0);
                    for (t, te) in thread_eff.iter().enumerate() {
                        if let Some(v) = self
                            .table
                            .get(&(t, c))
                            .filter(|s| s.n >= min_n)
                            .and_then(|s| s.mean(unit))
                        {
                            acc += v - te;
                            n += 1;
                        }
                    }
                    if n > 0 {
                        *ce = acc / n as f64;
                    }
                }
            }
            (thread_eff, core_eff)
        };
        let (int_t, int_c) = fit(HOTSPOT_INT);
        let (fp_t, fp_c) = fit(HOTSPOT_FP);
        let proposal = greedy_assignment(obs, |t, c, unit| match unit {
            HOTSPOT_INT => int_t[t] + int_c[c],
            _ => fp_t[t] + fp_c[c],
        });
        if proposal == obs.assignment {
            None
        } else {
            Some(proposal)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs<'a>(
        assignment: &'a [usize],
        scale: &'a [f64],
        temps: &'a [[f64; 2]],
        counters: &'a [ThreadCounters],
    ) -> OsObservation<'a> {
        OsObservation {
            time: 0.1,
            assignment,
            scale,
            sensor_temps: temps,
            counters,
            tripped: &[false; 4][..assignment.len().min(4)],
            trip_unit: &[0; 4][..assignment.len().min(4)],
        }
    }

    fn counters4() -> Vec<ThreadCounters> {
        vec![
            // thread 0: int-heavy (gzip-like)
            ThreadCounters {
                int_rf_per_cycle: 5.0,
                fp_rf_per_cycle: 0.1,
            },
            // thread 1: moderate int
            ThreadCounters {
                int_rf_per_cycle: 3.0,
                fp_rf_per_cycle: 0.1,
            },
            // thread 2: fp-heavy (lucas-like)
            ThreadCounters {
                int_rf_per_cycle: 1.0,
                fp_rf_per_cycle: 4.0,
            },
            // thread 3: cool (mcf-like)
            ThreadCounters {
                int_rf_per_cycle: 0.8,
                fp_rf_per_cycle: 0.05,
            },
        ]
    }

    #[test]
    fn no_migration_never_proposes() {
        let assignment = [0, 1, 2, 3];
        let scale = [1.0; 4];
        let temps = [[90.0, 60.0]; 4];
        let c = counters4();
        assert!(NoMigration
            .decide(&obs(&assignment, &scale, &temps, &c))
            .is_none());
    }

    #[test]
    fn counter_migration_swaps_hot_int_thread_away() {
        // Core 0 runs the int-heavy thread and its int RF is critical and
        // imbalanced; core 2 runs the fp-heavy thread with an fp-critical
        // hotspot. The best matching sends the least-int-intense thread
        // to core 0 and the least-fp-intense to core 2.
        let assignment = [0, 1, 2, 3];
        let scale = [1.0; 4];
        let temps = [
            [84.0, 60.0], // int-critical, very imbalanced
            [75.0, 62.0],
            [63.0, 83.0], // fp-critical, very imbalanced
            [60.0, 58.0],
        ];
        let c = counters4();
        let plan = CounterMigration::new()
            .decide(&obs(&assignment, &scale, &temps, &c))
            .expect("should migrate");
        // Core 0's int hotspot gets the lowest-int thread (3: mcf-like).
        assert_eq!(plan[0], 3);
        // Core 2's fp hotspot must not keep the fp-heavy thread 2.
        assert_ne!(plan[2], 2);
        // Every thread appears exactly once.
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn counter_migration_is_stable_when_already_optimal() {
        // Cool chip, balanced temps, assignment already matches: the
        // greedy pass should reproduce the current mapping (every core's
        // claimed thread is its own) and return None... but ties may
        // reorder; verify at minimum that a balanced situation with
        // strongly distinct intensities where current placement is
        // optimal yields no churn.
        let assignment = [3, 1, 2, 0];
        let scale = [1.0; 4];
        let temps = [
            [80.0, 55.0], // int critical ⇒ wants lowest int thread (3) ✓
            [70.0, 60.0],
            [55.0, 78.0], // fp critical ⇒ wants low fp: thread 2 is worst
            [65.0, 56.0],
        ];
        let mut c = counters4();
        // Make thread 2 the *least* fp-intense so core 2 keeps it.
        c[2].fp_rf_per_cycle = 0.01;
        let plan = CounterMigration::new().decide(&obs(&assignment, &scale, &temps, &c));
        if let Some(p) = &plan {
            // If a plan is emitted it must be a permutation.
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn critical_unit_and_imbalance() {
        let assignment = [0];
        let scale = [1.0];
        let temps = [[70.0, 75.0]];
        let c = vec![ThreadCounters::default()];
        let o = obs(&assignment, &scale, &temps, &c);
        assert_eq!(o.critical_unit(0), HOTSPOT_FP);
        assert!((o.imbalance(0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sensor_migration_profiles_first() {
        // With an empty table the policy must propose a profiling
        // rotation rather than a matching.
        let assignment = [0, 1, 2, 3];
        let scale = [1.0; 4];
        let temps = [[70.0, 60.0]; 4];
        let c = counters4();
        let plan = SensorMigration::new(3)
            .decide(&obs(&assignment, &scale, &temps, &c))
            .expect("profiling rotation expected");
        assert_eq!(plan, vec![1, 2, 3, 0]);
    }

    #[test]
    fn sensor_migration_learns_thread_intensities() {
        // Feed synthetic observations: thread 0 always shows a hot int
        // RF wherever it runs; thread 2 a hot fp RF. After profiling,
        // the policy's estimates should assign like the counter policy.
        let mut pol = SensorMigration::new(2);
        let scale = [1.0; 4];
        let c = counters4();
        // Rotate threads over cores, observing each placement 4 ticks.
        for rot in 0..4usize {
            let assignment: Vec<usize> = (0..4).map(|core| (core + rot) % 4).collect();
            for tick in 0..5 {
                let temps: Vec<[f64; 2]> = assignment
                    .iter()
                    .map(|&t| match t {
                        0 => [82.0, 58.0],
                        1 => [74.0, 58.0],
                        2 => [60.0, 80.0],
                        _ => [56.0, 54.0],
                    })
                    .collect();
                let o = OsObservation {
                    time: rot as f64 * 0.01 + tick as f64 * 1e-3,
                    assignment: &assignment,
                    scale: &scale,
                    sensor_temps: &temps,
                    counters: &c,
                    tripped: &[false; 4],
                    trip_unit: &[0; 4],
                };
                pol.observe(&o);
            }
        }
        assert!(
            pol.profiled_pairs() >= 8,
            "pairs = {}",
            pol.profiled_pairs()
        );
        // Now: core 0 int-critical imbalanced, currently running thread 0.
        let assignment = [0, 1, 2, 3];
        let temps = [[84.0, 60.0], [74.0, 60.0], [60.0, 82.0], [56.0, 54.0]];
        let plan = pol
            .decide(&obs(&assignment, &scale, &temps, &c))
            .expect("should migrate");
        // The int-critical core must not keep the int-hottest thread 0.
        assert_ne!(plan[0], 0);
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn observe_skips_stalled_cores() {
        let mut pol = SensorMigration::new(1);
        let assignment = [0, 1];
        let scale = [0.0, 1.0];
        let temps = [[70.0, 60.0], [72.0, 61.0]];
        let c = vec![ThreadCounters::default(); 2];
        let o1 = OsObservation {
            time: 0.001,
            assignment: &assignment,
            scale: &scale,
            sensor_temps: &temps,
            counters: &c,
            tripped: &[false; 2],
            trip_unit: &[0; 2],
        };
        pol.observe(&o1);
        let o2 = OsObservation {
            time: 0.002,
            assignment: &assignment,
            scale: &scale,
            sensor_temps: &temps,
            counters: &c,
            tripped: &[false; 2],
            trip_unit: &[0; 2],
        };
        pol.observe(&o2);
        // Core 0 stalled: only the (thread 1, core 1) pair is recorded.
        assert_eq!(pol.profiled_pairs(), 1);
    }

    #[test]
    fn incumbency_discount_prevents_churn_on_ties() {
        // All threads identical: the greedy must keep the current
        // assignment (each core's incumbent wins its tie).
        let assignment = [0, 1, 2, 3];
        let scale = [1.0; 4];
        let temps = [[80.0, 70.0]; 4];
        let c = vec![
            ThreadCounters {
                int_rf_per_cycle: 3.0,
                fp_rf_per_cycle: 1.0,
            };
            4
        ];
        let plan = CounterMigration::new().decide(&obs(&assignment, &scale, &temps, &c));
        assert!(plan.is_none(), "identical threads must not churn: {plan:?}");
    }

    #[test]
    fn trip_signal_overrides_cool_sensor_reading() {
        // Core 0 is mid-stall and reads cool, but it tripped on its int
        // RF since the last decision: it must sort first and use the
        // trip unit as its critical hotspot.
        let assignment = [0, 1, 2, 3];
        let scale = [0.0, 1.0, 1.0, 1.0];
        let temps = [
            [70.0, 69.0], // cooled during stall
            [80.0, 70.0],
            [78.0, 70.0],
            [76.0, 70.0],
        ];
        let c = counters4();
        let tripped = [true, false, false, false];
        let trip_unit = [HOTSPOT_INT, 0, 0, 0];
        let o = OsObservation {
            time: 0.1,
            assignment: &assignment,
            scale: &scale,
            sensor_temps: &temps,
            counters: &c,
            tripped: &tripped,
            trip_unit: &trip_unit,
        };
        assert_eq!(o.critical_unit(0), HOTSPOT_INT);
        let plan = CounterMigration::new()
            .decide(&o)
            .expect("trip forces a decision");
        // The tripped core must shed its int-heavy thread 0 for the
        // least-int-intense candidate (thread 3).
        assert_eq!(plan[0], 3);
    }

    #[test]
    fn no_trips_and_stable_criticals_suppress_decisions() {
        // Second call with unchanged criticals and no trips: the
        // tracker must suppress the decision entirely.
        let assignment = [0, 1, 2, 3];
        let scale = [1.0; 4];
        let temps = [[84.0, 60.0], [75.0, 62.0], [63.0, 83.0], [60.0, 58.0]];
        let c = counters4();
        let mut pol = CounterMigration::new();
        let first = pol.decide(&obs(&assignment, &scale, &temps, &c));
        assert!(first.is_some(), "first decision always fires");
        let second = pol.decide(&obs(&assignment, &scale, &temps, &c));
        assert!(second.is_none(), "no new signals: must stay quiet");
    }

    #[test]
    fn rotation_always_shifts_by_one() {
        let assignment = [2, 0, 3, 1];
        let scale = [1.0; 4];
        let temps = [[70.0, 60.0]; 4];
        let c = counters4();
        let plan = RotationMigration::new()
            .decide(&obs(&assignment, &scale, &temps, &c))
            .expect("always proposes");
        assert_eq!(plan, vec![0, 3, 1, 2]);
    }

    #[test]
    fn thread_counters_intensity_lookup() {
        let t = ThreadCounters {
            int_rf_per_cycle: 2.0,
            fp_rf_per_cycle: 3.0,
        };
        assert_eq!(t.intensity(HOTSPOT_INT), 2.0);
        assert_eq!(t.intensity(HOTSPOT_FP), 3.0);
    }

    #[test]
    #[should_panic(expected = "unknown hotspot")]
    fn bad_unit_index_panics() {
        ThreadCounters::default().intensity(7);
    }
}
