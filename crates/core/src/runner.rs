//! High-level experiment driver: workloads × policies → metrics.

use crate::config::{DtmConfig, SimConfig};
use crate::engine::{SimError, ThermalTimingSim};
use crate::metrics::RunResult;
pub use crate::metrics::SteadyTempSummary;
use crate::policy::PolicySpec;
use crate::telemetry::Telemetry;
use dtm_faults::FaultConfig;
use dtm_obs::ObsHandle;
use dtm_workloads::{Benchmark, TraceLibrary, Workload};
use std::sync::Arc;

/// A reusable experiment context: one trace library plus the simulation
/// and DTM configurations shared by all runs.
///
/// The trace library sits behind an [`Arc`], so contexts are cheap to
/// derive from one another (see [`Experiment::with_dtm`] and
/// [`Experiment::new_shared`]) and the whole context is `Send + Sync`:
/// the `dtm-harness` sweep engine shares one `Experiment` read-only
/// across its worker threads.
///
/// # Examples
///
/// ```no_run
/// use dtm_core::{Experiment, PolicySpec};
/// use dtm_workloads::standard_workloads;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let exp = Experiment::paper_defaults();
/// let w = &standard_workloads()[0];
/// let baseline = exp.run(w, PolicySpec::baseline())?;
/// let best = exp.run(w, PolicySpec::best())?;
/// println!("speedup: {:.2}×", best.relative_throughput(&baseline));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    lib: Arc<TraceLibrary>,
    sim: SimConfig,
    dtm: DtmConfig,
    faults: FaultConfig,
    obs: ObsHandle,
}

impl Experiment {
    /// Creates a context with explicit configurations.
    pub fn new(lib: TraceLibrary, sim: SimConfig, dtm: DtmConfig) -> Self {
        Experiment::new_shared(Arc::new(lib), sim, dtm)
    }

    /// Creates a context sharing an existing trace library. Deriving
    /// many contexts (config sweeps, per-variant overrides) from one
    /// library means every variant reuses the same generated traces.
    pub fn new_shared(lib: Arc<TraceLibrary>, sim: SimConfig, dtm: DtmConfig) -> Self {
        Experiment {
            lib,
            sim,
            dtm,
            faults: FaultConfig::ideal(),
            obs: ObsHandle::disabled(),
        }
    }

    /// The study's configuration: 4 cores, 0.5 s runs, 84.2 °C limit.
    /// Traces are cached on disk under `target/trace-cache` so repeated
    /// experiment processes skip regeneration.
    pub fn paper_defaults() -> Self {
        Experiment::new(
            TraceLibrary::default().with_disk_cache("target/trace-cache"),
            SimConfig::default(),
            DtmConfig::default(),
        )
    }

    /// A fast configuration for tests: short traces and runs.
    pub fn fast_test() -> Self {
        Experiment::new(
            TraceLibrary::new(dtm_workloads::TraceGenConfig::fast_test()),
            SimConfig::fast_test(),
            DtmConfig::default(),
        )
    }

    /// The trace library (exposed for cache pre-warming).
    pub fn library(&self) -> &TraceLibrary {
        &self.lib
    }

    /// A shared handle to the trace library, for building sibling
    /// contexts over the same traces.
    pub fn library_shared(&self) -> Arc<TraceLibrary> {
        Arc::clone(&self.lib)
    }

    /// Replaces the simulation configuration (e.g. for duration or
    /// sensor-noise sweeps), keeping the shared trace library.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// The simulation configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// The DTM configuration.
    pub fn dtm_config(&self) -> &DtmConfig {
        &self.dtm
    }

    /// Replaces the DTM configuration (e.g. for threshold sweeps).
    pub fn with_dtm(mut self, dtm: DtmConfig) -> Self {
        self.dtm = dtm;
        self
    }

    /// Replaces the robustness configuration (fault scenario plus
    /// watchdog) applied to every simulator this context builds. The
    /// default is [`FaultConfig::ideal`], which leaves the simulator
    /// bit-identical to a fault-unaware build.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The robustness configuration.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.faults
    }

    /// Attaches an observability handle to every simulator this context
    /// builds. The default (disabled) handle leaves runs unprofiled and
    /// their results bit-identical to an uninstrumented build.
    pub fn with_obs(mut self, obs: &ObsHandle) -> Self {
        self.obs = obs.clone();
        self
    }

    /// The observability handle.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Builds a simulator for one workload and policy.
    ///
    /// # Errors
    ///
    /// See [`ThermalTimingSim::new`].
    pub fn build(
        &self,
        workload: &Workload,
        policy: PolicySpec,
    ) -> Result<ThermalTimingSim, SimError> {
        let traces = workload
            .resolve()
            .iter()
            .map(|b| self.lib.trace(b))
            .collect();
        self.build_with_traces(traces, policy)
    }

    /// Builds a simulator from already-resolved traces, skipping the
    /// per-build trace-library lookups. Batch executors resolve each
    /// distinct workload's traces once per lane batch and hand the
    /// shared `Arc`s to every lane that replays them.
    ///
    /// # Errors
    ///
    /// See [`ThermalTimingSim::new`].
    pub fn build_with_traces(
        &self,
        traces: Vec<Arc<dtm_power::PowerTrace>>,
        policy: PolicySpec,
    ) -> Result<ThermalTimingSim, SimError> {
        let mut sim = ThermalTimingSim::new(self.sim.clone(), self.dtm, policy, traces)?;
        if !self.faults.is_ideal() {
            sim.set_fault_config(&self.faults);
        }
        if self.obs.is_enabled() {
            sim.attach_obs(&self.obs);
        }
        Ok(sim)
    }

    /// Runs one workload under one policy.
    ///
    /// # Errors
    ///
    /// See [`ThermalTimingSim::new`] and [`ThermalTimingSim::run`].
    pub fn run(&self, workload: &Workload, policy: PolicySpec) -> Result<RunResult, SimError> {
        self.build(workload, policy)?.run()
    }

    /// Runs one workload under one policy while recording telemetry
    /// every `stride` steps.
    ///
    /// # Errors
    ///
    /// See [`ThermalTimingSim::run`].
    pub fn run_with_telemetry(
        &self,
        workload: &Workload,
        policy: PolicySpec,
        stride: usize,
    ) -> Result<(RunResult, Telemetry), SimError> {
        let mut sim = self.build(workload, policy)?;
        sim.attach_telemetry(Telemetry::every(stride));
        let result = sim.run()?;
        let telemetry = sim.take_telemetry().expect("telemetry was attached");
        Ok((result, telemetry))
    }
}

/// The single-core unconstrained simulation configuration behind the
/// Table 1 characterization: one core, no thermal limit, baseline
/// policy. Exposed so sweep grids can reproduce Table 1 through the
/// cached harness cell by cell.
pub fn unconstrained_single_core(duration: f64) -> (SimConfig, DtmConfig) {
    (
        SimConfig {
            cores: 1,
            duration,
            ..SimConfig::default()
        },
        DtmConfig::unconstrained(),
    )
}

/// Runs `bench` alone on a single-core chip with no thermal limit and
/// summarizes the hottest sensor over the second half of the run (the
/// engine's built-in steady-state sampling, [`RunResult::steady`]).
///
/// # Errors
///
/// Propagates simulator construction/run failures.
pub fn unconstrained_steady_temp(
    bench: &Benchmark,
    lib: &TraceLibrary,
    duration: f64,
) -> Result<SteadyTempSummary, SimError> {
    let (sim_cfg, dtm) = unconstrained_single_core(duration);
    let trace = lib.trace(bench);
    let mut sim = ThermalTimingSim::new(sim_cfg, dtm, PolicySpec::baseline(), vec![trace])?;
    let result = sim.run()?;
    Ok(result
        .steady
        .expect("a positive-duration run yields steady samples"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_is_shareable_across_threads() {
        // The harness shares one Experiment read-only among its worker
        // pool; a compile-time check that the context stays Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Experiment>();
        assert_send_sync::<TraceLibrary>();
    }

    #[test]
    fn sibling_contexts_share_the_trace_library() {
        let base = Experiment::fast_test();
        let hot = base.clone().with_dtm(DtmConfig::with_threshold(100.0));
        assert!(Arc::ptr_eq(&base.library_shared(), &hot.library_shared()));
        assert!((hot.dtm_config().threshold - 100.0).abs() < 1e-12);
    }

    #[test]
    fn steady_summary_classification() {
        let s = SteadyTempSummary {
            mean: 70.0,
            min: 69.4,
            max: 70.4,
        };
        assert!(s.is_steady(1.5));
        let o = SteadyTempSummary {
            mean: 69.0,
            min: 66.0,
            max: 72.0,
        };
        assert!(!o.is_steady(1.5));
    }
}
