//! Temperature-dependent leakage power.
//!
//! PowerTimer-style tools report dynamic power only; leakage depends on
//! temperature, which is only known after the thermal solve. Following the
//! study's toolflow, leakage is computed inside the thermal/timing loop
//! from the current block temperatures using an empirical exponential
//! model (in the spirit of Heo, Barr & Asanović, ISLPED'03):
//!
//! ```text
//!   P_leak(T) = P_ref · exp(β · (T − T_ref))
//! ```

use serde::{Deserialize, Serialize};

/// Per-block exponential leakage model.
///
/// # Examples
///
/// ```
/// use dtm_thermal::LeakageModel;
///
/// let leak = LeakageModel::new(vec![1.0, 2.0], 45.0, 0.0231);
/// let p = leak.power(&[45.0, 75.0]);
/// assert!((p[0] - 1.0).abs() < 1e-12);      // at T_ref: exactly P_ref
/// assert!((p[1] - 4.0).abs() < 0.01);       // +30 °C: doubles twice
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    p_ref: Vec<f64>,
    t_ref: f64,
    beta: f64,
}

impl LeakageModel {
    /// Creates a model with reference leakage `p_ref` (W per block) at
    /// temperature `t_ref` (°C) and exponent `beta` (1/K).
    ///
    /// `beta = ln(2)/30 ≈ 0.0231` doubles leakage every 30 °C, a typical
    /// 90 nm characteristic.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or any reference power is negative.
    pub fn new(p_ref: Vec<f64>, t_ref: f64, beta: f64) -> Self {
        assert!(beta >= 0.0, "leakage must not decrease with temperature");
        assert!(
            p_ref.iter().all(|&p| p >= 0.0 && p.is_finite()),
            "reference leakage must be non-negative"
        );
        LeakageModel { p_ref, t_ref, beta }
    }

    /// A model with zero leakage everywhere (useful for isolating dynamic
    /// power in tests).
    pub fn disabled(n_blocks: usize) -> Self {
        LeakageModel::new(vec![0.0; n_blocks], 45.0, 0.0)
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.p_ref.len()
    }

    /// Whether the model covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.p_ref.is_empty()
    }

    /// Reference leakage at `t_ref` for each block (W).
    pub fn reference_power(&self) -> &[f64] {
        &self.p_ref
    }

    /// Leakage power (W) of every block at the given temperatures (°C).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != self.len()`.
    pub fn power(&self, temps: &[f64]) -> Vec<f64> {
        assert_eq!(temps.len(), self.p_ref.len(), "temperature vector length");
        temps
            .iter()
            .zip(&self.p_ref)
            .map(|(&t, &p)| p * self.factor(t))
            .collect()
    }

    /// Leakage multiplier at temperature `t` (°C). The exponent is
    /// clamped at `t_ref + 150` K: beyond that the exponential model has
    /// left its fitted range, and the clamp keeps simulations of
    /// unconstrained (no-DTM) runs numerically finite instead of
    /// diverging through thermal runaway.
    fn factor(&self, t: f64) -> f64 {
        (self.beta * ((t - self.t_ref).min(150.0))).exp()
    }

    /// Adds leakage at `temps` into an existing power vector, avoiding
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn add_power(&self, temps: &[f64], power: &mut [f64]) {
        assert_eq!(temps.len(), self.p_ref.len());
        assert_eq!(power.len(), self.p_ref.len());
        for ((w, &t), &p) in power.iter_mut().zip(temps).zip(&self.p_ref) {
            *w += p * self.factor(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_grows_monotonically_with_temperature() {
        let m = LeakageModel::new(vec![1.5], 45.0, 0.0231);
        let mut prev = 0.0;
        for t in [30.0, 45.0, 60.0, 85.0, 110.0] {
            let p = m.power(&[t])[0];
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn disabled_model_is_zero_at_any_temperature() {
        let m = LeakageModel::disabled(3);
        for t in [0.0, 45.0, 120.0] {
            assert_eq!(m.power(&[t, t, t]), vec![0.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn add_power_matches_power() {
        let m = LeakageModel::new(vec![0.5, 1.0, 2.0], 45.0, 0.02);
        let temps = [50.0, 70.0, 90.0];
        let expect = m.power(&temps);
        let mut acc = vec![10.0, 20.0, 30.0];
        m.add_power(&temps, &mut acc);
        for i in 0..3 {
            assert!((acc[i] - (10.0 * (i as f64 + 1.0) + expect[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn doubling_interval_is_respected() {
        let beta = (2.0f64).ln() / 30.0;
        let m = LeakageModel::new(vec![1.0], 45.0, beta);
        let p = m.power(&[105.0])[0]; // two doubling intervals
        assert!((p - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn negative_beta_is_rejected() {
        LeakageModel::new(vec![1.0], 45.0, -0.01);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_reference_power_is_rejected() {
        LeakageModel::new(vec![-1.0], 45.0, 0.01);
    }
}
