//! Exact discrete-time propagator for the LTI RC network.
//!
//! The thermal ODE `C·dT/dt = p − A·T` is linear time-invariant, and the
//! simulation advances it with a *constant* power vector over each
//! sample interval `dt`. Its exact solution over one interval is
//!
//! ```text
//!   T(t+dt) = E·T(t) + F·p
//!   E = expm(−C⁻¹·A·dt)          (state propagator)
//!   F = (I − E)·A⁻¹               (affine input matrix)
//! ```
//!
//! so once `E` and `F` are precomputed for a given `dt`, a step is one
//! dense matrix–vector product — no substeps, no per-step LU solves,
//! and no time-discretization error (the only error is the floating
//! point of `expm` itself). This is the standard exact-exponential
//! trick HotSpot uses for its block model.
//!
//! Two structural reductions make the per-step kernel smaller than a
//! naive `n×n` pair of products:
//!
//! 1. Power is injected only at the `k` power-input sites (floorplan
//!    blocks), and reaches network nodes through a fixed sparse map
//!    `W` (identity for the block model; the block→cell area-overlap
//!    weights for the grid model). `F·W` is folded at build time into
//!    an `n×k` matrix.
//! 2. The ambient drive `g_amb·T_amb` is constant, so `F·p_amb` is
//!    folded into a per-row bias.
//!
//! The step then is a single affine kernel over the concatenated input
//! `[T | p_blocks]` (see [`crate::linalg::affine_matvec`]):
//!
//! ```text
//!   T ← [E | F·W]·[T | p] + F·p_amb
//! ```
//!
//! **Fallback conditions.** Construction fails — and the owning solver
//! permanently falls back to backward Euler — when `A` is singular or
//! ill-conditioned enough that the inverse or `expm` produces
//! non-finite entries, or when the computed `E` is not a contraction
//! (`‖E‖_∞ > 1`), which a dissipative RC network's exact propagator
//! must be. A *changing* `dt` is not a fallback: the propagator is
//! cached per `dt` exactly like the backward-Euler LU factorization,
//! and is rebuilt whenever `dt` moves by more than 1 part in 10¹⁵.

use crate::linalg::{affine_matvec, matmul_strided, LinalgError, Matrix};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, OnceLock};

/// Tolerance on `‖E‖_∞ − 1` before the propagator is declared
/// non-physical: exact row sums are ≤ 1 for a network with ambient
/// coupling, so anything materially above 1 means `expm` lost accuracy.
const CONTRACTION_TOL: f64 = 1e-9;

/// Which transient integration backend a solver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverBackend {
    /// Exact matrix-exponential propagator (the default): one dense
    /// matvec per power sample, cached per `dt`, with an automatic
    /// permanent fallback to [`SolverBackend::BackwardEuler`] if the
    /// propagator cannot be built.
    #[default]
    Propagator,
    /// Backward-Euler substepping with a cached LU factorization — the
    /// original reference integrator, unconditionally stable, kept for
    /// differential testing and as the fallback path.
    BackwardEuler,
}

/// How the `k` power inputs reach network nodes.
pub(crate) enum PowerMap<'a> {
    /// Input `i` injects into node `i` (block model: blocks are the
    /// first `k` nodes).
    Direct,
    /// Input `i` injects into the listed `(node, fraction)` pairs
    /// (grid model: area-overlap weights).
    Weighted(&'a [Vec<(usize, f64)>]),
}

/// Precomputed exact one-step propagator for one `dt`.
#[derive(Debug, Clone)]
pub(crate) struct Propagator {
    n: usize,
    n_inputs: usize,
    dt: f64,
    /// Row-major `n × (n + n_inputs)`; row `i` is `[E_i | (F·W)_i]`.
    rows: Vec<f64>,
    /// `F·p_amb`: the constant ambient drive per step.
    bias: Vec<f64>,
}

/// Process-wide propagator cache, keyed by a content hash of every
/// numeric input to [`Propagator::new`].
///
/// Building `E = expm(−C⁻¹·A·dt)` is by far the most expensive part of
/// constructing a simulator — tens of ms for the block model — and it
/// depends only on the thermal network and `dt`, not on the workload,
/// policy, or sensor seed. A sweep (or a simulation server) therefore
/// rebuilds the *same* propagator for almost every cell; this cache
/// makes each distinct thermal configuration pay `expm` once per
/// process. Entries are immutable (`advance` is `&self`) and shared by
/// `Arc`, so cached reuse is bit-identical to a fresh build.
const PROPAGATOR_CACHE_CAP: usize = 32;

type CacheEntries = Vec<(u128, Arc<Propagator>)>;

fn cache() -> &'static Mutex<CacheEntries> {
    static CACHE: OnceLock<Mutex<CacheEntries>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Double-lane FNV-1a (the result cache's construction) over the raw
/// bit patterns of every input, so any numeric difference — a single
/// conductance, the ambient, `dt` — yields a different key.
fn content_key(
    a: &Matrix,
    cap: &[f64],
    g_amb: &[f64],
    ambient: f64,
    n_inputs: usize,
    map: &PowerMap<'_>,
    dt: f64,
) -> u128 {
    let mut bytes: Vec<u8> = Vec::with_capacity((a.as_slice().len() + cap.len()) * 8 + 64);
    let mut push = |v: f64| bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    push(dt);
    push(ambient);
    push(a.rows() as f64);
    push(n_inputs as f64);
    for &v in a.as_slice() {
        push(v);
    }
    for &v in cap {
        push(v);
    }
    for &v in g_amb {
        push(v);
    }
    match map {
        PowerMap::Direct => push(f64::from_bits(1)),
        PowerMap::Weighted(weights) => {
            push(f64::from_bits(2));
            for w in weights.iter() {
                push(w.len() as f64);
                for &(node, frac) in w {
                    push(node as f64);
                    push(frac);
                }
            }
        }
    }
    let fnv = |seed: u64, data: &[u8]| {
        data.iter().fold(seed, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    };
    let lo = fnv(0xcbf2_9ce4_8422_2325, &bytes);
    bytes.reverse();
    let hi = fnv(0x6c62_272e_07bb_0142, &bytes);
    ((hi as u128) << 64) | lo as u128
}

impl Propagator {
    /// Returns the cached propagator for these exact inputs, building
    /// and caching it on a miss. Failures are not cached (they latch a
    /// permanent fallback in the caller anyway).
    ///
    /// # Errors
    ///
    /// See [`Propagator::new`].
    pub(crate) fn shared(
        a: &Matrix,
        cap: &[f64],
        g_amb: &[f64],
        ambient: f64,
        n_inputs: usize,
        map: PowerMap<'_>,
        dt: f64,
    ) -> Result<Arc<Propagator>, LinalgError> {
        let key = content_key(a, cap, g_amb, ambient, n_inputs, &map, dt);
        if let Some((_, p)) = cache().lock().unwrap().iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(p));
        }
        let built = Arc::new(Propagator::new(a, cap, g_amb, ambient, n_inputs, map, dt)?);
        let mut guard = cache().lock().unwrap();
        // A racing builder may have inserted the same key; keep theirs
        // (the contents are identical by construction).
        if let Some((_, p)) = guard.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(p));
        }
        if guard.len() >= PROPAGATOR_CACHE_CAP {
            guard.remove(0); // FIFO: oldest distinct configuration
        }
        guard.push((key, Arc::clone(&built)));
        Ok(built)
    }

    /// Builds `E`/`F` for the system `C·dT/dt = p − A·T` at step `dt`,
    /// with `n_inputs` power inputs mapped onto nodes by `map`.
    pub(crate) fn new(
        a: &Matrix,
        cap: &[f64],
        g_amb: &[f64],
        ambient: f64,
        n_inputs: usize,
        map: PowerMap<'_>,
        dt: f64,
    ) -> Result<Propagator, LinalgError> {
        let n = a.rows();
        // Generator of the semigroup: −C⁻¹·A, scaled by dt.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = -dt * a[(i, j)] / cap[i];
            }
        }
        let e = m.expm()?;
        if e.inf_norm() > 1.0 + CONTRACTION_TOL {
            return Err(LinalgError::Singular);
        }

        // F = (I − E)·A⁻¹.
        let inv = a.inverse()?;
        let mut i_minus_e = e.clone();
        for i in 0..n {
            for j in 0..n {
                i_minus_e[(i, j)] = -i_minus_e[(i, j)];
            }
            i_minus_e[(i, i)] += 1.0;
        }
        let f = i_minus_e.matmul(&inv);

        let p_amb: Vec<f64> = g_amb.iter().map(|g| g * ambient).collect();
        let bias = f.mul_vec(&p_amb);

        let mut rows = Vec::with_capacity(n * (n + n_inputs));
        for i in 0..n {
            rows.extend_from_slice(&e.as_slice()[i * n..(i + 1) * n]);
            match &map {
                PowerMap::Direct => {
                    debug_assert!(n_inputs <= n);
                    rows.extend_from_slice(&f.as_slice()[i * n..i * n + n_inputs]);
                }
                PowerMap::Weighted(weights) => {
                    debug_assert_eq!(weights.len(), n_inputs);
                    for w in weights.iter() {
                        rows.push(w.iter().map(|&(node, frac)| frac * f[(i, node)]).sum());
                    }
                }
            }
        }
        if rows.iter().any(|v| !v.is_finite()) || bias.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::Singular);
        }
        Ok(Propagator {
            n,
            n_inputs,
            dt,
            rows,
            bias,
        })
    }

    /// The step this propagator was built for (s).
    pub(crate) fn dt(&self) -> f64 {
        self.dt
    }

    /// State dimension `n` (rows of `E`).
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Width of the concatenated input `[T | p]`: `n + n_inputs`.
    pub(crate) fn width(&self) -> usize {
        self.n + self.n_inputs
    }

    /// Advances `lanes` independent states at once: column `l` of the
    /// column-major input block `x` (leading dimension `ldx`) holds lane
    /// `l`'s concatenated `[T | p]`, and column `l` of `y` (leading
    /// dimension `ldy`) receives its next temperatures. One cache-blocked
    /// [`matmul_strided`] call replaces `lanes` [`Propagator::advance`]
    /// matvecs; each lane's output is bit-identical to the scalar path.
    pub(crate) fn advance_batch(
        &self,
        x: &[f64],
        ldx: usize,
        y: &mut [f64],
        ldy: usize,
        lanes: usize,
    ) {
        matmul_strided(
            self.n,
            self.n + self.n_inputs,
            &self.rows,
            &self.bias,
            x,
            ldx,
            y,
            ldy,
            lanes,
        );
    }

    /// Advances `temps` by one step under constant input `power`,
    /// staging the concatenated input in `xbuf` and the output in
    /// `out` (both reused across steps to avoid allocation).
    ///
    /// # Panics
    ///
    /// Panics (via the kernel's shape asserts) if `temps` or `power`
    /// have the wrong length.
    pub(crate) fn advance(
        &self,
        temps: &mut Vec<f64>,
        power: &[f64],
        xbuf: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        xbuf.clear();
        xbuf.extend_from_slice(temps);
        xbuf.extend_from_slice(power);
        out.clear();
        out.resize(self.n, 0.0);
        affine_matvec(self.n + self.n_inputs, &self.rows, &self.bias, xbuf, out);
        std::mem::swap(temps, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-node RC chain: node 0 —g01— node 1 —g_amb— ambient.
    fn two_node() -> (Matrix, Vec<f64>, Vec<f64>) {
        let g01 = 2.0;
        let g_amb = vec![0.0, 1.5];
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = g01;
        a[(0, 1)] = -g01;
        a[(1, 0)] = -g01;
        a[(1, 1)] = g01 + g_amb[1];
        (a, vec![0.01, 0.05], g_amb)
    }

    #[test]
    fn propagator_fixpoint_is_the_steady_state() {
        let (a, cap, g_amb) = two_node();
        let ambient = 45.0;
        let p_in = [0.8];
        let prop = Propagator::new(&a, &cap, &g_amb, ambient, 1, PowerMap::Direct, 1e-3).unwrap();
        // Steady state of A·T = p + g_amb·T_amb.
        let rhs = vec![p_in[0] + g_amb[0] * ambient, g_amb[1] * ambient];
        let steady = a.solve(&rhs).unwrap();
        let mut temps = steady.clone();
        let (mut xbuf, mut out) = (Vec::new(), Vec::new());
        prop.advance(&mut temps, &p_in, &mut xbuf, &mut out);
        for (t, s) in temps.iter().zip(&steady) {
            assert!((t - s).abs() < 1e-10, "{t} vs {s}");
        }
    }

    #[test]
    fn propagator_matches_scalar_exponential_relaxation() {
        // Single node: C dT/dt = p − g(T − T_amb) has the closed form
        // T(t) = T∞ + (T0 − T∞)·exp(−g·t/C).
        let g = 3.0;
        let cap = vec![0.02];
        let mut a = Matrix::zeros(1, 1);
        a[(0, 0)] = g;
        let g_amb = vec![g];
        let ambient = 45.0;
        let p = [1.2];
        let dt = 4e-3;
        let prop = Propagator::new(&a, &cap, &g_amb, ambient, 1, PowerMap::Direct, dt).unwrap();
        let t_inf = ambient + p[0] / g;
        let mut temps = vec![ambient];
        let (mut xbuf, mut out) = (Vec::new(), Vec::new());
        for step in 1..=10 {
            prop.advance(&mut temps, &p, &mut xbuf, &mut out);
            let expect = t_inf + (ambient - t_inf) * (-g * dt * step as f64 / cap[0]).exp();
            assert!(
                (temps[0] - expect).abs() < 1e-10,
                "{} vs {expect}",
                temps[0]
            );
        }
    }

    #[test]
    fn weighted_map_folds_input_distribution() {
        let (a, cap, g_amb) = two_node();
        let ambient = 45.0;
        let dt = 2e-3;
        // One input split 30/70 over the two nodes must equal driving
        // the Direct two-input propagator with the split vector.
        let weights = vec![vec![(0, 0.3), (1, 0.7)]];
        let folded = Propagator::new(
            &a,
            &cap,
            &g_amb,
            ambient,
            1,
            PowerMap::Weighted(&weights),
            dt,
        )
        .unwrap();
        let direct = Propagator::new(&a, &cap, &g_amb, ambient, 2, PowerMap::Direct, dt).unwrap();
        let (mut t1, mut t2) = (vec![50.0, 47.0], vec![50.0, 47.0]);
        let (mut xbuf, mut out) = (Vec::new(), Vec::new());
        for _ in 0..5 {
            folded.advance(&mut t1, &[2.0], &mut xbuf, &mut out);
            direct.advance(&mut t2, &[0.6, 1.4], &mut xbuf, &mut out);
        }
        for (x, y) in t1.iter().zip(&t2) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn shared_cache_returns_the_same_instance_for_identical_inputs() {
        let (a, cap, g_amb) = two_node();
        let p1 = Propagator::shared(&a, &cap, &g_amb, 45.0, 1, PowerMap::Direct, 1e-3).unwrap();
        let p2 = Propagator::shared(&a, &cap, &g_amb, 45.0, 1, PowerMap::Direct, 1e-3).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "identical inputs must share");
        // Any numeric difference — here dt — must miss the cache.
        let p3 = Propagator::shared(&a, &cap, &g_amb, 45.0, 1, PowerMap::Direct, 2e-3).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3), "different dt must not share");
        // The shared instance behaves exactly like a fresh build.
        let fresh = Propagator::new(&a, &cap, &g_amb, 45.0, 1, PowerMap::Direct, 1e-3).unwrap();
        let (mut ta, mut tb) = (vec![50.0, 47.0], vec![50.0, 47.0]);
        let (mut xbuf, mut out) = (Vec::new(), Vec::new());
        p1.advance(&mut ta, &[0.8], &mut xbuf, &mut out);
        fresh.advance(&mut tb, &[0.8], &mut xbuf, &mut out);
        assert_eq!(ta, tb, "cached reuse must be bit-identical");
    }

    #[test]
    fn singular_system_is_rejected() {
        // No ambient coupling at all: A is a pure graph Laplacian,
        // singular, so F = (I−E)·A⁻¹ cannot be built.
        let g01 = 2.0;
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = g01;
        a[(0, 1)] = -g01;
        a[(1, 0)] = -g01;
        a[(1, 1)] = g01;
        let err = Propagator::new(
            &a,
            &[0.01, 0.05],
            &[0.0, 0.0],
            45.0,
            1,
            PowerMap::Direct,
            1e-3,
        );
        assert!(err.is_err());
    }
}
